//! `krsp-cli` — solve kRSP instances from JSON files.
//!
//! Usage:
//!   krsp-cli solve <instance.json> [--single-probe] [--lp-engine] [--eps N/D]
//!                  [--threads T]
//!   krsp-cli gen <family> <n> <k> <tightness> <seed> <out.json>
//!   krsp-cli info <instance.json>
//!   krsp-cli serve <addr> [--workers W] [--queue Q] [--cache CAP]
//!                  [--shards S] [--no-coalesce] [--threads T]
//!                  [--deadline-ms MS] [--strict-deadlines]
//!                  [--grace-ms MS] [--max-conns N] [--per-client-conns N]
//!                  [--rate R] [--rate-burst B] [--threaded]
//!                  [--kernel classic|interval]
//!                  [--cache-dir DIR] [--cache-disk-cap BYTES]
//!   krsp-cli load [krsp-load flags...]
//!   krsp-cli route <addr> --replicas A,B,C [--vnodes N] [--seed S]
//!                  [--probe-ms MS] [--probe-timeout-ms MS]
//!                  [--dial-timeout-ms MS] [--deadline-ms MS]
//!                  [--degrade-after N] [--down-after N] [--revive-after N]
//!                  [--backoff-ms MS] [--backoff-cap-ms MS]
//!                  [--hedge] [--hedge-quantile Q] [--hedge-min-ms MS]
//!                  [--hedge-warmup N] [--pool N] [--max-conns N]
//!                  [--grace-ms MS]
//!
//! `--threads T` (or the `KRSP_THREADS` env var) sets the solver's
//! data-parallel width — the rayon pool behind the bicameral seed scan and
//! batch solving. Output is bit-identical at any width.
//!
//! Families: gnm | grid | layered | geometric.
//!
//! `serve` runs the NDJSON provisioning service on `addr` (e.g.
//! `127.0.0.1:7447`; port 0 picks a free port and prints it). One JSON
//! request per line: `{"Solve": {"instance": {...}, "deadline_ms": 250}}`,
//! `{"SolveBatch": {"queries": [{"id": 1, "instance": {...},
//! "deadline_ms": 250}, ...]}}` (one line in, one id-matched response
//! line per query out), `"Metrics"`, or `"Health"`. The default frontend
//! is event-driven (one reactor thread multiplexing every connection;
//! requests may carry ids and pipeline); `--threaded` selects the legacy thread-per-connection
//! server for A/B comparison. `--max-conns` / `--per-client-conns` cap
//! open connections (excess accepts are answered with a `"shed"` error
//! and closed) and `--rate R` token-buckets each client address to R
//! solves/s (burst `--rate-burst`, default 2R; excess gets
//! `"rate_limited"` errors). `--kernel` assigns the named RSP kernel
//! (`classic` or `interval`, DESIGN.md §4.16) uniformly across the
//! degrade ladder; individual requests may still override it with a
//! `"kernel"` member. `--cache-dir DIR` adds a crash-safe disk tier
//! under the in-memory LRU: every solved answer also appends to a
//! checksummed segment file in DIR (fsync'd before it counts), a
//! SIGKILL'd daemon restarted over the same DIR recovers the intact
//! records and answers them warm, and `--cache-disk-cap BYTES` bounds
//! the tier by pruning the oldest segments (0 = uncapped).
//! SIGTERM/ctrl-c triggers a graceful drain:
//! the listener stops accepting, in-flight requests finish within
//! `--grace-ms` (default 5000), and a final metrics snapshot is flushed
//! to stderr. `load` forwards to the `krsp-load` replay tool (same flags;
//! see its source header).
//!
//! `route` runs the replica-ring router (DESIGN.md §4.18) on `addr`,
//! fronting the `krsp-cli serve` replicas listed in `--replicas` with the
//! same NDJSON protocol the replicas speak. Each `Solve` is routed by its
//! instance's canonical digest on a consistent-hash ring (`--vnodes`
//! points per replica), retried on the next live replica after transport
//! failures with deterministic jittered backoff (`--seed`, or the
//! `KRSP_SEED` env var, keys the jitter so replays reproduce), and never
//! retried past the client's deadline budget. Replica health is tracked
//! by active `Health` probes every `--probe-ms` plus passive traffic
//! signals; a draining replica (one that answered SIGTERM) stops getting
//! new sends while its in-flight work hands off via retry. `--hedge`
//! arms tail-latency hedging: when a solve outlives the observed
//! `--hedge-quantile` latency, a second copy goes to the next ring
//! replica and the first answer wins. A `"Health"` request to the router
//! answers with per-replica ring states and router counters.

use krsp_service::{serve_with_shutdown, ServeOptions, Service, ServiceConfig};
use krsp_suite::krsp::{self, solve, solve_scaled, Config, Engine, Eps};
use krsp_suite::krsp_gen::{self, Family, Regime, Workload};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        _ => {
            eprintln!("usage: krsp-cli solve|gen|info|serve|route|load ... (see source header)");
            std::process::exit(2);
        }
    }
}

fn cmd_solve(args: &[String]) {
    let Some(path) = args.first() else {
        fail("solve needs an instance path")
    };
    let inst = krsp_gen::read_instance(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let mut cfg = Config::default();
    let mut eps: Option<Eps> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--single-probe" => cfg.single_probe = true,
            "--lp-engine" => cfg.engine = Engine::LpRounding,
            "--eps" => {
                let spec = it.next().unwrap_or_else(|| fail("--eps needs N/D"));
                let (n, d) = spec
                    .split_once('/')
                    .unwrap_or_else(|| fail("--eps format is N/D"));
                eps = Some(Eps::new(
                    n.parse().unwrap_or_else(|_| fail("bad eps numerator")),
                    d.parse().unwrap_or_else(|_| fail("bad eps denominator")),
                ));
            }
            "--threads" => {
                let t = it.next().unwrap_or_else(|| fail("--threads needs a value"));
                krsp::set_solver_width(t.parse().unwrap_or_else(|_| fail("bad --threads")));
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }

    let (solution, iters) = match eps {
        Some(e) => match solve_scaled(&inst, e, e, &cfg) {
            Ok(s) => (s.solution, s.stats.iterations.len()),
            Err(e) => fail(&format!("unsolvable: {e}")),
        },
        None => match solve(&inst, &cfg) {
            Ok(s) => (s.solution, s.stats.iterations.len()),
            Err(e) => fail(&format!("unsolvable: {e}")),
        },
    };
    println!(
        "cost {}  delay {} / {}  (cycle cancellations: {iters})",
        solution.cost, solution.delay, inst.delay_bound
    );
    if let Some(lb) = solution.lower_bound {
        println!(
            "LP lower bound {lb} → certified cost factor ≤ {:.4}",
            solution.cost as f64 / lb.to_f64().max(1e-12)
        );
    }
    for (i, p) in solution.paths(&inst).iter().enumerate() {
        let nodes: Vec<String> = p.nodes(&inst.graph).iter().map(|n| n.to_string()).collect();
        println!(
            "  path {}: cost {:>6} delay {:>6}  {}",
            i + 1,
            p.cost(),
            p.delay(),
            nodes.join("→")
        );
    }
}

fn cmd_gen(args: &[String]) {
    if args.len() != 6 {
        fail("gen <family> <n> <k> <tightness> <seed> <out.json>");
    }
    let family = match args[0].as_str() {
        "gnm" => Family::Gnm,
        "grid" => Family::Grid,
        "layered" => Family::Layered,
        "geometric" => Family::Geometric,
        other => fail(&format!("unknown family {other}")),
    };
    let n: usize = args[1].parse().unwrap_or_else(|_| fail("bad n"));
    let k: usize = args[2].parse().unwrap_or_else(|_| fail("bad k"));
    let tightness: f64 = args[3].parse().unwrap_or_else(|_| fail("bad tightness"));
    let seed: u64 = args[4].parse().unwrap_or_else(|_| fail("bad seed"));
    let w = Workload {
        family,
        n,
        m: n * 4,
        regime: Regime::Anticorrelated,
        k,
        tightness,
        seed,
    };
    let inst = krsp_gen::instantiate_with_retries(w, 50)
        .unwrap_or_else(|| fail("could not sample a feasible instance"));
    krsp_gen::write_instance(std::path::Path::new(&args[5]), &inst)
        .unwrap_or_else(|e| fail(&format!("cannot write: {e}")));
    println!(
        "wrote {}: n={} m={} k={} D={}",
        args[5],
        inst.n(),
        inst.m(),
        inst.k,
        inst.delay_bound
    );
}

fn cmd_serve(args: &[String]) {
    let Some(addr) = args.first() else {
        fail("serve needs a bind address, e.g. 127.0.0.1:7447")
    };
    // Apply --threads before building the config: the default ladder
    // policy calibrates its admission estimates to the solver width.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let t = args
            .get(i + 1)
            .unwrap_or_else(|| fail("--threads needs a value"));
        krsp::set_solver_width(t.parse().unwrap_or_else(|_| fail("bad --threads")));
    }
    let mut cfg = ServiceConfig::default();
    let mut opts = ServeOptions::default();
    let mut threaded = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        fn arg<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
            value
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad value for {flag}")))
        }
        match a.as_str() {
            "--workers" => cfg.workers = arg(a, it.next()),
            "--queue" => cfg.queue_capacity = arg(a, it.next()),
            "--cache" => cfg.cache_capacity = arg(a, it.next()),
            "--shards" => cfg.cache_shards = arg(a, it.next()),
            "--threads" => {
                it.next(); // consumed in the pre-scan above
            }
            "--no-coalesce" => cfg.coalesce = false,
            "--deadline-ms" => {
                cfg.default_deadline = Duration::from_millis(arg(a, it.next()));
            }
            "--strict-deadlines" => cfg.reject_expired = true,
            "--kernel" => {
                let kind: krsp::KernelKind = arg(a, it.next());
                cfg.kernels = krsp_service::KernelLadder::uniform(kind);
            }
            "--cache-dir" => {
                let dir: String = arg(a, it.next());
                cfg.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-disk-cap" => cfg.cache_disk_cap = arg(a, it.next()),
            "--grace-ms" => opts.grace = Duration::from_millis(arg(a, it.next())),
            "--max-conns" => opts.max_conns = arg(a, it.next()),
            "--per-client-conns" => opts.per_client_conns = arg(a, it.next()),
            "--rate" => opts.rate_per_sec = arg(a, it.next()),
            "--rate-burst" => opts.rate_burst = arg(a, it.next()),
            "--threaded" => threaded = true,
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let listener = std::net::TcpListener::bind(addr)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    let service = Service::new(cfg);
    // The kernel map: one word when uniform, rung=kernel pairs otherwise.
    let kernels = service.config().kernels;
    let uniform = krsp_service::Rung::LADDER
        .iter()
        .all(|&r| kernels.for_rung(r) == kernels.for_rung(krsp_service::Rung::Full));
    let kernel_map = if uniform {
        kernels.for_rung(krsp_service::Rung::Full).to_string()
    } else {
        krsp_service::Rung::LADDER
            .iter()
            .map(|&r| format!("{r}={}", kernels.for_rung(r)))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "krsp-service listening on {local} ({} workers, queue {}, cache {}x{} shards, coalesce {}, solver threads {}, kernel {kernel_map})",
        service.config().workers,
        service.config().queue_capacity,
        service.config().cache_capacity,
        service.config().cache_shards,
        if service.config().coalesce {
            "on"
        } else {
            "off"
        },
        krsp::solver_width()
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    if let Err(e) = ctrlc::set_handler(move || {
        // Store before printing: a ctrl-c delivered to the whole process
        // group kills a piped log consumer first, so this write can hit a
        // readerless pipe and fail with EPIPE. `eprintln!` would panic and
        // kill the watcher thread — with the store after it, the flag
        // would never be set and the daemon would be undrainable.
        flag.store(true, Ordering::Release);
        use std::io::Write;
        let _ = writeln!(
            std::io::stderr(),
            "krsp-service: shutdown signal received, draining"
        );
    }) {
        fail(&format!("cannot install signal handler: {e}"));
    }
    let served = if threaded {
        krsp_service::serve_threaded_with_shutdown(&service, listener, Arc::clone(&shutdown), opts)
    } else {
        serve_with_shutdown(&service, listener, Arc::clone(&shutdown), opts)
    };
    if let Err(e) = served {
        fail(&format!("listener failed: {e}"));
    }
    // Flush the final counters so an orchestrator tearing the pod down
    // still gets the run's telemetry. Best-effort writes: stdout/stderr
    // may be dead pipes by now (same group-wide signal as above) and a
    // drained daemon must still exit 0, not die in a panic it cannot
    // even report.
    use std::io::Write;
    match serde_json::to_string(&service.metrics()) {
        Ok(json) => {
            let _ = writeln!(std::io::stderr(), "krsp-service: final metrics {json}");
        }
        Err(e) => {
            let _ = writeln!(
                std::io::stderr(),
                "krsp-service: metrics serialize failed: {e}"
            );
        }
    }
    let _ = writeln!(std::io::stdout(), "krsp-service: drained and stopped");
}

fn cmd_route(args: &[String]) {
    use krsp_service::{resolve_seed, serve_ring_with_shutdown, Router, RouterOptions};

    let Some(addr) = args.first() else {
        fail("route needs a bind address, e.g. 127.0.0.1:7440")
    };
    let mut opts = RouterOptions::default();
    let mut seed_flag: Option<u64> = None;
    let mut grace: Option<Duration> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        fn arg<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
            value
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad value for {flag}")))
        }
        let ms = |flag: &str, value: Option<&String>| Duration::from_millis(arg(flag, value));
        match a.as_str() {
            "--replicas" => {
                opts.replicas = arg::<String>(a, it.next())
                    .split(',')
                    .map(str::trim)
                    .filter(|r| !r.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--vnodes" => opts.vnodes = arg(a, it.next()),
            "--seed" => seed_flag = Some(arg(a, it.next())),
            "--probe-ms" => opts.probe_interval = ms(a, it.next()),
            "--probe-timeout-ms" => opts.probe_timeout = ms(a, it.next()),
            "--dial-timeout-ms" => opts.dial_timeout = ms(a, it.next()),
            "--deadline-ms" => opts.default_deadline = ms(a, it.next()),
            "--degrade-after" => opts.degrade_after = arg(a, it.next()),
            "--down-after" => opts.down_after = arg(a, it.next()),
            "--revive-after" => opts.revive_after = arg(a, it.next()),
            "--backoff-ms" => opts.backoff_base = ms(a, it.next()),
            "--backoff-cap-ms" => opts.backoff_cap = ms(a, it.next()),
            "--hedge" => opts.hedge = true,
            "--hedge-quantile" => opts.hedge_quantile = arg(a, it.next()),
            "--hedge-min-ms" => opts.hedge_min = ms(a, it.next()),
            "--hedge-warmup" => opts.hedge_warmup = arg(a, it.next()),
            "--pool" => opts.pool_cap = arg(a, it.next()),
            "--max-conns" => opts.max_conns = arg(a, it.next()),
            "--grace-ms" => grace = Some(ms(a, it.next())),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if opts.replicas.is_empty() {
        fail("route needs --replicas A,B,... (at least one krsp-cli serve address)");
    }
    opts.seed = resolve_seed(seed_flag);
    if let Some(g) = grace {
        opts.grace = g;
    }

    let listener = std::net::TcpListener::bind(addr)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    let router = Router::new(opts);
    let ropts = router.options();
    println!(
        "krsp-router listening on {local} ({} replicas × {} vnodes, probe every {:?}, hedge {}, seed {:#x})",
        ropts.replicas.len(),
        ropts.vnodes,
        ropts.probe_interval,
        if ropts.hedge { "on" } else { "off" },
        ropts.seed
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    if let Err(e) = ctrlc::set_handler(move || {
        // Same EPIPE-safe ordering as `serve`: set the flag before any
        // write that might panic on a dead pipe.
        flag.store(true, Ordering::Release);
        use std::io::Write;
        let _ = writeln!(
            std::io::stderr(),
            "krsp-router: shutdown signal received, draining"
        );
    }) {
        fail(&format!("cannot install signal handler: {e}"));
    }
    if let Err(e) = serve_ring_with_shutdown(&router, listener, Arc::clone(&shutdown)) {
        fail(&format!("router listener failed: {e}"));
    }
    // Best-effort final counters, mirroring `serve`'s drain telemetry.
    use std::io::Write;
    match serde_json::to_string(&router.ring_reply()) {
        Ok(json) => {
            let _ = writeln!(std::io::stderr(), "krsp-router: final ring state {json}");
        }
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "krsp-router: ring serialize failed: {e}");
        }
    }
    let _ = writeln!(std::io::stdout(), "krsp-router: drained and stopped");
}

fn cmd_load(args: &[String]) {
    // Same binary family; delegate so the flags stay in one place.
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("no current exe: {e}")));
    let sibling = exe.with_file_name(if cfg!(windows) {
        "krsp-load.exe"
    } else {
        "krsp-load"
    });
    let status = std::process::Command::new(&sibling)
        .args(args)
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot run {}: {e}", sibling.display())));
    std::process::exit(status.code().unwrap_or(1));
}

fn cmd_info(args: &[String]) {
    let Some(path) = args.first() else {
        fail("info needs an instance path")
    };
    let inst = krsp_gen::read_instance(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    println!(
        "n={} m={} s={} t={} k={} D={}",
        inst.n(),
        inst.m(),
        inst.s,
        inst.t,
        inst.k,
        inst.delay_bound
    );
    println!(
        "structurally feasible (≥k disjoint paths): {}",
        inst.is_structurally_feasible()
    );
    if let Some(fast) = krsp::baselines::min_delay(&inst) {
        println!("min achievable total delay: {}", fast.delay);
    }
    if let Some(cheap) = krsp::baselines::min_sum(&inst) {
        println!(
            "min-cost (delay-oblivious): cost {} delay {}",
            cheap.cost, cheap.delay
        );
    }
}
