//! `krsp-load` — replay generated workloads against the provisioning
//! service at a target rate.
//!
//! Usage:
//!   krsp-load [--requests N] [--qps Q] [--unique U] [--clients C]
//!             [--family gnm|grid|layered|geometric] [--n N] [--k K]
//!             [--tightness T] [--seed S] [--deadline-ms MS]
//!             [--workers W] [--queue Q] [--cache CAP] [--shards S]
//!             [--no-coalesce] [--out report.json]
//!             [--connect ADDR] [--retries N] [--pipeline N] [--batch N]
//!             [--kernel classic|interval]
//!             [--rolling W] [--ramp-edges N] [--ramp-num X] [--ramp-den Y]
//!
//! The human-readable summary goes to stderr; the full JSON
//! [`LoadReport`](krsp_service::LoadReport) goes to stdout (or `--out`).
//! `--qps 0` (the default) runs with an open throttle; `--cache 0`
//! disables the solution cache; `--deadline-ms 0` forces every request
//! onto the lowest degradation rung. `--shards 1 --no-coalesce` recovers
//! the single-lock, no-coalescing baseline for A/B comparisons.
//!
//! `--connect ADDR` replays over the wire against a running
//! `krsp-cli serve` (or `krsp-cli route`) instead of an in-process service
//! (the `--workers` etc. service flags are then ignored). `ADDR` may be a
//! comma-separated list — clients spread across the targets and rotate to
//! the next one on each reconnect, so the replay keeps going while any
//! listed replica answers. Transport errors reconnect and reissue
//! with jittered exponential backoff, up to `--retries N` attempts per
//! request (default 5); the report then carries both latency views —
//! `latency` from each request's first send (spans retries and backoff)
//! and `latency_last_send` from the answered attempt's send.
//! `--pipeline N` keeps N requests in flight per
//! connection using per-request ids (responses are matched out of order;
//! the report then carries the observed reordering and per-id latencies);
//! a connection that dies mid-window reissues its outstanding ids.
//! `--batch N` groups N requests into each `SolveBatch` wire line instead
//! (one request, N id-matched responses; per-query latency spans from the
//! batch line's send to that id's response). `--pipeline` and `--batch`
//! are mutually exclusive — they prescribe conflicting framings for the
//! same connection. `--kernel` stamps an RSP-kernel override
//! (DESIGN.md §4.16) on every issued request, both in-process and over
//! the wire; omitted, the server's configured kernel ladder decides.
//!
//! `--rolling W` switches to the rolling-update replay (requires
//! `--connect`): every pool topology is registered as a lineage, then `W`
//! traffic windows of `--requests` each run back to back, separated by
//! one epoch advance per lineage that ramps `--ramp-edges` edge costs by
//! `--ramp-num/--ramp-den` (defaults 1 edge, ×11/10). The client mirrors
//! each ramp onto its own instances so every window's requests match the
//! lineage's current weights and exercise the epoch-scoped cache lane
//! (retention, warm starts) instead of cold canonical keys. The JSON
//! output is then a [`RollingReport`](krsp_service::RollingReport) with
//! per-window latencies and server counter deltas.

use krsp_service::load::{self, LoadSpec, RemoteSpec, RollingSpec};
use krsp_service::{Service, ServiceConfig};
use krsp_suite::krsp_gen::Family;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    value
        .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        .parse()
        .unwrap_or_else(|_| fail(&format!("bad value for {flag}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = LoadSpec::default();
    let mut svc_cfg = ServiceConfig::default();
    let mut out: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut retries: u32 = 5;
    let mut rolling: usize = 0;
    let mut roll = RollingSpec::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => spec.requests = parse(a, it.next()),
            "--qps" => spec.qps = parse(a, it.next()),
            "--unique" => spec.unique = parse(a, it.next()),
            "--clients" => spec.clients = parse(a, it.next()),
            "--n" => spec.n = parse(a, it.next()),
            "--k" => spec.k = parse(a, it.next()),
            "--tightness" => spec.tightness = parse(a, it.next()),
            "--seed" => spec.seed = parse(a, it.next()),
            "--deadline-ms" => spec.deadline_ms = Some(parse(a, it.next())),
            "--workers" => svc_cfg.workers = parse(a, it.next()),
            "--queue" => svc_cfg.queue_capacity = parse(a, it.next()),
            "--cache" => svc_cfg.cache_capacity = parse(a, it.next()),
            "--shards" => svc_cfg.cache_shards = parse(a, it.next()),
            "--no-coalesce" => svc_cfg.coalesce = false,
            "--out" => out = Some(parse::<String>(a, it.next())),
            "--connect" => connect = Some(parse::<String>(a, it.next())),
            "--retries" => retries = parse(a, it.next()),
            "--pipeline" => spec.pipeline = parse(a, it.next()),
            "--batch" => spec.batch = parse(a, it.next()),
            "--kernel" => spec.kernel = Some(parse(a, it.next())),
            "--rolling" => rolling = parse(a, it.next()),
            "--ramp-edges" => roll.ramp_edges = parse(a, it.next()),
            "--ramp-num" => roll.ramp_num = parse(a, it.next()),
            "--ramp-den" => roll.ramp_den = parse(a, it.next()),
            "--family" => {
                spec.family = match parse::<String>(a, it.next()).as_str() {
                    "gnm" => Family::Gnm,
                    "grid" => Family::Grid,
                    "layered" => Family::Layered,
                    "geometric" => Family::Geometric,
                    other => fail(&format!("unknown family {other}")),
                }
            }
            other => fail(&format!("unknown flag {other} (see source header)")),
        }
    }
    if spec.pipeline > 1 && connect.is_none() {
        fail("--pipeline requires --connect (in-process replays scale with --clients)");
    }
    if spec.batch > 1 && connect.is_none() {
        fail("--batch requires --connect (in-process replays scale with --clients)");
    }
    if spec.batch > 1 && spec.pipeline > 1 {
        fail("--batch and --pipeline are mutually exclusive");
    }
    // A forced deadline only bites if it is also the default for requests
    // the spec leaves bare.
    if let Some(ms) = spec.deadline_ms {
        svc_cfg.default_deadline = Duration::from_millis(ms);
    }

    if rolling > 0 {
        let addr = connect
            .unwrap_or_else(|| fail("--rolling requires --connect (lineages live server-side)"));
        if spec.pipeline > 1 || spec.batch > 1 {
            fail("--rolling replays sequentially; drop --pipeline/--batch");
        }
        roll.windows = rolling;
        let report = load::run_rolling(&spec, &roll, &RemoteSpec { addr, retries })
            .unwrap_or_else(|e| fail(&format!("rolling replay failed: {e}")));
        eprintln!("{}", load::render_rolling(&report));
        let json = serde_json::to_string_pretty(&report)
            .unwrap_or_else(|e| fail(&format!("cannot serialize report: {e}")));
        match out {
            Some(path) => std::fs::write(&path, json + "\n")
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
            None => println!("{json}"),
        }
        return;
    }

    let report = match connect {
        Some(addr) => load::run_remote(&spec, &RemoteSpec { addr, retries })
            .unwrap_or_else(|e| fail(&format!("remote replay failed: {e}"))),
        None => {
            let service = Service::new(svc_cfg);
            load::run(&service, &spec)
        }
    };
    eprintln!("{}", load::render(&report));

    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| fail(&format!("cannot serialize report: {e}")));
    match out {
        Some(path) => std::fs::write(&path, json + "\n")
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
        None => println!("{json}"),
    }
}
