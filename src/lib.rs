//! Umbrella crate for the kRSP reproduction suite.
//!
//! Re-exports the public crates so the repository-level examples and
//! integration tests exercise exactly what a downstream user would import.

pub use krsp;
pub use krsp_flow;
pub use krsp_gen;
pub use krsp_graph;
pub use krsp_sim;
