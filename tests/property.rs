//! Repository-level property tests: the paper's structural invariants on
//! randomly generated instances, exercised through the public API.

use krsp_suite::krsp::{baselines, exact, solve, Config, Instance};
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use proptest::prelude::*;

/// Random small instances with guaranteed 2-connectivity between the
/// terminals (two vertex-disjoint backbones are wired in explicitly).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0u32..8, 0u32..8, 1i64..12, 1i64..12), 0..14),
        1i64..60,
        proptest::sample::select(vec![1usize, 2]),
    )
        .prop_map(|(extra, d, k)| {
            let mut edges = vec![
                // Backbone A: 0→1→7, backbone B: 0→2→7 (distinct middles).
                (0, 1, 3, 6),
                (1, 7, 3, 6),
                (0, 2, 6, 3),
                (2, 7, 6, 3),
            ];
            edges.extend(extra.into_iter().filter(|&(u, v, _, _)| u != v));
            let g = DiGraph::from_edges(8, &edges);
            Instance::new(g, NodeId(0), NodeId(7), k, d).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whenever the solver answers, the answer is a genuine delay-feasible
    /// k-path system within 2× of the exact optimum; whenever it declines,
    /// the instance is genuinely infeasible.
    #[test]
    fn solve_is_sound_and_2_approximate(inst in arb_instance()) {
        match solve(&inst, &Config::default()) {
            Ok(out) => {
                prop_assert!(out.solution.delay <= inst.delay_bound);
                prop_assert!(out.solution.edges.is_k_flow(
                    &inst.graph, inst.s, inst.t, inst.k));
                let opt = exact::brute_force(&inst).expect("solver said feasible");
                prop_assert!(out.solution.cost <= 2 * opt.cost,
                    "cost {} > 2·C_OPT {}", out.solution.cost, opt.cost);
                if let Some(lb) = out.solution.lower_bound {
                    // The LP bound must lower-bound the true optimum.
                    prop_assert!(lb.to_f64() <= opt.cost as f64 + 1e-9,
                        "LP bound {} above C_OPT {}", lb, opt.cost);
                }
            }
            Err(_) => {
                prop_assert!(exact::brute_force(&inst).is_none(),
                    "solver declined a feasible instance");
            }
        }
    }

    /// The exact solvers agree with each other.
    #[test]
    fn exact_solvers_agree(inst in arb_instance()) {
        let bf = exact::brute_force(&inst).map(|e| e.cost);
        let bb = exact::branch_and_bound(&inst).map(|e| e.cost);
        prop_assert_eq!(bf, bb);
    }

    /// Baselines bracket the solution: min_delay.delay ≤ solution.delay and
    /// min_sum.cost ≤ solution.cost.
    #[test]
    fn baselines_bracket(inst in arb_instance()) {
        if let Ok(out) = solve(&inst, &Config::default()) {
            if let Some(fast) = baselines::min_delay(&inst) {
                prop_assert!(fast.delay <= out.solution.delay);
            }
            if let Some(cheap) = baselines::min_sum(&inst) {
                prop_assert!(cheap.cost <= out.solution.cost);
            }
        }
    }
}
