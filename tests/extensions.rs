//! Integration tests for the extension APIs (vertex-disjoint kRSP and the
//! Definition-1 QoS reduction) through the public facade.

use krsp_suite::krsp::extensions::{solve_qos, solve_vertex_disjoint, vertex_disjoint_ok};
use krsp_suite::krsp::{solve, Config, Instance};
use krsp_suite::krsp_gen::{instantiate_with_retries, Family, Regime, Workload};
use krsp_suite::krsp_graph::NodeId;

fn sample(seed: u64) -> Option<Instance> {
    instantiate_with_retries(
        Workload {
            family: Family::Layered,
            n: 26,
            m: 100,
            regime: Regime::Anticorrelated,
            k: 2,
            tightness: 0.5,
            seed,
        },
        30,
    )
}

#[test]
fn vertex_disjoint_solutions_share_no_internal_vertex() {
    let mut tried = 0;
    for seed in 40..52 {
        let Some(inst) = sample(seed) else { continue };
        let Ok(v) = solve_vertex_disjoint(&inst, &Config::default()) else {
            continue;
        };
        assert!(vertex_disjoint_ok(&inst, &v.solution), "seed {seed}");
        assert!(v.solution.delay <= inst.delay_bound, "seed {seed}");
        // Vertex-disjointness is stricter, so the vertex-disjoint cost is
        // at least the *edge*-disjoint LP lower bound. (Comparing the two
        // approximate solutions directly would be unsound — both are only
        // 2-approximations of their respective optima.)
        if let Ok(e) = solve(&inst, &Config::default()) {
            if let Some(lb) = e.solution.lower_bound {
                assert!(
                    lb.to_f64() <= v.solution.cost as f64 + 1e-9,
                    "seed {seed}: vertex-disjoint cost below the edge LP bound"
                );
            }
        }
        tried += 1;
    }
    assert!(tried >= 2, "too few vertex-disjoint instances exercised");
}

#[test]
fn qos_reduction_sorts_and_bounds() {
    for seed in 60..66 {
        let Some(inst) = sample(seed) else { continue };
        let per_path = inst.delay_bound; // generous per-path target
        let Ok(out) = solve_qos(
            &inst.graph,
            inst.s,
            inst.t,
            inst.k,
            per_path,
            &Config::default(),
        ) else {
            continue;
        };
        assert_eq!(out.paths.len(), inst.k);
        assert!(out.total_delay <= per_path * inst.k as i64);
        for w in out.paths.windows(2) {
            assert!(w[0].delay() <= w[1].delay(), "paths not urgency-sorted");
        }
        assert!(out.paths_meeting_bound >= 1, "fastest path over the bound");
    }
}

#[test]
fn vertex_disjoint_on_tiny_hand_instance() {
    use krsp_suite::krsp_graph::DiGraph;
    // Two routes forced through vertex 1 → vertex-disjoint k=2 infeasible.
    let g = DiGraph::from_edges(3, &[(0, 1, 1, 1), (0, 1, 1, 1), (1, 2, 1, 1), (1, 2, 1, 1)]);
    let inst = Instance::new(g, NodeId(0), NodeId(2), 2, 10).unwrap();
    assert!(solve(&inst, &Config::default()).is_ok());
    assert!(solve_vertex_disjoint(&inst, &Config::default()).is_err());
}
