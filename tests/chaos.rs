//! Chaos suite: deterministic fault injection against the provisioning
//! service via `krsp-failpoint` sites.
//!
//! Every test serializes on [`fp_lock`] — the failpoint registry is
//! process-global, so concurrent tests would otherwise arm each other's
//! sites — and the guard clears all sites on drop, pass or fail. Injected
//! panics are expected output here; a process-wide panic hook silences
//! them so real failures stay visible in the log.
//!
//! The scenarios mirror the service's fault model (DESIGN.md §4.13):
//! a panicking solve is contained at the provisioning boundary, repeated
//! panics quarantine the offending key, an expired deadline degrades to a
//! completed lower rung (never a partial answer), and shutdown drains
//! in-flight work within its grace period.

use krsp_service::proto::{self, WireRequest, WireResponse};
use krsp_service::{
    load, ErrorKind, Rejection, RemoteSpec, Request, ServeOptions, Service, ServiceConfig,
    SolveRequest,
};
use krsp_suite::krsp::{self, Config, Instance};
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A 6-node instance with a real cost/delay tradeoff: a cheap slow route
/// (2, 20), a fast pricey one (16, 2), and two middling spares. The delay
/// bound picks the solver path: `d = 24` exercises the full bicameral
/// cycle search (`bicameral.seed` fires once, `bicameral.search` four
/// times), while `d = 14` is answered before the cycle search starts and
/// never reaches either site.
fn tradeoff(d_bound: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10), // cheap slow: (2, 20)
            (0, 2, 8, 1),
            (2, 5, 8, 1), // fast pricey: (16, 2)
            (0, 3, 2, 6),
            (3, 5, 2, 6), // middle: (4, 12)
            (0, 4, 9, 2),
            (4, 5, 9, 2), // spare fast: (18, 4)
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).expect("tradeoff instance is well-formed")
}

static FP_LOCK: Mutex<()> = Mutex::new(());

/// Serializes failpoint use across tests and guarantees a clean registry
/// on both entry and exit (including panicking exits).
struct FpGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FpGuard {
    fn drop(&mut self) {
        krsp_failpoint::clear();
    }
}

fn fp_lock() -> FpGuard {
    quiet_injected_panics();
    let guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    krsp_failpoint::clear();
    FpGuard(guard)
}

/// Suppresses backtrace spam from panics this suite injects on purpose;
/// any other panic still reports through the previous hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                prev(info);
            }
        }));
    });
}

fn chaos_service(quarantine_threshold: u32) -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        quarantine_threshold,
        quarantine_ttl: Duration::from_secs(60),
        ..ServiceConfig::default()
    })
}

#[test]
fn leader_panic_is_contained_and_followers_recover() {
    let _fp = fp_lock();
    // Exactly one panic: the first leader dies, its followers re-drive the
    // solve and must succeed on the (now disarmed) retry.
    krsp_failpoint::cfg("service.solve", "1*panic").expect("arm service.solve");
    let svc = chaos_service(0); // quarantine off: retries must reach the solver
    let inst = tradeoff(24);

    const K: usize = 6;
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let (svc, inst) = (&svc, inst.clone());
                s.spawn(move || {
                    svc.provision(Request {
                        instance: inst,
                        deadline: Some(Duration::from_secs(5)),
                        kernel: None,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request threads never panic"))
            .collect()
    });

    let panics = outcomes
        .iter()
        .filter(|o| matches!(o, Err(Rejection::SolverPanic(_))))
        .count();
    let solved = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(panics, 1, "exactly the leader sees the contained panic");
    assert_eq!(solved, K - 1, "every follower recovers: {outcomes:?}");
    let m = svc.metrics();
    assert_eq!(m.solver_panics, 1);
    assert_eq!(m.quarantined, 0, "threshold 0 disables quarantine");
    // The worker pool survived: the same key now solves normally.
    assert!(svc
        .provision(Request {
            instance: tradeoff(24),
            deadline: None,
            kernel: None,
        })
        .is_ok());
}

/// The ISSUE acceptance scenario: with `bicameral.seed=panic` armed the
/// server must answer *every* request on the affected key with a
/// structured error — no worker death, no hung follower — and the
/// quarantine counter must rise. An instance that never reaches the seed
/// scan keeps solving while the site stays armed.
#[test]
fn seed_panic_yields_structured_errors_and_quarantine() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("bicameral.seed", "panic").expect("arm bicameral.seed");
    let svc = chaos_service(2);

    for i in 0..8 {
        let reply = proto::dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: tradeoff(24),
                deadline_ms: Some(5000),
                kernel: None,
            }),
        );
        match reply {
            WireResponse::Error(e) => {
                assert_eq!(e.kind, ErrorKind::SolverPanic, "request {i}: {e:?}");
            }
            other => panic!("request {i}: expected a structured error, got {other:?}"),
        }
    }
    let m = svc.metrics();
    assert!(m.solver_panics >= 2, "panics = {}", m.solver_panics);
    assert!(m.quarantined > 0, "key never entered quarantine");

    // The wire string is machine-readable, not a Debug dump.
    let line = serde_json::to_string(&proto::dispatch(
        &svc,
        WireRequest::Solve(SolveRequest {
            instance: tradeoff(24),
            deadline_ms: Some(5000),
            kernel: None,
        }),
    ))
    .expect("serialize error reply");
    assert!(line.contains("\"solver_panic\""), "line = {line}");

    // d = 14 is answered before the seed scan: unaffected while armed.
    match proto::dispatch(
        &svc,
        WireRequest::Solve(SolveRequest {
            instance: tradeoff(14),
            deadline_ms: Some(5000),
            kernel: None,
        }),
    ) {
        WireResponse::Solved(r) => assert!(r.delay <= 14),
        other => panic!("unaffected key must still solve, got {other:?}"),
    }
}

#[test]
fn expired_deadline_degrades_to_a_completed_rung() {
    let _fp = fp_lock();
    // Each cycle-search round stalls 60 ms; a full solve needs four. A
    // 50 ms deadline therefore trips the cancellation token mid-search,
    // and the ladder must fall through to min-delay — a rung that runs to
    // completion — rather than returning a partial path system.
    krsp_failpoint::cfg("bicameral.search", "delay(60)").expect("arm bicameral.search");
    let svc = chaos_service(0);
    let inst = tradeoff(24);
    let r = svc
        .provision(Request {
            instance: inst.clone(),
            deadline: Some(Duration::from_millis(50)),
            kernel: None,
        })
        .expect("cancellation degrades, it does not reject");
    assert_ne!(
        r.rung,
        krsp_service::Rung::Full,
        "the stalled full rung cannot have finished"
    );
    assert_eq!(r.guarantee, r.rung.guarantee(), "advertised guarantee");
    // Completed answer: k disjoint paths inside the delay bound.
    assert_eq!(r.solution.paths(&inst).len(), inst.k);
    assert!(
        r.solution.delay <= inst.delay_bound,
        "delay {} exceeds bound {}",
        r.solution.delay,
        inst.delay_bound
    );
}

#[test]
fn injected_delays_never_change_answers() {
    let _fp = fp_lock();
    let inst = tradeoff(24);
    let clean = krsp::solve(&inst, &Config::default()).expect("clean solve");
    // Jitter every solver-side site; results must stay bit-identical —
    // fault injection may reorder timing, never outcomes.
    for (site, action) in [
        ("bicameral.seed", "delay(2)"),
        ("bicameral.search", "delay(2)"),
        ("csp.dp", "delay(1)"),
        ("lp.simplex", "delay(1)"),
    ] {
        krsp_failpoint::cfg(site, action).expect("arm jitter site");
    }
    let jittered = krsp::solve(&inst, &Config::default()).expect("jittered solve");
    assert_eq!(clean.solution.cost, jittered.solution.cost);
    assert_eq!(clean.solution.delay, jittered.solution.delay);
    assert_eq!(clean.solution.edges, jittered.solution.edges);
}

#[test]
fn shutdown_drains_in_flight_wire_requests() {
    let _fp = fp_lock();
    // Every solve stalls 200 ms so the shutdown flag demonstrably flips
    // while the request is still in flight.
    krsp_failpoint::cfg("service.solve", "delay(200)").expect("arm service.solve");
    let svc = Arc::new(chaos_service(0));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind chaos listener");
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let shutdown = Arc::new(AtomicBool::new(false));

    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    grace: Duration::from_secs(5),
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    use std::io::{BufRead, BufReader, Write};
    let mut conn = BufReader::new(TcpStream::connect(addr).expect("connect"));
    let line = serde_json::to_string(&WireRequest::Solve(SolveRequest {
        instance: tradeoff(24),
        deadline_ms: Some(5000),
        kernel: None,
    }))
    .expect("serialize request");
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");

    // Flip shutdown while the solve is inside its 200 ms stall.
    std::thread::sleep(Duration::from_millis(50));
    shutdown.store(true, Ordering::Release);

    let mut reply = String::new();
    conn.read_line(&mut reply).expect("read reply");
    match serde_json::from_str::<WireResponse>(reply.trim()).expect("parse reply") {
        WireResponse::Solved(r) => assert!(r.delay <= 24),
        other => panic!("in-flight request must complete through drain, got {other:?}"),
    }

    server
        .join()
        .expect("server thread exits")
        .expect("serve_with_shutdown returns cleanly");
    assert!(svc.is_shutting_down());
    // Post-drain the service sheds instead of solving.
    assert!(matches!(
        svc.provision(Request {
            instance: tradeoff(14),
            deadline: None,
            kernel: None,
        }),
        Err(Rejection::ShuttingDown)
    ));
}

#[test]
fn remote_replay_retries_until_the_server_appears() {
    let _fp = fp_lock();
    // Reserve a port, then free it so the replay's first connects fail.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };
    let spec = load::LoadSpec {
        requests: 6,
        unique: 2,
        clients: 2,
        n: 24,
        ..load::LoadSpec::default()
    };
    let remote = RemoteSpec {
        addr: addr.to_string(),
        retries: 12,
    };

    let svc = Arc::new(chaos_service(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            // Bind late: the clients must survive the gap via backoff.
            std::thread::sleep(Duration::from_millis(120));
            let listener = TcpListener::bind(addr).expect("late bind");
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    let report = load::run_remote(&spec, &remote).expect("remote replay");
    shutdown.store(true, Ordering::Release);
    server
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");

    assert!(
        report.transport_retries > 0,
        "clients connected before the listener existed?"
    );
    assert_eq!(report.wire_errors, 0, "report: {report:?}");
    assert_eq!(
        report.completed + report.infeasible,
        spec.requests as u64,
        "every request answered: {report:?}"
    );
    assert_eq!(report.service_metrics.admitted, report.completed);
}

/// T10 (EXPERIMENTS.md): a 120-request wire replay with solver stalls and
/// a mid-replay shutdown. Every request must resolve — solved, rejected,
/// or a structured shed/transport error — and the drain must finish inside
/// its grace period. Writes `results/t10_chaos.json`.
#[test]
#[ignore = "chaos storm: multi-second wall clock; run via scripts/ci.sh"]
fn t10_chaos_storm_report() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("service.solve", "delay(5)").expect("arm service.solve");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let svc = Arc::new(chaos_service(2));
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    grace: Duration::from_secs(10),
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    let spec = load::LoadSpec {
        requests: 120,
        unique: 12,
        clients: 4,
        n: 24,
        deadline_ms: Some(2000),
        kernel: None,
        ..load::LoadSpec::default()
    };
    let remote = RemoteSpec {
        addr: addr.to_string(),
        retries: 3,
    };
    let trigger = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            // SIGTERM stand-in: flip the flag mid-replay.
            std::thread::sleep(Duration::from_millis(500));
            shutdown.store(true, Ordering::Release);
        })
    };
    let report = load::run_remote(&spec, &remote).expect("storm replay");
    trigger.join().expect("trigger thread");
    let drained = Instant::now();
    server
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");
    assert!(
        drained.elapsed() < Duration::from_secs(10),
        "drain blew through its grace period"
    );

    let accounted = report.completed
        + report.infeasible
        + report.rejected_queue_full
        + report.rejected_expired
        + report.wire_errors;
    assert_eq!(
        accounted, spec.requests as u64,
        "unaccounted requests: {report:?}"
    );
    assert!(report.completed > 0, "the storm answered nothing");

    std::fs::create_dir_all("results").expect("mkdir results");
    let doc = format!(
        "{{\"schema\": \"krsp-chaos-t10/v1\", \"report\": {}}}\n",
        serde_json::to_string_pretty(&report).expect("serialize report")
    );
    std::fs::write("results/t10_chaos.json", doc).expect("write t10 report");
}
