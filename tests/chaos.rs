//! Chaos suite: deterministic fault injection against the provisioning
//! service via `krsp-failpoint` sites.
//!
//! Every test serializes on [`fp_lock`] — the failpoint registry is
//! process-global, so concurrent tests would otherwise arm each other's
//! sites — and the guard clears all sites on drop, pass or fail. Injected
//! panics are expected output here; a process-wide panic hook silences
//! them so real failures stay visible in the log.
//!
//! The scenarios mirror the service's fault model (DESIGN.md §4.13):
//! a panicking solve is contained at the provisioning boundary, repeated
//! panics quarantine the offending key, an expired deadline degrades to a
//! completed lower rung (never a partial answer), and shutdown drains
//! in-flight work within its grace period.

use krsp_service::proto::{self, WireRequest, WireResponse};
use krsp_service::{
    load, ErrorKind, Rejection, RemoteSpec, Request, ServeOptions, Service, ServiceConfig,
    SolveRequest,
};
use krsp_suite::krsp::{self, Config, Instance};
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A 6-node instance with a real cost/delay tradeoff: a cheap slow route
/// (2, 20), a fast pricey one (16, 2), and two middling spares. The delay
/// bound picks the solver path: `d = 24` exercises the full bicameral
/// cycle search (`bicameral.seed` fires once, `bicameral.search` four
/// times), while `d = 14` is answered before the cycle search starts and
/// never reaches either site.
fn tradeoff(d_bound: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10), // cheap slow: (2, 20)
            (0, 2, 8, 1),
            (2, 5, 8, 1), // fast pricey: (16, 2)
            (0, 3, 2, 6),
            (3, 5, 2, 6), // middle: (4, 12)
            (0, 4, 9, 2),
            (4, 5, 9, 2), // spare fast: (18, 4)
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).expect("tradeoff instance is well-formed")
}

static FP_LOCK: Mutex<()> = Mutex::new(());

/// Serializes failpoint use across tests and guarantees a clean registry
/// on both entry and exit (including panicking exits).
struct FpGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FpGuard {
    fn drop(&mut self) {
        krsp_failpoint::clear();
    }
}

fn fp_lock() -> FpGuard {
    quiet_injected_panics();
    let guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    krsp_failpoint::clear();
    FpGuard(guard)
}

/// Suppresses backtrace spam from panics this suite injects on purpose;
/// any other panic still reports through the previous hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                prev(info);
            }
        }));
    });
}

fn chaos_service(quarantine_threshold: u32) -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        quarantine_threshold,
        quarantine_ttl: Duration::from_secs(60),
        ..ServiceConfig::default()
    })
}

#[test]
fn leader_panic_is_contained_and_followers_recover() {
    let _fp = fp_lock();
    // Exactly one panic: the first leader dies, its followers re-drive the
    // solve and must succeed on the (now disarmed) retry.
    krsp_failpoint::cfg("service.solve", "1*panic").expect("arm service.solve");
    let svc = chaos_service(0); // quarantine off: retries must reach the solver
    let inst = tradeoff(24);

    const K: usize = 6;
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let (svc, inst) = (&svc, inst.clone());
                s.spawn(move || {
                    svc.provision(Request {
                        instance: inst,
                        deadline: Some(Duration::from_secs(5)),
                        kernel: None,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request threads never panic"))
            .collect()
    });

    let panics = outcomes
        .iter()
        .filter(|o| matches!(o, Err(Rejection::SolverPanic(_))))
        .count();
    let solved = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(panics, 1, "exactly the leader sees the contained panic");
    assert_eq!(solved, K - 1, "every follower recovers: {outcomes:?}");
    let m = svc.metrics();
    assert_eq!(m.solver_panics, 1);
    assert_eq!(m.quarantined, 0, "threshold 0 disables quarantine");
    // The worker pool survived: the same key now solves normally.
    assert!(svc
        .provision(Request {
            instance: tradeoff(24),
            deadline: None,
            kernel: None,
        })
        .is_ok());
}

/// The ISSUE acceptance scenario: with `bicameral.seed=panic` armed the
/// server must answer *every* request on the affected key with a
/// structured error — no worker death, no hung follower — and the
/// quarantine counter must rise. An instance that never reaches the seed
/// scan keeps solving while the site stays armed.
#[test]
fn seed_panic_yields_structured_errors_and_quarantine() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("bicameral.seed", "panic").expect("arm bicameral.seed");
    let svc = chaos_service(2);

    for i in 0..8 {
        let reply = proto::dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: tradeoff(24),
                deadline_ms: Some(5000),
                kernel: None,
            }),
        );
        match reply {
            WireResponse::Error(e) => {
                assert_eq!(e.kind, ErrorKind::SolverPanic, "request {i}: {e:?}");
            }
            other => panic!("request {i}: expected a structured error, got {other:?}"),
        }
    }
    let m = svc.metrics();
    assert!(m.solver_panics >= 2, "panics = {}", m.solver_panics);
    assert!(m.quarantined > 0, "key never entered quarantine");

    // The wire string is machine-readable, not a Debug dump.
    let line = serde_json::to_string(&proto::dispatch(
        &svc,
        WireRequest::Solve(SolveRequest {
            instance: tradeoff(24),
            deadline_ms: Some(5000),
            kernel: None,
        }),
    ))
    .expect("serialize error reply");
    assert!(line.contains("\"solver_panic\""), "line = {line}");

    // d = 14 is answered before the seed scan: unaffected while armed.
    match proto::dispatch(
        &svc,
        WireRequest::Solve(SolveRequest {
            instance: tradeoff(14),
            deadline_ms: Some(5000),
            kernel: None,
        }),
    ) {
        WireResponse::Solved(r) => assert!(r.delay <= 14),
        other => panic!("unaffected key must still solve, got {other:?}"),
    }
}

#[test]
fn expired_deadline_degrades_to_a_completed_rung() {
    let _fp = fp_lock();
    // Each cycle-search round stalls 60 ms; a full solve needs four. A
    // 50 ms deadline therefore trips the cancellation token mid-search,
    // and the ladder must fall through to min-delay — a rung that runs to
    // completion — rather than returning a partial path system.
    krsp_failpoint::cfg("bicameral.search", "delay(60)").expect("arm bicameral.search");
    let svc = chaos_service(0);
    let inst = tradeoff(24);
    let r = svc
        .provision(Request {
            instance: inst.clone(),
            deadline: Some(Duration::from_millis(50)),
            kernel: None,
        })
        .expect("cancellation degrades, it does not reject");
    assert_ne!(
        r.rung,
        krsp_service::Rung::Full,
        "the stalled full rung cannot have finished"
    );
    assert_eq!(r.guarantee, r.rung.guarantee(), "advertised guarantee");
    // Completed answer: k disjoint paths inside the delay bound.
    assert_eq!(r.solution.paths(&inst).len(), inst.k);
    assert!(
        r.solution.delay <= inst.delay_bound,
        "delay {} exceeds bound {}",
        r.solution.delay,
        inst.delay_bound
    );
}

#[test]
fn injected_delays_never_change_answers() {
    let _fp = fp_lock();
    let inst = tradeoff(24);
    let clean = krsp::solve(&inst, &Config::default()).expect("clean solve");
    // Jitter every solver-side site; results must stay bit-identical —
    // fault injection may reorder timing, never outcomes.
    for (site, action) in [
        ("bicameral.seed", "delay(2)"),
        ("bicameral.search", "delay(2)"),
        ("csp.dp", "delay(1)"),
        ("lp.simplex", "delay(1)"),
    ] {
        krsp_failpoint::cfg(site, action).expect("arm jitter site");
    }
    let jittered = krsp::solve(&inst, &Config::default()).expect("jittered solve");
    assert_eq!(clean.solution.cost, jittered.solution.cost);
    assert_eq!(clean.solution.delay, jittered.solution.delay);
    assert_eq!(clean.solution.edges, jittered.solution.edges);
}

#[test]
fn shutdown_drains_in_flight_wire_requests() {
    let _fp = fp_lock();
    // Every solve stalls 200 ms so the shutdown flag demonstrably flips
    // while the request is still in flight.
    krsp_failpoint::cfg("service.solve", "delay(200)").expect("arm service.solve");
    let svc = Arc::new(chaos_service(0));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind chaos listener");
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let shutdown = Arc::new(AtomicBool::new(false));

    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    grace: Duration::from_secs(5),
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    use std::io::{BufRead, BufReader, Write};
    let mut conn = BufReader::new(TcpStream::connect(addr).expect("connect"));
    let line = serde_json::to_string(&WireRequest::Solve(SolveRequest {
        instance: tradeoff(24),
        deadline_ms: Some(5000),
        kernel: None,
    }))
    .expect("serialize request");
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");

    // Flip shutdown while the solve is inside its 200 ms stall.
    std::thread::sleep(Duration::from_millis(50));
    shutdown.store(true, Ordering::Release);

    let mut reply = String::new();
    conn.read_line(&mut reply).expect("read reply");
    match serde_json::from_str::<WireResponse>(reply.trim()).expect("parse reply") {
        WireResponse::Solved(r) => assert!(r.delay <= 24),
        other => panic!("in-flight request must complete through drain, got {other:?}"),
    }

    server
        .join()
        .expect("server thread exits")
        .expect("serve_with_shutdown returns cleanly");
    assert!(svc.is_shutting_down());
    // Post-drain the service sheds instead of solving.
    assert!(matches!(
        svc.provision(Request {
            instance: tradeoff(14),
            deadline: None,
            kernel: None,
        }),
        Err(Rejection::ShuttingDown)
    ));
}

#[test]
fn remote_replay_retries_until_the_server_appears() {
    let _fp = fp_lock();
    // Reserve a port, then free it so the replay's first connects fail.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };
    let spec = load::LoadSpec {
        requests: 6,
        unique: 2,
        clients: 2,
        n: 24,
        ..load::LoadSpec::default()
    };
    let remote = RemoteSpec {
        addr: addr.to_string(),
        retries: 12,
    };

    let svc = Arc::new(chaos_service(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            // Bind late: the clients must survive the gap via backoff.
            std::thread::sleep(Duration::from_millis(120));
            let listener = TcpListener::bind(addr).expect("late bind");
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    let report = load::run_remote(&spec, &remote).expect("remote replay");
    shutdown.store(true, Ordering::Release);
    server
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");

    assert!(
        report.transport_retries > 0,
        "clients connected before the listener existed?"
    );
    assert_eq!(report.wire_errors, 0, "report: {report:?}");
    assert_eq!(
        report.completed + report.infeasible,
        spec.requests as u64,
        "every request answered: {report:?}"
    );
    assert_eq!(report.service_metrics.admitted, report.completed);
}

/// T10 (EXPERIMENTS.md): a 120-request wire replay with solver stalls and
/// a mid-replay shutdown. Every request must resolve — solved, rejected,
/// or a structured shed/transport error — and the drain must finish inside
/// its grace period. Writes `results/t10_chaos.json`.
#[test]
#[ignore = "chaos storm: multi-second wall clock; run via scripts/ci.sh"]
fn t10_chaos_storm_report() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("service.solve", "delay(5)").expect("arm service.solve");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let svc = Arc::new(chaos_service(2));
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    grace: Duration::from_secs(10),
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    let spec = load::LoadSpec {
        requests: 120,
        unique: 12,
        clients: 4,
        n: 24,
        deadline_ms: Some(2000),
        kernel: None,
        ..load::LoadSpec::default()
    };
    let remote = RemoteSpec {
        addr: addr.to_string(),
        retries: 3,
    };
    let trigger = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            // SIGTERM stand-in: flip the flag mid-replay.
            std::thread::sleep(Duration::from_millis(500));
            shutdown.store(true, Ordering::Release);
        })
    };
    let report = load::run_remote(&spec, &remote).expect("storm replay");
    trigger.join().expect("trigger thread");
    let drained = Instant::now();
    server
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");
    assert!(
        drained.elapsed() < Duration::from_secs(10),
        "drain blew through its grace period"
    );

    let accounted = report.completed
        + report.infeasible
        + report.rejected_queue_full
        + report.rejected_expired
        + report.wire_errors;
    assert_eq!(
        accounted, spec.requests as u64,
        "unaccounted requests: {report:?}"
    );
    assert!(report.completed > 0, "the storm answered nothing");

    std::fs::create_dir_all("results").expect("mkdir results");
    let doc = format!(
        "{{\"schema\": \"krsp-chaos-t10/v1\", \"report\": {}}}\n",
        serde_json::to_string_pretty(&report).expect("serialize report")
    );
    std::fs::write("results/t10_chaos.json", doc).expect("write t10 report");
}

/// A link-flap storm against a registered lineage: the spike half of the
/// storm is non-decreasing (costs and delays only go up), so the epoch
/// sweep accounts every tracked entry as retained or evicted; the
/// restore half *decreases* weights, which must evict conservatively —
/// a cached answer's optimality certificate does not survive a weight
/// drop. Throughout, the service keeps answering, and once the weights
/// are back the answers match the pre-storm solve exactly.
#[test]
fn link_flap_storm_sweeps_the_cache_and_keeps_answering() {
    let _fp = fp_lock();
    let svc = chaos_service(2);
    let inst0 = tradeoff(22);
    let (topo, epoch0) = svc.register_topology(&inst0.graph);
    assert_eq!(epoch0, 0);
    let first = svc
        .provision(Request {
            instance: inst0.clone(),
            deadline: None,
            kernel: None,
        })
        .expect("pre-storm solve");

    // Factor-2 spikes on three links keep the instance feasible (the two
    // fastest disjoint legs total delay 12 even fully spiked, under the
    // bound of 22) while forcing a real sweep decision per entry.
    let (spikes, restores) = krsp_suite::krsp_gen::flap_storm(&inst0.graph, 3, 2, 99);
    let spiked = svc.advance_epoch(topo, &spikes).expect("spike advance");
    assert_eq!(spiked.epoch, 1);
    assert_eq!(
        spiked.retained + spiked.evicted,
        1,
        "the sweep must account the one cached entry: {spiked:?}"
    );

    // Traffic during the storm: the spiked-weights instance answers
    // within its bound.
    let g1 = krsp_suite::krsp_gen::apply_changes(&inst0.graph, &spikes);
    let inst1 = Instance::new(g1, inst0.s, inst0.t, inst0.k, inst0.delay_bound)
        .expect("spiked instance is well-formed");
    let mid = svc
        .provision(Request {
            instance: inst1.clone(),
            deadline: None,
            kernel: None,
        })
        .expect("mid-storm solve");
    assert!(mid.solution.delay <= inst1.delay_bound);

    // The restore decreases weights: every tracked entry must go.
    let restored = svc.advance_epoch(topo, &restores).expect("restore advance");
    assert_eq!(restored.epoch, 2);
    assert_eq!(
        restored.retained, 0,
        "a weight decrease must evict conservatively: {restored:?}"
    );

    // Weights are back to the original values: the lineage answers the
    // original instance again within the same guarantee. (Not
    // necessarily bit-identically — the restore's eviction leaves a
    // warm-start seed, and a warm solve may legitimately certify a
    // different, even cheaper, answer than the cold 2-approximation.)
    let back = svc
        .provision(Request {
            instance: inst0.clone(),
            deadline: None,
            kernel: None,
        })
        .expect("post-storm solve");
    assert!(back.solution.delay <= inst0.delay_bound);
    assert!(
        i128::from(back.solution.cost) <= 2 * i128::from(first.solution.cost),
        "post-storm cost {} blew the guarantee vs pre-storm {}",
        back.solution.cost,
        first.solution.cost
    );

    let m = svc.metrics();
    assert_eq!(m.epoch, 2);
    assert!(m.epoch_advances >= 2, "metrics missed the storm: {m:?}");
}

/// A rolling-update replay under ambient solver jitter: three traffic
/// windows separated by per-lineage cost ramps, with every solve delayed
/// by an injected stall. Every window must fully answer, every epoch
/// advance must account each lineage's cached entry, and the repeats
/// inside each window must keep hitting the (epoch-scoped) cache.
#[test]
fn rolling_replay_rides_through_solver_jitter() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("service.solve", "delay(2)").expect("arm service.solve");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let svc = Arc::new(chaos_service(2));
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };

    let spec = load::LoadSpec {
        requests: 12,
        unique: 3,
        clients: 1,
        n: 24,
        ..load::LoadSpec::default()
    };
    let rolling = load::RollingSpec {
        windows: 3,
        ramp_edges: 1,
        ramp_num: 11,
        ramp_den: 10,
    };
    let remote = RemoteSpec {
        addr: addr.to_string(),
        retries: 3,
    };
    let report = load::run_rolling(&spec, &rolling, &remote).expect("rolling replay");
    shutdown.store(true, Ordering::Release);
    server
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");

    assert_eq!(report.lineages, 3);
    assert_eq!(report.windows.len(), 3);
    for w in &report.windows {
        assert_eq!(w.wire_errors, 0, "window {} hit wire errors", w.window);
        assert_eq!(
            w.completed, 12,
            "window {} lost answers: {report:?}",
            w.window
        );
        assert!(
            w.cache_hits > 0,
            "window {} repeats missed the cache: {report:?}",
            w.window
        );
    }
    for w in &report.windows[1..] {
        assert_eq!(
            w.advance_retained + w.advance_evicted,
            3,
            "the advance before window {} must account one entry per lineage: {report:?}",
            w.window
        );
    }
    assert_eq!(report.service_metrics.epoch_advances, 6);
}

/// Restart-under-load: a served daemon with the disk tier enabled is
/// SIGKILLed — no drain, no graceful flush — and a fresh daemon pointed
/// at the same cache directory must answer the same replay with a
/// nonzero hit rate, recovered from disk. The restart binds a fresh
/// port (the dead process's connections may pin the old one in
/// TIME_WAIT); only the cache directory carries state across.
#[test]
fn sigkill_restart_reheats_from_the_disk_tier() {
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("krsp-chaos-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir cache dir");
    let reserve = || {
        TcpListener::bind("127.0.0.1:0")
            .expect("probe bind")
            .local_addr()
            .expect("probe addr")
    };
    let spawn = |addr: std::net::SocketAddr| {
        Command::new(env!("CARGO_BIN_EXE_krsp-cli"))
            .args([
                "serve",
                &addr.to_string(),
                "--workers",
                "2",
                "--cache-dir",
                dir.to_str().expect("utf-8 tmpdir"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn krsp-cli serve")
    };
    let spec = load::LoadSpec {
        requests: 12,
        unique: 3,
        clients: 2,
        n: 24,
        ..load::LoadSpec::default()
    };

    let addr = reserve();
    let mut child = spawn(addr);
    let warmup = load::run_remote(
        &spec,
        &RemoteSpec {
            addr: addr.to_string(),
            retries: 12,
        },
    )
    .expect("warmup replay");
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    let addr = reserve();
    let mut child = spawn(addr);
    let replay = load::run_remote(
        &spec,
        &RemoteSpec {
            addr: addr.to_string(),
            retries: 12,
        },
    )
    .expect("replay after restart");
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(warmup.completed, 12, "warmup lost answers: {warmup:?}");
    assert_eq!(replay.completed, 12, "replay lost answers: {replay:?}");
    assert!(
        replay.cache_hits > 0,
        "the disk tier answered nothing after a SIGKILL restart: {replay:?}"
    );
    assert!(
        replay.service_metrics.disk_recovered > 0,
        "restart recovered no records: {:?}",
        replay.service_metrics
    );
    assert!(
        replay.service_metrics.disk_hits > 0,
        "no replay answer came off disk: {:?}",
        replay.service_metrics
    );
}

/// T14 (EXPERIMENTS.md): topology epochs, warm starts, and the disk
/// tier, measured end to end. Three halves:
///
/// * **Rolling replay** (`krsp-load --rolling` shape over the wire):
///   single-edge cost ramps between windows must retain > 80% of the
///   epoch-scoped cache and register warm starts on the evicted rest.
/// * **Warm vs cold**: on tight-budget generated instances, a seeded
///   re-solve after a small delta must beat the cold re-solve's median
///   latency (the certificate accept skips the probe bisection).
/// * **Restart-under-load**: a SIGKILLed daemon restarted over the same
///   `--cache-dir` must answer the first replay window with a nonzero
///   hit rate, recovered from disk.
///
/// Writes `results/t14_epochs.json`.
#[test]
#[ignore = "epoch report: multi-second wall clock; run via scripts/ci.sh"]
fn t14_epoch_warm_disk_report() {
    use krsp_service::{solve_degraded_seeded, solve_degraded_with, KernelLadder, LadderPolicy};
    use krsp_suite::krsp::CancelToken;
    use krsp_suite::krsp_gen::{self, Regime, Workload};
    use std::process::{Command, Stdio};

    let _fp = fp_lock();

    // -- Half 1: rolling replay over the wire, single-edge ramps. -----
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let svc = Arc::new(chaos_service(2));
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let (svc, shutdown) = (Arc::clone(&svc), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            proto::serve_with_shutdown(
                &svc,
                listener,
                shutdown,
                ServeOptions {
                    poll: Duration::from_millis(10),
                    ..ServeOptions::default()
                },
            )
        })
    };
    let spec = load::LoadSpec {
        requests: 60,
        unique: 12,
        clients: 1,
        n: 60,
        ..load::LoadSpec::default()
    };
    let rolling = load::RollingSpec {
        windows: 4,
        ramp_edges: 1,
        ramp_num: 11,
        ramp_den: 10,
    };
    let remote = RemoteSpec {
        addr: addr.to_string(),
        retries: 3,
    };
    let report = load::run_rolling(&spec, &rolling, &remote).expect("rolling replay");
    shutdown.store(true, Ordering::Release);
    server
        .join()
        .expect("server thread exits")
        .expect("server drains cleanly");

    let (retained, swept): (u64, u64) = report.windows[1..].iter().fold((0, 0), |(r, s), w| {
        (
            r + w.advance_retained,
            s + w.advance_retained + w.advance_evicted,
        )
    });
    let retention = retained as f64 / swept.max(1) as f64;
    assert!(
        retention > 0.8,
        "single-edge ramps must retain > 80% of the cache, got {retention:.2}: {report:?}"
    );
    for w in &report.windows {
        assert_eq!(w.completed, w.issued, "window {} lost answers", w.window);
    }

    // -- Half 2: warm vs cold medians on tight-budget instances. ------
    let cfg = Config::default();
    let policy = LadderPolicy::default();
    let kernels = KernelLadder::default();
    let budget = Duration::from_secs(30);
    let never = CancelToken::never();
    // (cold µs, warm µs, did the seed participate) per instance.
    let mut pairs: Vec<(u64, u64, bool)> = Vec::new();
    for u in 0..24u64 {
        let w = Workload {
            family: krsp_suite::krsp_gen::Family::Gnm,
            n: 48,
            m: 192,
            regime: Regime::Anticorrelated,
            k: 2,
            tightness: 0.2,
            seed: 9000 + 1000 * u,
        };
        let Some(inst0) = krsp_gen::instantiate_with_retries(w, 50) else {
            continue;
        };
        let seed_solve = solve_degraded_with(&inst0, &cfg, budget, &policy, &kernels, &never)
            .expect("generator certified feasibility");
        let changes = krsp_gen::cost_ramp(&inst0.graph, 1, 11, 10, u);
        let g1 = krsp_gen::apply_changes(&inst0.graph, &changes);
        let inst1 = Instance::new(g1, inst0.s, inst0.t, inst0.k, inst0.delay_bound)
            .expect("cost ramp preserves validity");

        let t0 = Instant::now();
        let cold = solve_degraded_with(&inst1, &cfg, budget, &policy, &kernels, &never)
            .expect("ramped instance stays feasible");
        let cold_us = t0.elapsed().as_micros() as u64;
        let t0 = Instant::now();
        let warm = solve_degraded_seeded(
            &inst1,
            &cfg,
            budget,
            &policy,
            &kernels,
            &never,
            Some(&seed_solve.solution.edges),
        )
        .expect("seeded re-solve stays feasible");
        pairs.push((cold_us, t0.elapsed().as_micros() as u64, warm.warm));
        assert!(warm.solution.delay <= inst1.delay_bound);
        assert!(
            i128::from(warm.solution.cost) <= 2 * i128::from(cold.solution.cost),
            "warm answer blew the guarantee"
        );
    }
    let p50 = |mut v: Vec<u64>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    // The claim is about solves where the seed *participates* (on the
    // rest the warm path reduces to the cold one by construction —
    // pinned bit-identical by tests/warm_diff.rs — so including them
    // only dilutes both medians equally with tied samples).
    let participating: Vec<&(u64, u64, bool)> = pairs.iter().filter(|p| p.2).collect();
    let warm_solves = participating.len() as u64;
    assert!(warm_solves > 0, "no seed ever participated — vacuous A/B");
    let warm_p50 = p50(participating.iter().map(|p| p.1).collect());
    let cold_p50 = p50(participating.iter().map(|p| p.0).collect());
    assert!(
        warm_p50 < cold_p50,
        "warm median {warm_p50} µs must beat cold {cold_p50} µs ({warm_solves} warm solves)"
    );

    // -- Half 3: SIGKILL restart over the disk tier. ------------------
    let dir = std::env::temp_dir().join(format!("krsp-t14-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir cache dir");
    let reserve = || {
        TcpListener::bind("127.0.0.1:0")
            .expect("probe bind")
            .local_addr()
            .expect("probe addr")
    };
    let spawn = |addr: std::net::SocketAddr| {
        Command::new(env!("CARGO_BIN_EXE_krsp-cli"))
            .args([
                "serve",
                &addr.to_string(),
                "--workers",
                "2",
                "--cache-dir",
                dir.to_str().expect("utf-8 tmpdir"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn krsp-cli serve")
    };
    let restart_spec = load::LoadSpec {
        requests: 24,
        unique: 6,
        clients: 2,
        n: 24,
        ..load::LoadSpec::default()
    };
    let addr = reserve();
    let mut child = spawn(addr);
    let warmup = load::run_remote(
        &restart_spec,
        &RemoteSpec {
            addr: addr.to_string(),
            retries: 12,
        },
    )
    .expect("warmup replay");
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");
    let addr = reserve();
    let mut child = spawn(addr);
    let replay = load::run_remote(
        &restart_spec,
        &RemoteSpec {
            addr: addr.to_string(),
            retries: 12,
        },
    )
    .expect("replay after restart");
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
    let hit_rate = replay.cache_hits as f64 / replay.completed.max(1) as f64;
    assert!(
        hit_rate > 0.0,
        "the restarted daemon answered its first window entirely cold: {replay:?}"
    );
    assert!(replay.service_metrics.disk_recovered > 0);

    std::fs::create_dir_all("results").expect("mkdir results");
    let doc = format!(
        "{{\"schema\": \"krsp-epochs-t14/v1\",\n \"retention_rate\": {retention:.4},\n \
         \"warm_vs_cold\": {{\"instances\": {}, \"warm_solves\": {warm_solves}, \
         \"warm_p50_us\": {warm_p50}, \"cold_p50_us\": {cold_p50}, \
         \"medians_over\": \"seed-participating solves\"}},\n \
         \"restart_hit_rate\": {hit_rate:.4},\n \"rolling\": {},\n \
         \"restart_warmup\": {},\n \"restart_replay\": {}}}\n",
        pairs.len(),
        serde_json::to_string_pretty(&report).expect("serialize rolling report"),
        serde_json::to_string_pretty(&warmup).expect("serialize warmup report"),
        serde_json::to_string_pretty(&replay).expect("serialize replay report"),
    );
    std::fs::write("results/t14_epochs.json", doc).expect("write t14 report");
}
