//! Kernel pinning: the flat budgeted-DP kernel versus the preserved 2-D
//! `Option`-table implementation (`krsp_flow::reference`).
//!
//! The flat rewrite must be *bit-identical* to the original, not merely
//! equal in objective value: the DP's tie-breaking (first-seen minimum in
//! edge-id order, then smallest-value-first zero-budget relaxation) decides
//! which path is recovered, and downstream consumers (greedy RSP, the
//! regression corpus in EXPERIMENTS.md) observe the paths themselves.
//! Every comparison below asserts full `CspPath` equality — edge sequence,
//! cost, and delay.

use krsp_suite::krsp_flow::{constrained_shortest_path, reference, rsp_fptas};
use krsp_suite::krsp_gen::{instantiate_with_retries, Family, Regime, Workload};
use krsp_suite::krsp_graph::DiGraph;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const FAMILIES: [Family; 5] = [
    Family::Gnm,
    Family::Grid,
    Family::Layered,
    Family::Geometric,
    Family::ScaleFree,
];
const REGIMES: [Regime; 3] = [Regime::Uniform, Regime::Correlated, Regime::Anticorrelated];

/// A generator-family graph, optionally rebuilt with a heavy share of
/// zero-delay edges (`zero_stride > 0` zeroes every `zero_stride`-th edge's
/// delay) — the zero-budget Dijkstra pass is the trickiest part of the DP
/// and barely exercised by generic weights.
fn family_graph(
    family: Family,
    n: usize,
    regime: Regime,
    seed: u64,
    zero_stride: usize,
) -> DiGraph {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let g = family.sample(n, n * 4, regime, &mut rng);
    if zero_stride == 0 {
        return g;
    }
    let mut rebuilt = DiGraph::new(g.node_count());
    for (id, e) in g.edge_iter() {
        let delay = if id.index() % zero_stride == 0 {
            0
        } else {
            e.delay
        };
        rebuilt.add_edge(e.src, e.dst, e.cost, delay);
    }
    rebuilt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat exact DP ≡ 2-D oracle on random family graphs: same
    /// feasibility verdict, same recovered path, edge for edge.
    #[test]
    fn flat_dp_matches_oracle(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        n in 8usize..28,
        seed in 0u64..1_000_000,
        bound in 0i64..60,
        zero_stride in 0usize..4,
    ) {
        let family = FAMILIES[fam_ix];
        let g = family_graph(family, n, REGIMES[reg_ix], seed, zero_stride);
        let (s, t) = family.terminals(g.node_count());
        let flat = constrained_shortest_path(&g, s, t, bound);
        let oracle = reference::constrained_shortest_path(&g, s, t, bound);
        prop_assert_eq!(flat, oracle, "family {:?} seed {} bound {}", family, seed, bound);
    }

    /// Flat FPTAS ≡ oracle FPTAS: the whole pipeline (threshold search,
    /// geometric bisection, scaled DPs, recovery) must walk the same
    /// trajectory and output the same path.
    #[test]
    fn flat_fptas_matches_oracle(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        n in 8usize..28,
        seed in 0u64..1_000_000,
        bound in 0i64..400,
        zero_stride in 0usize..4,
        eps_ix in 0usize..3,
    ) {
        let (eps_num, eps_den) = [(1, 2), (1, 4), (3, 10)][eps_ix];
        let family = FAMILIES[fam_ix];
        let g = family_graph(family, n, REGIMES[reg_ix], seed, zero_stride);
        let (s, t) = family.terminals(g.node_count());
        let flat = rsp_fptas(&g, s, t, bound, eps_num, eps_den);
        let oracle = reference::rsp_fptas(&g, s, t, bound, eps_num, eps_den);
        prop_assert_eq!(flat, oracle, "family {:?} seed {} bound {}", family, seed, bound);
    }
}

/// Regression on the experiment corpus: the T1–T4 tables all draw from the
/// `Workload` grid, so pin `rsp_fptas` to the reference on those instances
/// — realistic budgets from the tightness machinery, every family × regime.
#[test]
fn fptas_bit_identical_on_workload_instances() {
    let mut compared = 0usize;
    for (fi, &family) in FAMILIES.iter().enumerate() {
        for (ri, &regime) in REGIMES.iter().enumerate() {
            for (ti, tightness) in [0.3, 0.7].into_iter().enumerate() {
                let seed = 1000 * fi as u64 + 100 * ri as u64 + ti as u64;
                let Some(inst) = instantiate_with_retries(
                    Workload {
                        family,
                        n: 24,
                        m: 96,
                        regime,
                        k: 2,
                        tightness,
                        seed,
                    },
                    40,
                ) else {
                    continue;
                };
                // The k = 1 subproblem exactly as greedy RSP poses it.
                let per_path = inst.delay_bound / inst.k as i64;
                for d in [per_path, inst.delay_bound] {
                    let flat = rsp_fptas(&inst.graph, inst.s, inst.t, d, 1, 4);
                    let oracle = reference::rsp_fptas(&inst.graph, inst.s, inst.t, d, 1, 4);
                    assert_eq!(
                        flat, oracle,
                        "family {family:?} regime {regime:?} seed {seed} d {d}"
                    );
                    compared += 1;
                }
            }
        }
    }
    assert!(
        compared >= 40,
        "workload grid degenerated: {compared} comparisons"
    );
}
