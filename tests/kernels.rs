//! Kernel pinning: the flat budgeted-DP kernel versus the preserved 2-D
//! `Option`-table implementation (`krsp_flow::reference`).
//!
//! The flat rewrite must be *bit-identical* to the original, not merely
//! equal in objective value: the DP's tie-breaking (first-seen minimum in
//! edge-id order, then smallest-value-first zero-budget relaxation) decides
//! which path is recovered, and downstream consumers (greedy RSP, the
//! regression corpus in EXPERIMENTS.md) observe the paths themselves.
//! Every comparison below asserts full `CspPath` equality — edge sequence,
//! cost, and delay.

use krsp_suite::krsp::{self, solve, Config, SolveError, Solved};
use krsp_suite::krsp_flow::{constrained_shortest_path, reference, rsp_fptas};
use krsp_suite::krsp_gen::{instantiate_with_retries, Family, Regime, Workload};
use krsp_suite::krsp_graph::DiGraph;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Mutex;

const FAMILIES: [Family; 5] = [
    Family::Gnm,
    Family::Grid,
    Family::Layered,
    Family::Geometric,
    Family::ScaleFree,
];
const REGIMES: [Regime; 3] = [Regime::Uniform, Regime::Correlated, Regime::Anticorrelated];

/// A generator-family graph, optionally rebuilt with a heavy share of
/// zero-delay edges (`zero_stride > 0` zeroes every `zero_stride`-th edge's
/// delay) — the zero-budget Dijkstra pass is the trickiest part of the DP
/// and barely exercised by generic weights.
fn family_graph(
    family: Family,
    n: usize,
    regime: Regime,
    seed: u64,
    zero_stride: usize,
) -> DiGraph {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let g = family.sample(n, n * 4, regime, &mut rng);
    if zero_stride == 0 {
        return g;
    }
    let mut rebuilt = DiGraph::new(g.node_count());
    for (id, e) in g.edge_iter() {
        let delay = if id.index() % zero_stride == 0 {
            0
        } else {
            e.delay
        };
        rebuilt.add_edge(e.src, e.dst, e.cost, delay);
    }
    rebuilt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat exact DP ≡ 2-D oracle on random family graphs: same
    /// feasibility verdict, same recovered path, edge for edge.
    #[test]
    fn flat_dp_matches_oracle(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        n in 8usize..28,
        seed in 0u64..1_000_000,
        bound in 0i64..60,
        zero_stride in 0usize..4,
    ) {
        let family = FAMILIES[fam_ix];
        let g = family_graph(family, n, REGIMES[reg_ix], seed, zero_stride);
        let (s, t) = family.terminals(g.node_count());
        let flat = constrained_shortest_path(&g, s, t, bound);
        let oracle = reference::constrained_shortest_path(&g, s, t, bound);
        prop_assert_eq!(flat, oracle, "family {:?} seed {} bound {}", family, seed, bound);
    }

    /// Flat FPTAS ≡ oracle FPTAS: the whole pipeline (threshold search,
    /// geometric bisection, scaled DPs, recovery) must walk the same
    /// trajectory and output the same path.
    #[test]
    fn flat_fptas_matches_oracle(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        n in 8usize..28,
        seed in 0u64..1_000_000,
        bound in 0i64..400,
        zero_stride in 0usize..4,
        eps_ix in 0usize..3,
    ) {
        let (eps_num, eps_den) = [(1, 2), (1, 4), (3, 10)][eps_ix];
        let family = FAMILIES[fam_ix];
        let g = family_graph(family, n, REGIMES[reg_ix], seed, zero_stride);
        let (s, t) = family.terminals(g.node_count());
        let flat = rsp_fptas(&g, s, t, bound, eps_num, eps_den);
        let oracle = reference::rsp_fptas(&g, s, t, bound, eps_num, eps_den);
        prop_assert_eq!(flat, oracle, "family {:?} seed {} bound {}", family, seed, bound);
    }
}

/// Serializes the tests that reprogram the process-wide solver width, and
/// restores the default resolution when dropped (even on assertion
/// failure). Solver output is width-independent by contract, so a leaked
/// override could never corrupt another test's *result* — this guard just
/// keeps each test measuring the width it says it does.
struct WidthGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl WidthGuard {
    fn lock() -> Self {
        static WIDTH_LOCK: Mutex<()> = Mutex::new(());
        WidthGuard(WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for WidthGuard {
    fn drop(&mut self) {
        krsp::set_solver_width(0);
    }
}

/// Full-solve fingerprint: every observable of a `solve` run except wall
/// time — the complete solution (edge set, cost, delay, LP bound) plus the
/// entire cycle-cancellation trajectory. Two runs are bit-identical iff
/// their fingerprints match.
fn solved_fingerprint(r: &Result<Solved, SolveError>) -> String {
    match r {
        Err(e) => format!("err:{e:?}"),
        Ok(s) => {
            let iters: Vec<String> = s
                .stats
                .iterations
                .iter()
                .map(|it| {
                    format!(
                        "{:?}/{}/{}/{}/{}/{}/{:?}",
                        it.kind,
                        it.cycle_cost,
                        it.cycle_delay,
                        it.cost_after,
                        it.delay_after,
                        it.fast_pass,
                        it.bound_used
                    )
                })
                .collect();
            format!(
                "cost={} delay={} lb={:?} probes={} edges={:?} iters=[{}]",
                s.solution.cost,
                s.solution.delay,
                s.solution.lower_bound,
                s.stats.probes,
                s.solution.edges,
                iters.join(";")
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The solver is bit-identical at 1, 2, and 8 worker threads: same
    /// solution edge set, same LP bound, same cancellation trajectory.
    /// The width-1 run is the sequential oracle; the parallel seed scan's
    /// `find_first` reduction must select the same cycle at every width.
    #[test]
    fn solver_bit_identical_across_thread_counts(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        seed in 0u64..1_000_000,
        tightness_pct in 25u64..75,
        k in 2usize..4,
    ) {
        let workload = Workload {
            family: FAMILIES[fam_ix],
            n: 18,
            m: 72,
            regime: REGIMES[reg_ix],
            k,
            tightness: tightness_pct as f64 / 100.0,
            seed,
        };
        let Some(inst) = instantiate_with_retries(workload, 40) else {
            return Ok(());
        };
        let guard = WidthGuard::lock();
        krsp::set_solver_width(1);
        let oracle = solved_fingerprint(&solve(&inst, &Config::default()));
        for width in [2usize, 8] {
            krsp::set_solver_width(width);
            let got = solved_fingerprint(&solve(&inst, &Config::default()));
            prop_assert_eq!(
                &got, &oracle,
                "family {:?} regime {:?} seed {} diverges at width {}",
                FAMILIES[fam_ix], REGIMES[reg_ix], seed, width
            );
        }
        drop(guard);
    }
}

/// Cancellation soundness for the pass-3 seed scan: on a residual graph
/// with many independent bicameral cycles (one per gadget, so many seeds
/// match), the scan must always return the lowest-seed-index cycle — a
/// worker holding a match from a *later* seed may never win, no matter how
/// threads interleave. The width-1 scan defines that lowest-index answer;
/// repeated wide scans must reproduce it exactly.
#[test]
fn seed_scan_returns_lowest_seed_match_at_any_width() {
    use krsp_suite::krsp::bicameral::{seed_scan_only, Ctx};
    use krsp_suite::krsp_graph::{EdgeSet, NodeId, ResidualGraph};

    let gadgets = 24usize;
    let mut g = DiGraph::new(gadgets * 4);
    let mut in_solution = Vec::new();
    for j in 0..gadgets {
        let b = (j * 4) as u32;
        // The swap gadget: cheap-slow pair in the solution, pricey-fast
        // detour plus a free bridge, yielding one type-1 residual cycle
        // with (cost, delay) = (3, -8) per gadget.
        in_solution.push(g.add_edge(NodeId(b), NodeId(b + 1), 1, 9));
        in_solution.push(g.add_edge(NodeId(b + 1), NodeId(b + 3), 1, 9));
        g.add_edge(NodeId(b), NodeId(b + 2), 4, 1);
        g.add_edge(NodeId(b + 2), NodeId(b + 3), 4, 1);
        g.add_edge(NodeId(b + 2), NodeId(b + 1), 0, 0);
    }
    let sol = EdgeSet::from_edges(g.edge_count(), &in_solution);
    let res = ResidualGraph::build(&g, &sol);
    let ctx = Ctx {
        delta_d: -8,
        delta_c: 8,
        cost_cap: 10,
        enforce_cost_cap: true,
        scc_prune: true,
    };

    let _guard = WidthGuard::lock();
    krsp::set_solver_width(1);
    let oracle = seed_scan_only(&res, &ctx).expect("every gadget has a cycle");
    for width in [2usize, 8] {
        krsp::set_solver_width(width);
        for rep in 0..10 {
            let got = seed_scan_only(&res, &ctx).expect("every gadget has a cycle");
            assert_eq!(
                got.edges, oracle.edges,
                "width {width} rep {rep} returned a different (later-seed) cycle"
            );
            assert_eq!((got.cost, got.delay), (oracle.cost, oracle.delay));
        }
    }
}

/// Regression on the experiment corpus: the T1–T4 tables all draw from the
/// `Workload` grid, so pin `rsp_fptas` to the reference on those instances
/// — realistic budgets from the tightness machinery, every family × regime.
#[test]
fn fptas_bit_identical_on_workload_instances() {
    let mut compared = 0usize;
    for (fi, &family) in FAMILIES.iter().enumerate() {
        for (ri, &regime) in REGIMES.iter().enumerate() {
            for (ti, tightness) in [0.3, 0.7].into_iter().enumerate() {
                let seed = 1000 * fi as u64 + 100 * ri as u64 + ti as u64;
                let Some(inst) = instantiate_with_retries(
                    Workload {
                        family,
                        n: 24,
                        m: 96,
                        regime,
                        k: 2,
                        tightness,
                        seed,
                    },
                    40,
                ) else {
                    continue;
                };
                // The k = 1 subproblem exactly as greedy RSP poses it.
                let per_path = inst.delay_bound / inst.k as i64;
                for d in [per_path, inst.delay_bound] {
                    let flat = rsp_fptas(&inst.graph, inst.s, inst.t, d, 1, 4);
                    let oracle = reference::rsp_fptas(&inst.graph, inst.s, inst.t, d, 1, 4);
                    assert_eq!(
                        flat, oracle,
                        "family {family:?} regime {regime:?} seed {seed} d {d}"
                    );
                    compared += 1;
                }
            }
        }
    }
    assert!(
        compared >= 40,
        "workload grid degenerated: {compared} comparisons"
    );
}
