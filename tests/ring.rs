//! Replica-ring chaos suite: deterministic fault injection against the
//! consistent-hash router (DESIGN.md §4.18).
//!
//! Every test takes [`fp_lock`] — the failpoint registry is
//! process-global, so even the tests that arm nothing must serialize
//! against the ones that do — and the guard clears all sites on drop.
//!
//! The scenarios mirror the router's fault model: a replica killed with
//! traffic in flight loses zero requests (failover within the deadline
//! budget), a draining replica hands its keys off without a dropped id,
//! a hedged send's loser is cancelled and counted, and two identical
//! chaos replays emit identical retry traces (the jitter is a pure
//! function of the seed).

use krsp_service::proto::{self, ServeOptions, SolveRequest, WireResponse};
use krsp_service::{ErrorKind, RingState, Router, RouterOptions, Service, ServiceConfig};
use krsp_suite::krsp::Instance;
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static FP_LOCK: Mutex<()> = Mutex::new(());

/// Serializes failpoint use across tests and guarantees a clean registry
/// on both entry and exit (including panicking exits).
struct FpGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FpGuard {
    fn drop(&mut self) {
        krsp_failpoint::clear();
    }
}

fn fp_lock() -> FpGuard {
    let guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    krsp_failpoint::clear();
    FpGuard(guard)
}

/// A 6-node instance with a real cost/delay tradeoff; varying the delay
/// bound varies the canonical digest, so a `d` sweep spreads keys across
/// the ring. Feasible for every `d ≥ 6` (fast pricey + spare fast).
fn tradeoff(d_bound: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10), // cheap slow: (2, 20)
            (0, 2, 8, 1),
            (2, 5, 8, 1), // fast pricey: (16, 2)
            (0, 3, 2, 6),
            (3, 5, 2, 6), // middle: (4, 12)
            (0, 4, 9, 2),
            (4, 5, 9, 2), // spare fast: (18, 4)
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).expect("tradeoff instance is well-formed")
}

/// One running replica: its service handle (for direct drain control),
/// its address, and the shutdown flag + thread that stop it.
struct Replica {
    service: Service,
    addr: String,
    shutdown: Arc<AtomicBool>,
    server: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Replica {
    fn start() -> Replica {
        let service = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
        let addr = listener.local_addr().expect("replica addr").to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = {
            let (service, shutdown) = (service.clone(), Arc::clone(&shutdown));
            std::thread::spawn(move || {
                proto::serve_threaded_with_shutdown(
                    &service,
                    listener,
                    shutdown,
                    ServeOptions {
                        poll: Duration::from_millis(5),
                        grace: Duration::from_secs(2),
                        ..ServeOptions::default()
                    },
                )
            })
        };
        Replica {
            service,
            addr,
            shutdown,
            server: Some(server),
        }
    }

    /// Stops the replica hard: the listener closes, idle connections
    /// (including the router's pooled ones) die on their next tick.
    fn kill(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(server) = self.server.take() {
            server
                .join()
                .expect("replica thread exits")
                .expect("replica drains cleanly");
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.kill();
    }
}

fn router_over(replicas: &[&Replica], tweak: impl FnOnce(&mut RouterOptions)) -> Router {
    let mut opts = RouterOptions {
        replicas: replicas.iter().map(|r| r.addr.clone()).collect(),
        seed: 0x5eed,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..RouterOptions::default()
    };
    tweak(&mut opts);
    Router::new(opts)
}

fn solve_req(d: i64) -> SolveRequest {
    SolveRequest {
        instance: tradeoff(d),
        deadline_ms: Some(2_000),
        kernel: None,
    }
}

/// Routes a `d`-sweep of solves and asserts every one is answered with a
/// solution (not a router-side error), returning the responses.
fn sweep(router: &Router, bounds: impl Iterator<Item = i64>) -> Vec<WireResponse> {
    bounds
        .map(|d| {
            let response = router.route_solve(&solve_req(d));
            match &response {
                WireResponse::Solved(_) => {}
                WireResponse::Error(e) => {
                    panic!("d={d} was dropped with {:?}: {}", e.kind, e.message)
                }
                other => panic!("d={d} got an unexpected reply: {other:?}"),
            }
            response
        })
        .collect()
}

#[test]
fn killed_replica_fails_over_within_the_deadline() {
    let _fp = fp_lock();
    let mut a = Replica::start();
    let b = Replica::start();
    let router = router_over(&[&a, &b], |_| {});

    // Warm pass: both replicas answer, connections get pooled.
    sweep(&router, 14..26);
    let warm = router.ring_reply();
    assert_eq!(warm.requests, 12);
    assert_eq!(warm.retries, 0, "warm pass must not retry: {warm:?}");
    assert!(router.take_trace().iter().all(|t| t.contains("event=ok")));

    // Kill replica 0. Keys whose primary it was must fail over to
    // replica 1 — pooled connections die mid-stream (`conn_died`), fresh
    // dials are refused (`dial_fail`) — and nothing may be dropped.
    a.kill();
    sweep(&router, 14..26);
    let after = router.ring_reply();
    assert!(
        after.retries > 0,
        "no key had the dead replica as primary — the sweep is vacuous: {after:?}"
    );
    let trace = router.take_trace();
    assert!(
        trace
            .iter()
            .any(|t| t.contains("event=dial_fail") || t.contains("event=conn_died")),
        "failover left no failure events: {trace:?}"
    );
    // Every request still ends in an ok event, and the dead replica's
    // passive failures must have demoted it.
    assert_eq!(
        trace.iter().filter(|t| t.contains("event=ok")).count(),
        12,
        "some request never reached an answer: {trace:?}"
    );
    assert_ne!(
        router.replica_states()[0],
        RingState::Up,
        "repeated failures left the dead replica Up"
    );
    assert_eq!(router.replica_states()[1], RingState::Up);
}

#[test]
fn draining_replica_hands_off_every_key_without_new_sends() {
    let _fp = fp_lock();
    let a = Replica::start();
    let b = Replica::start();
    let router = router_over(&[&a, &b], |_| {});

    // Both up: the probe sweep sees two ready replicas.
    router.probe_all_once();
    assert_eq!(router.replica_states(), vec![RingState::Up, RingState::Up]);
    sweep(&router, 14..26);
    let _ = router.take_trace();

    // Replica 0 starts draining (the SIGTERM path sets the same flag);
    // the router must observe it via the Health probe, not by burning
    // failed requests.
    a.service.begin_shutdown();
    router.probe_all_once();
    assert_eq!(
        router.replica_states()[0],
        RingState::Draining,
        "the probe missed the drain advertisement"
    );

    // Every key — including those replica 0 owned — must be answered by
    // replica 1, with zero dropped ids and zero sends to the drainer.
    sweep(&router, 14..26);
    let trace = router.take_trace();
    assert_eq!(
        trace.iter().filter(|t| t.contains("event=ok")).count(),
        12,
        "the drain dropped ids: {trace:?}"
    );
    assert!(
        trace.iter().all(|t| t.contains("replica=1")),
        "a request was sent to the draining replica: {trace:?}"
    );
    // Passive successes on the survivor must not revive the drainer —
    // only a ready probe clears Draining.
    assert_eq!(router.replica_states()[0], RingState::Draining);
}

#[test]
fn hedged_solve_wins_on_the_secondary_and_counts_the_race() {
    let _fp = fp_lock();
    let a = Replica::start();
    let b = Replica::start();
    let router = router_over(&[&a, &b], |opts| {
        opts.hedge = true;
        opts.hedge_warmup = 0; // cold histogram may hedge immediately
        opts.hedge_min = Duration::from_millis(5);
    });

    // Stall the first forward (the primary leg) long past the hedge
    // trigger; the secondary leg's forward is unimpeded and must win.
    krsp_failpoint::cfg("router.forward", "1*delay(300)").expect("arm router.forward");
    let response = router.route_solve(&solve_req(24));
    assert!(
        matches!(response, WireResponse::Solved(_)),
        "hedged solve failed: {response:?}"
    );
    let stats = router.ring_reply();
    assert!(
        stats.hedges_fired >= 1,
        "the stalled primary never armed the hedge: {stats:?}"
    );
    assert_eq!(
        stats.hedges_won, stats.hedges_fired,
        "the unimpeded secondary lost the race: {stats:?}"
    );
    assert_eq!(stats.retries, 0, "a hedge is not a retry: {stats:?}");
    let trace = router.take_trace();
    assert!(
        trace.iter().any(|t| t.contains("event=hedge_fire")),
        "hedge left no trace: {trace:?}"
    );
    // The cancelled loser is not a failure signal: both replicas stay Up.
    assert_eq!(router.replica_states(), vec![RingState::Up, RingState::Up]);
}

#[test]
fn identical_chaos_replays_emit_identical_retry_traces() {
    let _fp = fp_lock();
    let a = Replica::start();
    let b = Replica::start();

    let replay = |seed: u64| {
        krsp_failpoint::clear();
        krsp_failpoint::cfg("router.dial", "2*err(chaos dial)").expect("arm router.dial");
        let router = router_over(&[&a, &b], |opts| opts.seed = seed);
        // Sequential requests: the first burns both candidates on the
        // armed dial failures, the rest route cleanly.
        let responses: Vec<WireResponse> = (14..22)
            .map(|d| router.route_solve(&solve_req(d)))
            .collect();
        (router.take_trace(), responses)
    };

    let (trace_one, responses) = replay(0xfeed);
    let (trace_two, _) = replay(0xfeed);
    assert_eq!(
        trace_one, trace_two,
        "same seed + same failure script must replay identically"
    );
    assert!(
        trace_one.iter().any(|t| t.contains("event=dial_fail")),
        "the chaos script never fired: {trace_one:?}"
    );
    // The injected failures exhausted the first request's candidates —
    // it must surface as a structured timeout, not hang or vanish.
    match &responses[0] {
        WireResponse::Error(e) => assert_eq!(e.kind, ErrorKind::Timeout),
        other => panic!("the doomed request got {other:?}"),
    }
    assert!(
        responses[1..]
            .iter()
            .all(|r| matches!(r, WireResponse::Solved(_))),
        "requests after the script was spent must all solve"
    );

    // A different seed shifts the jittered backoffs but not the events.
    let (trace_three, _) = replay(0xbeef);
    assert_ne!(
        trace_one, trace_three,
        "the seed is not reaching the jitter"
    );
    let strip = |trace: &[String]| -> Vec<String> {
        trace
            .iter()
            .map(|t| {
                t.split(" backoff_us=")
                    .next()
                    .expect("trace shape")
                    .to_string()
            })
            .collect()
    };
    assert_eq!(
        strip(&trace_one),
        strip(&trace_three),
        "the seed must only perturb backoff, never routing"
    );
}

/// T15 (EXPERIMENTS.md): the replica ring measured end to end over real
/// processes. Three phases, all through `krsp-cli route`:
///
/// * **1 vs 3 replicas**: the same replay against a one-replica ring and
///   a three-replica ring (A/B on ring width).
/// * **Replica kill**: against the three-replica ring, a replay per
///   failover phase — before (all up), during (one replica SIGKILLed
///   mid-replay), after (probes have marked it Down) — asserting 100%
///   availability throughout and recording the p99 cost of failover.
///
/// Writes `results/t15_ring.json`.
#[test]
#[ignore = "ring storm: multi-second wall clock; run via scripts/ci.sh"]
fn t15_ring_storm_report() {
    use krsp_service::{load, RemoteSpec};
    use std::process::{Command, Stdio};

    let _fp = fp_lock();
    let reserve = || {
        TcpListener::bind("127.0.0.1:0")
            .expect("probe bind")
            .local_addr()
            .expect("probe addr")
    };
    let spawn_replica = |addr: std::net::SocketAddr| {
        Command::new(env!("CARGO_BIN_EXE_krsp-cli"))
            .args(["serve", &addr.to_string(), "--workers", "2", "--threaded"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn krsp-cli serve")
    };
    let spawn_router = |addr: std::net::SocketAddr, replicas: &[std::net::SocketAddr]| {
        let list = replicas
            .iter()
            .map(std::net::SocketAddr::to_string)
            .collect::<Vec<_>>()
            .join(",");
        Command::new(env!("CARGO_BIN_EXE_krsp-cli"))
            .args([
                "route",
                &addr.to_string(),
                "--replicas",
                &list,
                "--probe-ms",
                "100",
                "--seed",
                "4242",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn krsp-cli route")
    };
    let spec = |qps: f64| load::LoadSpec {
        requests: 60,
        unique: 12,
        clients: 3,
        n: 36,
        qps,
        ..load::LoadSpec::default()
    };
    let replay = |router: std::net::SocketAddr, qps: f64| {
        load::run_remote(
            &spec(qps),
            &RemoteSpec {
                addr: router.to_string(),
                retries: 12,
            },
        )
        .expect("replay through the router")
    };
    let availability =
        |r: &load::LoadReport| (r.completed + r.infeasible) as f64 / r.issued.max(1) as f64;

    // -- Phase A: one replica behind the ring. ------------------------
    let solo = reserve();
    let mut solo_child = spawn_replica(solo);
    let router_one = reserve();
    let mut router_one_child = spawn_router(router_one, &[solo]);
    let one = replay(router_one, 0.0);
    let _ = router_one_child.kill();
    let _ = router_one_child.wait();
    let _ = solo_child.kill();
    let _ = solo_child.wait();
    assert_eq!(
        availability(&one),
        1.0,
        "the one-replica ring dropped requests: {one:?}"
    );

    // -- Phase B: three replicas, then a SIGKILL mid-replay. ----------
    let addrs = [reserve(), reserve(), reserve()];
    let mut replicas: Vec<_> = addrs.iter().map(|&a| spawn_replica(a)).collect();
    let router_addr = reserve();
    let mut router_child = spawn_router(router_addr, &addrs);

    let before = replay(router_addr, 0.0);
    assert_eq!(
        availability(&before),
        1.0,
        "the healthy ring dropped requests: {before:?}"
    );

    // Pace the kill-phase replay (~0.5 s) and SIGKILL a replica 150 ms
    // in, so the loss lands with requests in flight.
    let during = std::thread::scope(|s| {
        let handle = s.spawn(|| replay(router_addr, 120.0));
        std::thread::sleep(Duration::from_millis(150));
        replicas[2].kill().expect("SIGKILL replica");
        replicas[2].wait().expect("reap replica");
        handle.join().expect("kill-phase replay")
    });
    assert_eq!(
        availability(&during),
        1.0,
        "the SIGKILL lost requests: {during:?}"
    );

    // Let the probes (every 100 ms) mark the corpse Down, then measure
    // the settled ring.
    std::thread::sleep(Duration::from_millis(600));
    let after = replay(router_addr, 0.0);
    assert_eq!(
        availability(&after),
        1.0,
        "the settled two-replica ring dropped requests: {after:?}"
    );

    // The router's own view, fetched over the wire like any client.
    let ring_json = {
        use std::io::{BufRead, BufReader, Write};
        let mut conn = std::net::TcpStream::connect(router_addr).expect("dial router");
        conn.write_all(b"\"Health\"\n").expect("send Health");
        let mut line = String::new();
        BufReader::new(&conn)
            .read_line(&mut line)
            .expect("ring reply");
        line.trim().to_string()
    };
    assert!(
        ring_json.contains("\"down\""),
        "the killed replica never went Down: {ring_json}"
    );

    let _ = router_child.kill();
    let _ = router_child.wait();
    for mut r in replicas {
        let _ = r.kill();
        let _ = r.wait();
    }

    let phase = |name: &str, r: &load::LoadReport| {
        format!(
            "    \"{name}\": {{\"issued\": {}, \"completed\": {}, \"availability\": {:.4}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p99_last_send_us\": {}, \"transport_retries\": {}}}",
            r.issued,
            r.completed,
            availability(r),
            r.latency.p50_us,
            r.latency.p99_us,
            r.latency_last_send.p99_us,
            r.transport_retries,
        )
    };
    std::fs::create_dir_all("results").expect("mkdir results");
    let doc = format!(
        "{{\n  \"experiment\": \"t15_ring\",\n  \"ring_width_ab\": {{\n{},\n{}\n  }},\n  \
         \"replica_kill\": {{\n{},\n{},\n{}\n  }},\n  \"router_ring_state\": {ring_json}\n}}\n",
        phase("one_replica", &one),
        phase("three_replicas", &before),
        phase("before", &before),
        phase("during", &during),
        phase("after", &after),
    );
    std::fs::write("results/t15_ring.json", &doc).expect("write results/t15_ring.json");
    assert!(
        serde_json::from_str::<serde_json::Value>(&doc).is_ok(),
        "t15 report is not valid JSON: {doc}"
    );
}
