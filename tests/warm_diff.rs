//! Warm-start differential suite: `solve_degraded_seeded` with a
//! previous-epoch seed ≡ guarantees ≡ the cold ladder (DESIGN.md §4.17).
//!
//! A warm solve on epoch `e+1`, seeded with epoch `e`'s solution edge
//! set, generally returns a *different* path than the cold solve on
//! `e+1` — the certificate accept keeps a still-certified seed, and the
//! bisection resume walks a narrower bracket — so the differential
//! asserts guarantees, not bit-identity:
//!
//! * same feasibility verdict as the cold ladder on the new epoch,
//! * `delay ≤ D` under the new weights,
//! * `cost ≤ 2·cost_cold` (sound because `cost_warm ≤ 2·C_LP ≤ 2·OPT ≤
//!   2·cost_cold` — the warm path only accepts a seed that passes the
//!   Full rung's own audit bound, in exact arithmetic),
//! * the same advertised guarantee whenever both land on the same rung.
//!
//! Bit-identity is asserted exactly where it is owed: when the seed did
//! not participate (`warm == false` — rejected, stale, or phase-1 was
//! already feasible), the answer must equal the cold solve byte for
//! byte. And like the kernels (`tests/kernel_diff.rs`), warm answers
//! must be solver-width-invariant at widths 1 / 2 / 8.

use krsp_service::{solve_degraded_seeded, solve_degraded_with, KernelLadder, LadderPolicy};
use krsp_suite::krsp::{self, CancelToken, Config, Instance};
use krsp_suite::krsp_gen::{self, Family, Regime, Workload};
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

const FAMILIES: [Family; 4] = [
    Family::Gnm,
    Family::Grid,
    Family::Layered,
    Family::Geometric,
];

/// The 6-node k = 2 tradeoff shape shared with `tests/chaos.rs`. At
/// `d = 22` the phase-1 rounding is delay-infeasible (four probes run),
/// so a certified seed genuinely short-circuits work — the bound where
/// `warm` is observable rather than vacuous.
fn tradeoff(d_bound: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10),
            (0, 2, 8, 1),
            (2, 5, 8, 1),
            (0, 3, 2, 6),
            (3, 5, 2, 6),
            (0, 4, 9, 2),
            (4, 5, 9, 2),
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).expect("tradeoff instance is well-formed")
}

/// Applies a non-decreasing cost ramp to `inst`, producing the
/// next-epoch instance exactly the way the service's epoch advance does.
fn next_epoch(inst: &Instance, ramp_edges: usize, seed: u64) -> Instance {
    let changes = krsp_gen::cost_ramp(&inst.graph, ramp_edges, 5, 4, seed);
    let graph = krsp_gen::apply_changes(&inst.graph, &changes);
    Instance::new(graph, inst.s, inst.t, inst.k, inst.delay_bound)
        .expect("a cost-only ramp preserves instance validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Epoch `e` cold solve → seed → epoch `e+1` warm solve, against the
    /// epoch `e+1` cold solve, over generated feasible workloads with a
    /// random cost ramp in between.
    #[test]
    fn warm_solve_on_next_epoch_meets_cold_guarantees(
        fam_ix in 0usize..FAMILIES.len(),
        k in 1usize..4,
        seed in 0u64..100_000,
        ramp_edges in 1usize..5,
    ) {
        let w = Workload {
            family: FAMILIES[fam_ix],
            n: 20,
            m: 80,
            regime: Regime::Anticorrelated,
            k,
            tightness: 0.5,
            seed,
        };
        // Infeasible draws are the generator's problem, not this suite's.
        let Some(inst0) = krsp_gen::instantiate_with_retries(w, 50) else {
            return Ok(());
        };
        let inst1 = next_epoch(&inst0, ramp_edges, seed ^ 0xabcd);

        let cfg = Config::default();
        let policy = LadderPolicy::default();
        let kernels = KernelLadder::default();
        let budget = Duration::from_secs(30);
        let never = CancelToken::never();

        let cold0 = solve_degraded_with(&inst0, &cfg, budget, &policy, &kernels, &never)
            .expect("the generator certified epoch 0 feasible");
        let seed_set = cold0.solution.edges.clone();

        let cold1 = solve_degraded_with(&inst1, &cfg, budget, &policy, &kernels, &never);
        let warm1 = solve_degraded_seeded(
            &inst1, &cfg, budget, &policy, &kernels, &never, Some(&seed_set),
        );
        prop_assert_eq!(
            warm1.is_ok(), cold1.is_ok(),
            "feasibility must not depend on the seed (seed {} ramp {})",
            seed, ramp_edges
        );
        let (Ok(warm), Ok(cold)) = (warm1, cold1) else { return Ok(()) };

        prop_assert!(
            warm.solution.delay <= inst1.delay_bound,
            "warm answer violates the delay bound: {} > {}",
            warm.solution.delay, inst1.delay_bound
        );
        prop_assert!(
            i128::from(warm.solution.cost) <= 2 * i128::from(cold.solution.cost),
            "warm cost {} > 2·cold cost {} (seed {} ramp {})",
            warm.solution.cost, cold.solution.cost, seed, ramp_edges
        );
        if warm.rung == cold.rung {
            prop_assert_eq!(
                warm.guarantee, cold.guarantee,
                "same rung must advertise the same guarantee"
            );
        }
        if !warm.warm {
            // The seed did not participate: the answer must be the cold
            // ladder's, bit for bit.
            prop_assert_eq!(
                (warm.solution.cost, warm.solution.delay, warm.rung, warm.kernel),
                (cold.solution.cost, cold.solution.delay, cold.rung, cold.kernel),
                "an unused seed must leave the answer untouched"
            );
        }
    }
}

/// Serializes tests that reprogram the process-wide solver width,
/// restoring the default resolution on drop (same discipline as
/// `tests/kernel_diff.rs`; the copy stays private on purpose).
struct WidthGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl WidthGuard {
    fn lock() -> Self {
        static WIDTH_LOCK: Mutex<()> = Mutex::new(());
        WidthGuard(WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for WidthGuard {
    fn drop(&mut self) {
        krsp::set_solver_width(0);
    }
}

/// Widths 1 / 2 / 8: a warm solve's `(cost, delay, rung, kernel, warm)`
/// tuple must not depend on the cycle-search pool width — the seed
/// verification and certificate accept are sequential arithmetic, and
/// the bisection resume inherits the bicameral search's width
/// invariance.
#[test]
fn warm_answers_are_width_invariant() {
    let _guard = WidthGuard::lock();
    let cfg = Config::default();
    let policy = LadderPolicy::default();
    let kernels = KernelLadder::default();
    let budget = Duration::from_secs(30);
    let never = CancelToken::never();

    let inst0 = tradeoff(22);
    let cold0 = solve_degraded_with(&inst0, &cfg, budget, &policy, &kernels, &never)
        .expect("tradeoff(22) is feasible");
    let seed_set = cold0.solution.edges.clone();
    let inst1 = next_epoch(&inst0, 1, 7);

    let mut seen = None;
    for width in [1usize, 2, 8] {
        krsp::set_solver_width(width);
        let warm = solve_degraded_seeded(
            &inst1,
            &cfg,
            budget,
            &policy,
            &kernels,
            &never,
            Some(&seed_set),
        )
        .expect("ramped tradeoff stays feasible");
        assert!(warm.solution.delay <= inst1.delay_bound);
        let tuple = (
            warm.solution.cost,
            warm.solution.delay,
            warm.rung,
            warm.kernel,
            warm.warm,
        );
        match &seen {
            None => seen = Some(tuple),
            Some(first) => assert_eq!(*first, tuple, "warm answer drifted at width {width}"),
        }
    }
}

/// A seed that is its own instance's certified answer must take the warm
/// fast path (`warm == true`) and reproduce the cold cost exactly —
/// the certificate accept is what turns an epoch advance into saved
/// probes instead of a full re-solve.
#[test]
fn certified_seed_short_circuits_at_the_probing_bound() {
    let cfg = Config::default();
    let policy = LadderPolicy::default();
    let kernels = KernelLadder::default();
    let budget = Duration::from_secs(30);
    let never = CancelToken::never();

    let inst = tradeoff(22);
    let cold = solve_degraded_with(&inst, &cfg, budget, &policy, &kernels, &never)
        .expect("tradeoff(22) is feasible");
    let warm = solve_degraded_seeded(
        &inst,
        &cfg,
        budget,
        &policy,
        &kernels,
        &never,
        Some(&cold.solution.edges.clone()),
    )
    .expect("seeded re-solve is feasible");
    assert!(
        warm.warm,
        "a certified self-seed at the probing bound must register as warm"
    );
    assert_eq!(warm.solution.cost, cold.solution.cost);
    assert_eq!(warm.solution.delay, cold.solution.delay);
    assert_eq!(warm.guarantee, cold.guarantee);
}
