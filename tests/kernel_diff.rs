//! Kernel differential suite: `ClassicFptas` ≡ guarantees ≡
//! `IntervalScalingFptas` (DESIGN.md §4.16).
//!
//! The two [`RspKernel`] backends promise the same `(1+ε)` contract but
//! generally recover *different* paths — the interval scheme stops at the
//! first delay-feasible level of a narrower budget window — so the
//! differential here asserts guarantees, not bit-identity:
//!
//! * same feasibility verdict as the exact DP,
//! * `delay ≤ D`,
//! * `cost ≤ (1+ε)·OPT` (exact arithmetic, in `i128`).
//!
//! Bit-identity is asserted only where it is owed: `ClassicFptas` through
//! the trait must equal the raw `rsp_fptas` (and hence the preserved
//! `krsp_flow::reference` oracle, pinned in `tests/kernels.rs`), and each
//! kernel must be solver-width-invariant (widths 1 / 2 / 8 — the kernels
//! are sequential DPs; the width knob belongs to the cycle-search pool and
//! must not leak into their answers).
//!
//! The fault-injection half mirrors `tests/chaos.rs`: a cancellation (or a
//! `csp.interval_test=err` failpoint) mid-interval-test yields `None`, never
//! a wrong certificate, and an injected panic in the interval kernel
//! quarantines only the interval-scoped cache key — classic requests on the
//! byte-identical instance keep answering.

use krsp_service::{KernelLadder, LadderPolicy, Rejection, Request, Service, ServiceConfig};
use krsp_suite::krsp::{
    self, rsp_kernel, CancelToken, Config, DpScratch, Instance, KernelError, KernelKind,
    KERNEL_KINDS,
};
use krsp_suite::krsp_flow::{constrained_shortest_path, rsp_fptas};
use krsp_suite::krsp_gen::{Family, Regime};
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

const FAMILIES: [Family; 5] = [
    Family::Gnm,
    Family::Grid,
    Family::Layered,
    Family::Geometric,
    Family::ScaleFree,
];
const REGIMES: [Regime; 3] = [Regime::Uniform, Regime::Correlated, Regime::Anticorrelated];
const EPSILONS: [(u32, u32); 3] = [(1, 2), (1, 8), (1, 16)];

fn family_graph(family: Family, n: usize, regime: Regime, seed: u64) -> DiGraph {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    family.sample(n, n * 4, regime, &mut rng)
}

/// A unit-cost chain: `cstar = 1` but the threshold witness costs the full
/// chain length, so the interval scheme's Phase B bracket opens wide
/// (`ub = 5 > 4·lb`) and at least one interval test always runs — the
/// deterministic trigger for the `csp.interval_test` failpoint and for
/// cancellation polls.
fn chain_graph() -> DiGraph {
    DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 1),
            (1, 2, 1, 1),
            (2, 3, 1, 1),
            (3, 4, 1, 1),
            (4, 5, 1, 1),
        ],
    )
}

fn chain_instance() -> Instance {
    Instance::new(chain_graph(), NodeId(0), NodeId(5), 1, 10)
        .expect("chain instance is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Both kernels meet the contract on random family graphs: feasibility
    /// agrees with the exact DP, the delay bound holds, and the cost is
    /// within (1+ε)·OPT. The classic kernel is additionally bit-identical
    /// to the raw flat FPTAS it wraps.
    #[test]
    fn kernels_meet_guarantees_on_family_graphs(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        n in 8usize..24,
        seed in 0u64..1_000_000,
        bound in 0i64..400,
        eps_ix in 0usize..EPSILONS.len(),
    ) {
        let (eps_num, eps_den) = EPSILONS[eps_ix];
        let family = FAMILIES[fam_ix];
        let g = family_graph(family, n, REGIMES[reg_ix], seed);
        let (s, t) = family.terminals(g.node_count());
        let exact = constrained_shortest_path(&g, s, t, bound);
        for kind in KERNEL_KINDS {
            let got = rsp_kernel(kind)
                .solve(&g, s, t, bound, eps_num, eps_den)
                .expect("valid epsilon");
            prop_assert_eq!(
                got.is_some(), exact.is_some(),
                "{} disagrees with exact DP on feasibility (family {:?} seed {} bound {})",
                kind, family, seed, bound
            );
            let (Some(p), Some(opt)) = (&got, &exact) else { continue };
            prop_assert!(p.delay <= bound, "{}: delay {} > bound {}", kind, p.delay, bound);
            prop_assert!(
                i128::from(p.cost) * i128::from(eps_den)
                    <= i128::from(opt.cost) * i128::from(eps_den + eps_num),
                "{}: cost {} > (1+{}/{})·OPT {} (family {:?} seed {} bound {})",
                kind, p.cost, eps_num, eps_den, opt.cost, family, seed, bound
            );
            if kind == KernelKind::Classic {
                prop_assert_eq!(
                    &got, &rsp_fptas(&g, s, t, bound, eps_num, eps_den),
                    "classic kernel must stay bit-identical to the flat FPTAS"
                );
            }
        }
    }
}

/// Serializes tests that reprogram the process-wide solver width, restoring
/// the default resolution on drop (mirrors the guard in `tests/kernels.rs`;
/// both suites keep theirs private on purpose — a shared helper crate would
/// couple their lock orders).
struct WidthGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl WidthGuard {
    fn lock() -> Self {
        static WIDTH_LOCK: Mutex<()> = Mutex::new(());
        WidthGuard(WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for WidthGuard {
    fn drop(&mut self) {
        krsp::set_solver_width(0);
    }
}

/// A 6-node k = 2 instance with a genuine cost/delay tradeoff (the same
/// shape `tests/chaos.rs` uses): `d = 24` walks the full bicameral search.
fn tradeoff(d_bound: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10),
            (0, 2, 8, 1),
            (2, 5, 8, 1),
            (0, 3, 2, 6),
            (3, 5, 2, 6),
            (0, 4, 9, 2),
            (4, 5, 9, 2),
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).expect("tradeoff instance is well-formed")
}

/// Widths 1 / 2 / 8: the degrade ladder's answer under either kernel must
/// not depend on the solver pool width — the kernels are sequential, and
/// the bicameral search is width-invariant by contract. Each (instance,
/// kernel) pair must produce the same (cost, delay, rung, kernel) tuple at
/// every width, and every answer must respect the instance's delay bound.
#[test]
fn ladder_answers_are_width_invariant_per_kernel() {
    let _guard = WidthGuard::lock();
    let instances = [chain_instance(), tradeoff(24)];
    let cfg = Config::default();
    let policy = LadderPolicy::default();
    let budget = Duration::from_secs(30);

    for kind in KERNEL_KINDS {
        let kernels = KernelLadder::uniform(kind);
        for (ix, inst) in instances.iter().enumerate() {
            let mut seen: Option<(i64, i64, krsp_service::Rung, KernelKind)> = None;
            for width in [1usize, 2, 8] {
                krsp::set_solver_width(width);
                let d = krsp_service::solve_degraded_with(
                    inst,
                    &cfg,
                    budget,
                    &policy,
                    &kernels,
                    &CancelToken::never(),
                )
                .unwrap_or_else(|e| panic!("instance {ix} kernel {kind} width {width}: {e:?}"));
                assert!(d.solution.delay <= inst.delay_bound);
                assert_eq!(
                    d.kernel, kind,
                    "answering rung must report its assigned kernel"
                );
                let tuple = (d.solution.cost, d.solution.delay, d.rung, d.kernel);
                match &seen {
                    None => seen = Some(tuple),
                    Some(first) => assert_eq!(
                        *first, tuple,
                        "instance {ix} kernel {kind}: answer drifted at width {width}"
                    ),
                }
            }
        }
    }
}

/// ε edge cases through the checked trait surface: a zero numerator or
/// denominator is a structured rejection (never a divide-by-zero panic),
/// and ε > 1 clamps to exactly 1 — bit-identical to an explicit ε = 1 call
/// for both kernels.
#[test]
fn epsilon_edge_cases_reject_or_clamp() {
    let g = chain_graph();
    let (s, t, d) = (NodeId(0), NodeId(5), 10);
    for kind in KERNEL_KINDS {
        let k = rsp_kernel(kind);
        for (num, den) in [(0u32, 1u32), (1, 0), (0, 0)] {
            assert_eq!(
                k.solve(&g, s, t, d, num, den),
                Err(KernelError::InvalidEpsilon { num, den }),
                "{kind}: ε = {num}/{den} must be rejected"
            );
        }
        let clamped = k
            .solve(&g, s, t, d, 7, 2)
            .expect("clamped epsilon is valid");
        let unit = k.solve(&g, s, t, d, 1, 1).expect("unit epsilon is valid");
        assert_eq!(clamped, unit, "{kind}: ε = 7/2 must clamp to ε = 1 exactly");
    }
}

/// A cancelled token mid-interval-test yields `None` — never a stale or
/// uncertified incumbent — and the same scratch answers again once the
/// token is replaced.
#[test]
fn cancellation_mid_interval_test_returns_none() {
    let g = chain_graph();
    let (s, t, d) = (NodeId(0), NodeId(5), 10);
    let mut dp = DpScratch::new();

    let token = CancelToken::cancellable();
    token.cancel();
    dp.set_cancel(token);
    for kind in KERNEL_KINDS {
        assert_eq!(
            rsp_kernel(kind).solve_with(&g, s, t, d, 1, 8, &mut dp),
            Ok(None),
            "{kind}: a pre-cancelled solve must report no result"
        );
    }

    // Same scratch, fresh token: both kernels recover and agree with the
    // exact optimum (the chain has a single path, so ε plays no role).
    dp.set_cancel(CancelToken::never());
    let opt = constrained_shortest_path(&g, s, t, d).expect("chain is feasible");
    for kind in KERNEL_KINDS {
        let p = rsp_kernel(kind)
            .solve_with(&g, s, t, d, 1, 8, &mut dp)
            .expect("valid epsilon")
            .expect("chain is feasible");
        assert_eq!((p.cost, p.delay), (opt.cost, opt.delay));
    }
}

static FP_LOCK: Mutex<()> = Mutex::new(());

/// Serializes failpoint use and guarantees a clean registry on entry and
/// exit (the registry is process-global; same discipline as
/// `tests/chaos.rs`, private copy for the same reason as [`WidthGuard`]).
struct FpGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FpGuard {
    fn drop(&mut self) {
        krsp_failpoint::clear();
    }
}

fn fp_lock() -> FpGuard {
    quiet_injected_panics();
    let guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    krsp_failpoint::clear();
    FpGuard(guard)
}

/// Suppresses backtrace spam from panics this suite injects on purpose.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                prev(info);
            }
        }));
    });
}

/// `csp.interval_test=err` forces the interval test's sweep to report
/// "cancelled" mid-bracketing: the interval kernel must give up with `None`
/// (a cancelled probe never masquerades as an `OPT > c` certificate), while
/// the classic kernel — which never plants that site — still answers.
#[test]
fn failpoint_cancels_interval_tests_without_touching_classic() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("csp.interval_test", "err").expect("arm csp.interval_test");
    let g = chain_graph();
    let (s, t, d) = (NodeId(0), NodeId(5), 10);
    assert_eq!(
        rsp_kernel(KernelKind::Interval).solve(&g, s, t, d, 1, 8),
        Ok(None),
        "interval kernel must abort when every interval test is cancelled"
    );
    let p = rsp_kernel(KernelKind::Classic)
        .solve(&g, s, t, d, 1, 8)
        .expect("valid epsilon")
        .expect("classic kernel is unaffected by csp.interval_test");
    assert_eq!((p.cost, p.delay), (5, 5));
}

/// An injected panic inside the interval kernel quarantines only the
/// interval-scoped cache key: follow-up interval requests on the instance
/// are rejected with `Quarantined`, while classic-override and
/// default-kernel requests on the *byte-identical* instance keep solving —
/// the per-kernel key scoping (DESIGN.md §4.16) is what keeps the blast
/// radius to one backend.
#[test]
fn interval_panic_quarantines_only_the_interval_kernel() {
    let _fp = fp_lock();
    krsp_failpoint::cfg("csp.interval_test", "panic").expect("arm csp.interval_test");
    let svc = Service::new(ServiceConfig {
        workers: 2,
        quarantine_threshold: 1,
        quarantine_ttl: Duration::from_secs(60),
        ..ServiceConfig::default()
    });
    let request = |kernel: Option<KernelKind>| Request {
        instance: chain_instance(),
        deadline: None,
        kernel,
    };

    let panicked = svc.provision(request(Some(KernelKind::Interval)));
    match panicked {
        Err(Rejection::SolverPanic(msg)) => {
            assert!(
                msg.contains("csp.interval_test"),
                "unexpected payload: {msg}"
            );
        }
        other => panic!("expected a contained solver panic, got {other:?}"),
    }
    assert!(
        matches!(
            svc.provision(request(Some(KernelKind::Interval))),
            Err(Rejection::Quarantined)
        ),
        "the interval-scoped key must be quarantined after the strike"
    );

    // The classic-scoped key is untouched: both an explicit classic
    // override and the default (classic-uniform) ladder still answer.
    for kernel in [Some(KernelKind::Classic), None] {
        let resp = svc
            .provision(request(kernel))
            .unwrap_or_else(|e| panic!("classic-keyed request rejected: {e:?}"));
        assert_eq!(resp.kernel, KernelKind::Classic);
        assert_eq!((resp.solution.cost, resp.solution.delay), (5, 5));
    }

    // And the quarantine really is per-kernel, not consumed: interval stays
    // rejected even after classic succeeded on the same instance bytes.
    assert!(matches!(
        svc.provision(request(Some(KernelKind::Interval))),
        Err(Rejection::Quarantined)
    ));
}
