//! Differential testing: every solver configuration must uphold the same
//! contract (delay-feasible output, cost within 2× of the exact optimum)
//! on the same instances, and the engines must agree on feasibility.

use krsp_suite::krsp::{exact, solve, BSearch, Config, Engine, Instance};
use krsp_suite::krsp_gen::{instantiate_with_retries, partition_chain, Family, Regime, Workload};

fn configs() -> Vec<(&'static str, Config)> {
    vec![
        ("default", Config::default()),
        (
            "single-probe",
            Config {
                single_probe: true,
                ..Config::default()
            },
        ),
        (
            "full-sweep",
            Config {
                b_search: BSearch::FullSweep,
                single_probe: true,
                ..Config::default()
            },
        ),
        (
            "no-scc-prune",
            Config {
                scc_pruning: false,
                ..Config::default()
            },
        ),
        (
            "simplex-phase1",
            Config {
                phase1_backend: krsp_suite::krsp::Phase1Backend::Simplex,
                ..Config::default()
            },
        ),
    ]
}

fn small_instances() -> Vec<Instance> {
    let mut out = Vec::new();
    for seed in [11u64, 13, 17, 19] {
        if let Some(inst) = instantiate_with_retries(
            Workload {
                family: Family::Gnm,
                n: 11,
                m: 24,
                regime: Regime::Anticorrelated,
                k: 2,
                tightness: 0.35,
                seed,
            },
            30,
        ) {
            if inst.m() <= 30 {
                out.push(inst);
            }
        }
    }
    if let Some(g) = partition_chain(&[1, 2, 3, 4], 2) {
        out.push(g);
    }
    out
}

#[test]
fn all_configurations_uphold_the_contract() {
    let insts = small_instances();
    assert!(insts.len() >= 2, "need instances to differentiate");
    for inst in &insts {
        let opt = exact::brute_force(inst);
        for (name, cfg) in configs() {
            match solve(inst, &cfg) {
                Ok(out) => {
                    let opt = opt
                        .as_ref()
                        .unwrap_or_else(|| panic!("{name}: solver invented feasibility"));
                    assert!(
                        out.solution.delay <= inst.delay_bound,
                        "{name}: delay violated"
                    );
                    assert!(
                        out.solution
                            .edges
                            .is_k_flow(&inst.graph, inst.s, inst.t, inst.k),
                        "{name}: structure violated"
                    );
                    // The Ĉ-bisected default gets the full (1,2); the
                    // single-probe variants still must stay within 2× of
                    // the feasible-extreme upper bound, which is itself ≤
                    // 2·C_LP ≤ 2·OPT... use the weakest common contract:
                    // 4× OPT for probes, 2× for the default.
                    let factor = if cfg.single_probe { 4 } else { 2 };
                    assert!(
                        out.solution.cost <= factor * opt.cost,
                        "{name}: cost {} > {factor}·{}",
                        out.solution.cost,
                        opt.cost
                    );
                }
                Err(_) => {
                    assert!(opt.is_none(), "{name}: declined a feasible instance");
                }
            }
        }
    }
}

#[test]
fn lp_engine_agrees_with_fast_engine_on_feasibility() {
    // Tiny weights keep the LP oracle tractable.
    use krsp_suite::krsp_gen::{gnm, WeightParams};
    use rand::SeedableRng;
    let mut found = 0;
    for seed in 0..12u64 {
        let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(seed);
        let g = gnm(
            8,
            20,
            Regime::Anticorrelated,
            WeightParams { max: 3, noise: 1 },
            &mut rng,
        );
        let Ok(probe) = Instance::new(
            g,
            krsp_suite::krsp_graph::NodeId(0),
            krsp_suite::krsp_graph::NodeId(7),
            2,
            i64::MAX / 4,
        ) else {
            continue;
        };
        let Some(dmin) = krsp_suite::krsp::baselines::min_delay(&probe).map(|s| s.delay) else {
            continue;
        };
        let inst = Instance {
            delay_bound: dmin + 1,
            ..probe
        };
        let fast = solve(&inst, &Config::default()).is_ok();
        let lp = solve(
            &inst,
            &Config {
                engine: Engine::LpRounding,
                single_probe: true,
                ..Config::default()
            },
        )
        .is_ok();
        assert_eq!(fast, lp, "seed {seed}: engines disagree on feasibility");
        found += 1;
    }
    assert!(found >= 3, "too few instances exercised");
}
