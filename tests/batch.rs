//! Batch-plane differential suite (ISSUE 7): `solve_batch` must be
//! bit-identical to N independent `solve` calls at every solver width, and
//! a panicking instance inside a batch must poison only its own slot.
//!
//! Every test serializes on [`test_lock`]: the failpoint registry and the
//! solver width are both process-global, so concurrent tests would observe
//! each other's overrides. The guard clears failpoints and restores the
//! default width on drop, pass or fail. The shared-digest half of the
//! differential story (one `TopoDigest`, many queries, bit-identical to
//! per-query rebuilds) is pinned in `crates/flow/src/csp.rs` tests; this
//! suite covers the full-solver batch entry point.

use krsp_suite::krsp::{self, solve, solve_batch, BatchError, Config, Instance, Solved};
use krsp_suite::krsp_gen::{instantiate_with_retries, Family, Regime, Workload};
use krsp_suite::krsp_graph::{DiGraph, NodeId};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

const FAMILIES: [Family; 5] = [
    Family::Gnm,
    Family::Grid,
    Family::Layered,
    Family::Geometric,
    Family::ScaleFree,
];
const REGIMES: [Regime; 3] = [Regime::Uniform, Regime::Correlated, Regime::Anticorrelated];

/// The chaos suite's tradeoff instance: `d = 24` exercises the full
/// bicameral cycle search (the `bicameral.seed` failpoint fires once per
/// solve), while `d = 14` is answered before the seed scan starts and
/// never reaches the site.
fn tradeoff(d_bound: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10), // cheap slow: (2, 20)
            (0, 2, 8, 1),
            (2, 5, 8, 1), // fast pricey: (16, 2)
            (0, 3, 2, 6),
            (3, 5, 2, 6), // middle: (4, 12)
            (0, 4, 9, 2),
            (4, 5, 9, 2), // spare fast: (18, 4)
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).expect("tradeoff instance is well-formed")
}

/// `k = 2` through a single-edge bottleneck: rejected by the max-flow
/// feasibility check before any search machinery (or failpoint) runs.
fn structurally_infeasible() -> Instance {
    let g = DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
    Instance::new(g, NodeId(0), NodeId(2), 2, 10).expect("bottleneck instance is well-formed")
}

/// Serializes every test in this binary and restores process-global state
/// (failpoint registry, solver width) on drop, including panicking exits.
struct TestGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for TestGuard {
    fn drop(&mut self) {
        krsp_failpoint::clear();
        krsp::set_solver_width(0);
    }
}

fn test_lock() -> TestGuard {
    quiet_injected_panics();
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    krsp_failpoint::clear();
    TestGuard(guard)
}

/// Suppresses backtrace spam from panics this suite injects on purpose;
/// any other panic still reports through the previous hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                prev(info);
            }
        }));
    });
}

/// Full-solve fingerprint (cf. `tests/kernels.rs`): every observable of a
/// run except wall time — solution edge set, cost, delay, LP bound, probe
/// count, and the complete cycle-cancellation trajectory.
fn fingerprint(r: Result<&Solved, String>) -> String {
    match r {
        Err(e) => format!("err:{e}"),
        Ok(s) => {
            let iters: Vec<String> = s
                .stats
                .iterations
                .iter()
                .map(|it| {
                    format!(
                        "{:?}/{}/{}/{}/{}/{}/{:?}",
                        it.kind,
                        it.cycle_cost,
                        it.cycle_delay,
                        it.cost_after,
                        it.delay_after,
                        it.fast_pass,
                        it.bound_used
                    )
                })
                .collect();
            format!(
                "cost={} delay={} lb={:?} probes={} edges={:?} iters=[{}]",
                s.solution.cost,
                s.solution.delay,
                s.solution.lower_bound,
                s.stats.probes,
                s.solution.edges,
                iters.join(";")
            )
        }
    }
}

fn solve_print(r: &Result<Solved, krsp::SolveError>) -> String {
    fingerprint(r.as_ref().map_err(|e| format!("{e:?}")))
}

fn batch_print(r: &Result<Solved, BatchError>) -> String {
    fingerprint(r.as_ref().map_err(|e| match e {
        BatchError::Solve(e) => format!("{e:?}"),
        BatchError::Panicked(msg) => format!("panic:{msg}"),
    }))
}

/// A panicking query maps to `BatchError::Panicked` on *its* slot only:
/// siblings in the same batch — including ones sharing the worker whose
/// scratch the panicking solve abandoned mid-flight — still answer, and
/// answer bit-identically to standalone solves.
#[test]
fn batch_panic_is_contained_to_the_offending_slot() {
    let _guard = test_lock();
    let batch = vec![tradeoff(24), structurally_infeasible(), tradeoff(14)];
    let cfg = Config::default();

    krsp_failpoint::cfg("bicameral.seed", "panic").expect("arm bicameral.seed");
    let results = solve_batch(&batch, &cfg);
    assert_eq!(results.len(), 3);
    match &results[0] {
        Err(BatchError::Panicked(msg)) => {
            assert!(msg.contains("bicameral.seed"), "panic message: {msg}")
        }
        other => panic!("armed seed scan must panic slot 0, got {other:?}"),
    }
    assert!(
        matches!(
            &results[1],
            Err(BatchError::Solve(krsp::SolveError::StructurallyInfeasible))
        ),
        "slot 1 keeps its own error kind: {:?}",
        results[1]
    );
    let survivor = results[2]
        .as_ref()
        .expect("d = 14 never reaches the seed scan");
    assert!(survivor.solution.delay <= 14);

    // Disarmed, the same batch (and the same worker-pool scratch that a
    // panicking solve abandoned in an arbitrary state) solves cleanly.
    krsp_failpoint::clear();
    let recovered = solve_batch(&batch, &cfg);
    assert_eq!(
        batch_print(&recovered[0]),
        solve_print(&solve(&batch[0], &cfg)),
        "slot 0 recovers bit-identically once disarmed"
    );
    assert_eq!(batch_print(&recovered[2]), batch_print(&results[2]));

    let summary = krsp::summarize(&batch, &results);
    assert_eq!(summary.panicked, 1);
    assert_eq!(summary.infeasible, 1);
    assert_eq!(summary.solved, 1);
}

/// `1*panic`: exactly one query in a wide batch absorbs the injected
/// panic; every sibling must be bit-identical to its standalone solve.
#[test]
fn one_shot_panic_poisons_exactly_one_query() {
    let _guard = test_lock();
    let batch: Vec<Instance> = (0..6).map(|_| tradeoff(24)).collect();
    let cfg = Config::default();
    krsp::set_solver_width(2);

    krsp_failpoint::cfg("bicameral.seed", "1*panic").expect("arm bicameral.seed");
    let results = solve_batch(&batch, &cfg);
    krsp_failpoint::clear();

    let panicked = results
        .iter()
        .filter(|r| matches!(r, Err(BatchError::Panicked(_))))
        .count();
    assert_eq!(panicked, 1, "exactly one slot absorbs the one-shot panic");

    let oracle = solve_print(&solve(&batch[0], &cfg));
    for (i, r) in results.iter().enumerate() {
        if r.is_ok() {
            assert_eq!(batch_print(r), oracle, "sibling {i} diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The batch entry point is bit-identical to N independent `solve`
    /// calls at widths 1, 2, and 8: same solutions, same LP bounds, same
    /// cancellation trajectories, slot for slot — the per-worker scratch
    /// pool and the parallel map may change scheduling, never output.
    #[test]
    fn solve_batch_bit_identical_to_independent_solves(
        fam_ix in 0usize..FAMILIES.len(),
        reg_ix in 0usize..REGIMES.len(),
        seed in 0u64..1_000_000,
        tightness_pct in 25u64..75,
        k in 2usize..4,
        extra in 2usize..6,
    ) {
        let batch: Vec<Instance> = (0..extra as u64 + 1)
            .filter_map(|j| {
                instantiate_with_retries(
                    Workload {
                        family: FAMILIES[fam_ix],
                        n: 18,
                        m: 72,
                        regime: REGIMES[reg_ix],
                        k,
                        tightness: tightness_pct as f64 / 100.0,
                        seed: seed.wrapping_add(j * 7919),
                    },
                    40,
                )
            })
            .collect();
        if batch.is_empty() {
            return Ok(());
        }
        let cfg = Config::default();
        let guard = test_lock();

        krsp::set_solver_width(1);
        let oracle: Vec<String> = batch.iter().map(|inst| solve_print(&solve(inst, &cfg))).collect();
        for width in [1usize, 2, 8] {
            krsp::set_solver_width(width);
            let got = solve_batch(&batch, &cfg);
            prop_assert_eq!(got.len(), batch.len());
            for (slot, (g, want)) in got.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(
                    &batch_print(g), want,
                    "family {:?} regime {:?} seed {} slot {} diverges at width {}",
                    FAMILIES[fam_ix], REGIMES[reg_ix], seed, slot, width
                );
            }
        }
        drop(guard);
    }
}
