//! End-to-end integration tests: exercise the public API exactly as a
//! downstream user would, across all generator families, and verify the
//! paper's guarantees against the exact solver.

use krsp_suite::krsp::{self, baselines, exact, solve, Config, Instance};
use krsp_suite::krsp_gen::{instantiate_with_retries, Family, Regime, Workload};
use krsp_suite::krsp_graph::{DiGraph, NodeId};

fn workload(family: Family, k: usize, tightness: f64, seed: u64) -> Option<Instance> {
    instantiate_with_retries(
        Workload {
            family,
            n: 13,
            m: 30,
            regime: Regime::Anticorrelated,
            k,
            tightness,
            seed,
        },
        30,
    )
}

#[test]
fn bifactor_guarantee_on_random_instances() {
    let mut checked = 0;
    for family in [Family::Gnm, Family::Grid, Family::Layered] {
        for seed in [1, 2, 3] {
            let Some(inst) = workload(family, 2, 0.4, seed) else {
                continue;
            };
            if inst.m() > 34 {
                continue; // keep brute force tractable
            }
            let Ok(out) = solve(&inst, &Config::default()) else {
                // Phase 1 may legitimately report delay-infeasibility even
                // when structurally feasible; confirm with the exact solver.
                assert!(exact::brute_force(&inst).is_none());
                continue;
            };
            let opt = exact::brute_force(&inst).expect("solver said feasible");
            assert!(
                out.solution.delay <= inst.delay_bound,
                "{family:?}/{seed}: delay {} > D {}",
                out.solution.delay,
                inst.delay_bound
            );
            assert!(
                out.solution.cost <= 2 * opt.cost,
                "{family:?}/{seed}: cost {} > 2·C_OPT {}",
                out.solution.cost,
                opt.cost
            );
            checked += 1;
        }
    }
    assert!(checked >= 3, "too few instances exercised ({checked})");
}

#[test]
fn solver_beats_or_matches_lp_rounding_alone() {
    for seed in [5, 6, 7, 8] {
        let Some(inst) = workload(Family::Layered, 2, 0.3, seed) else {
            continue;
        };
        let Ok(ours) = solve(&inst, &Config::default()) else {
            continue;
        };
        // Phase 1 alone may violate the delay budget; the full algorithm
        // never does.
        assert!(ours.solution.delay <= inst.delay_bound);
        if let Some(lp) = baselines::lp_rounding_only(&inst) {
            assert!(lp.delay <= 2 * inst.delay_bound, "Lemma 5 delay bound");
        }
    }
}

#[test]
fn min_delay_feasibility_agreement() {
    // solve() succeeds iff a delay-feasible pair exists (which min_delay
    // certifies), on structurally feasible instances.
    for seed in 10..16 {
        let Some(inst) = workload(Family::Gnm, 2, 0.2, seed) else {
            continue;
        };
        let feasible = baselines::min_delay(&inst)
            .map(|s| s.delay <= inst.delay_bound)
            .unwrap_or(false);
        let solved = solve(&inst, &Config::default()).is_ok();
        assert_eq!(feasible, solved, "seed {seed}");
    }
}

#[test]
fn paths_are_truly_edge_disjoint() {
    for k in [2, 3] {
        let Some(inst) = workload(Family::Layered, k, 0.6, 21) else {
            continue;
        };
        let Ok(out) = solve(&inst, &Config::default()) else {
            continue;
        };
        let paths = out.solution.paths(&inst);
        assert_eq!(paths.len(), k);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert_eq!(p.source(), inst.s);
            assert_eq!(p.target(), inst.t);
            for e in p.edges() {
                assert!(seen.insert(*e), "edge {e:?} reused across paths");
            }
        }
    }
}

#[test]
fn scaling_theorem4_end_to_end() {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 10, 100),
            (1, 5, 10, 100),
            (0, 2, 80, 10),
            (2, 5, 80, 10),
            (0, 3, 20, 60),
            (3, 5, 20, 60),
            (0, 4, 90, 20),
            (4, 5, 90, 20),
        ],
    );
    let inst = Instance::new(g, NodeId(0), NodeId(5), 2, 140).unwrap();
    let eps = krsp::Eps::new(1, 4);
    let out = krsp::solve_scaled(&inst, eps, eps, &Config::default()).unwrap();
    let opt = exact::brute_force(&inst).unwrap();
    assert!(out.solution.delay as f64 <= 1.25 * 140.0);
    assert!(out.solution.cost as f64 <= 2.25 * opt.cost as f64);
}

#[test]
fn figure1_cost_cap_matters() {
    // With the cap enforced (default), the solution stays within 2·C_OPT;
    // the ablation switch reproduces the paper's Figure-1 blow-up *risk*
    // (the solver may still luck into a good answer, but the guarantee is
    // gone — we only assert the guarded run).
    let inst = krsp_suite::krsp_gen::fig1_instance(12, 3);
    let opt = exact::brute_force(&inst).unwrap();
    let out = solve(&inst, &Config::default()).unwrap();
    assert!(out.solution.delay <= inst.delay_bound);
    assert!(
        out.solution.cost <= 2 * opt.cost,
        "cost {} vs 2·{}",
        out.solution.cost,
        opt.cost
    );
}
