#!/usr/bin/env bash
# CI gate: formatting, lints, and the test suite must all be clean.
#
#   ./scripts/ci.sh
#
# Runs from the repo root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q --workspace (KRSP_THREADS=1: sequential oracle)"
KRSP_THREADS=1 cargo test -q --workspace

echo "== cargo test -q --workspace (default width: parallel pool)"
cargo test -q --workspace

echo "== cargo test --release -- --ignored stress"
cargo test -q --release --workspace -- --ignored stress

echo "== chaos suite (failpoints + panic isolation + drain)"
cargo test -q --test chaos
# The same suite must hold with ambient jitter injected from the
# environment — the env spec is additive on top of each test's own sites.
KRSP_FAILPOINTS='cache.get=delay(1);singleflight.join=delay(1);proto.read=delay(1);cache.disk_write=delay(1);cache.disk_read=delay(1)' \
    cargo test -q --test chaos
echo "== chaos storm (T10: mid-replay shutdown under load)"
cargo test -q --release --test chaos -- --ignored t10_chaos_storm_report
echo "== epoch report (T14: rolling retention, warm vs cold, SIGKILL restart)"
# Regenerates results/t14_epochs.json and asserts the acceptance numbers
# inside the test: retention > 0.8, warm p50 < cold p50 on
# seed-participating re-solves, restart hit rate > 0 with disk recovery.
cargo test -q --release --test chaos -- --ignored t14_epoch_warm_disk_report

echo "== replica-ring suite (router unit + chaos: failover, drain handoff, hedging)"
cargo test -q -p krsp-service --lib router
cargo test -q --test ring
# The same chaos suite must hold with ambient router jitter injected from
# the environment — tests that arm their own failure scripts replace these
# sites, everything else absorbs the extra latency.
KRSP_FAILPOINTS='router.dial=delay(1);router.forward=delay(1);router.probe=delay(1)' \
    cargo test -q --test ring
echo "== ring storm (T15: 1-vs-3 replica A/B + mid-replay replica kill)"
# Regenerates results/t15_ring.json through real `krsp-cli route`/`serve`
# processes; the test asserts 100% id-matched availability in every phase,
# including the window where one of three replicas is killed mid-replay.
cargo test -q --release --test ring -- --ignored t15_ring_storm_report

echo "== warm-start differential suite (seeded ≡ guarantees ≡ cold, widths 1/2/8)"
cargo test -q --test warm_diff

echo "== batch differential suite (solve_batch ≡ N independent solves)"
cargo test -q --test batch

echo "== kernel differential suite (classic ≡ guarantees ≡ interval, widths 1/2/8)"
cargo test -q --test kernel_diff

echo "== frontend scaling smoke (512 conns, bounded threads, no drops)"
cargo test -q --release -p krsp-service --test frontend -- --ignored scaling

echo "== bench harness smoke (tiny sizes, JSON must validate)"
smoke_out="$(mktemp)"
cargo run -q --release -p krsp-bench --bin kernels -- --smoke --out "$smoke_out" >/dev/null
# The binary self-validates its JSON before writing; a nonempty file with
# the expected schema line means the harness ran end to end. The smoke
# grid includes the batch-axis rows (csp_batch / solve_batch), whose
# checksum cross-validation against unbatched solves runs inside the
# binary — reaching this grep means the batch plane answered every query
# bit-identically. The rsp_kernel rows run BOTH kernels (classic and
# interval) and guarantee-audit each against the exact DP inside the
# binary — reaching these greps means both kernels answered every smoke
# instance within (1+ε)·OPT under the delay bound.
grep -q '"schema": "krsp-bench-kernels/v1"' "$smoke_out"
grep -q '"bench": "solve_batch"' "$smoke_out"
grep -q '"variant": "classic"' "$smoke_out"
grep -q '"variant": "interval"' "$smoke_out"
grep -q '"bench": "rsp_kernel(classic/interval)"' "$smoke_out"
rm -f "$smoke_out"

echo "CI OK"
