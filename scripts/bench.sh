#!/usr/bin/env bash
# Kernel benchmark runner: regenerates BENCH_kernels.json (EXPERIMENTS.md T8).
#
#   ./scripts/bench.sh            # full run, writes BENCH_kernels.json
#   ./scripts/bench.sh --smoke    # tiny sizes, for CI validation only
#
# The workload grid, seeds, and iteration counts are pinned inside the
# `kernels` binary, so two runs on the same machine measure exactly the
# same work; only wall-clock noise differs. Run on an idle machine before
# committing updated numbers. The `bicameral_search` rows sweep the solver
# thread count (threads1/threads2/threads4) on the same sweep, so the
# parallel speedup is only meaningful on a host with ≥4 cores — record
# `nproc` alongside the numbers when quoting them.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p krsp-bench --bin kernels -- "$@" >/dev/null
echo "BENCH_kernels.json updated:"
grep -A2 '"speedups"' -m1 BENCH_kernels.json >/dev/null # sanity: section exists
grep -E '"bench"|"speedup"' BENCH_kernels.json | tail -40
