#!/usr/bin/env bash
# Kernel benchmark runner: regenerates BENCH_kernels.json (EXPERIMENTS.md T8).
#
#   ./scripts/bench.sh            # full run, writes BENCH_kernels.json
#   ./scripts/bench.sh --smoke    # tiny sizes, for CI validation only
#
# The workload grid, seeds, and iteration counts are pinned inside the
# `kernels` binary, so two runs on the same machine measure exactly the
# same work; only wall-clock noise differs. Run on an idle machine before
# committing updated numbers. The `bicameral_search` rows sweep the solver
# thread count (threads1/threads2/threads4) on the same sweep, so the
# parallel speedup is only meaningful on a host with ≥4 cores — record
# `nproc` alongside the numbers when quoting them.
set -euo pipefail
cd "$(dirname "$0")/.."

cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$cores" -le 1 ]; then
    echo "!!==========================================================!!" >&2
    echo "!! WARNING: single-core host (nproc = $cores).                  !!" >&2
    echo "!! The threads-axis (bicameral_search) and batch-axis rows  !!" >&2
    echo "!! cannot show parallel gains here; the report's \"caveat\"   !!" >&2
    echo "!! field records this. Do not quote parallel speedups from  !!" >&2
    echo "!! this run. Per-iteration A/B and kernel-axis comparisons  !!" >&2
    echo "!! remain valid.                                            !!" >&2
    echo "!!==========================================================!!" >&2
fi

cargo run --release -p krsp-bench --bin kernels -- "$@" >/dev/null
echo "BENCH_kernels.json updated:"
grep -A2 '"speedups"' -m1 BENCH_kernels.json >/dev/null # sanity: section exists
grep -E '"bench"|"speedup"' BENCH_kernels.json | tail -40
