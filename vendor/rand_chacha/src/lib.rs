//! Hermetic stand-in for `rand_chacha`.
//!
//! Provides a [`ChaCha20Rng`] type with the same name and API shape the
//! workspace uses (`SeedableRng::seed_from_u64` + `RngCore`). The stream is
//! produced by xoshiro256++ seeded via SplitMix64 — deterministic per seed,
//! statistically strong for simulation workloads, but **not** the actual
//! ChaCha20 keystream (the build environment cannot fetch the real crate;
//! nothing in this repository depends on the exact stream, only on per-seed
//! determinism).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (xoshiro256++ core).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha20Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha20Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start at the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        ChaCha20Rng { s }
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha20Rng::seed_from_u64(42);
        let mut b = ChaCha20Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let x: usize = rng.gen_range(0..10);
        assert!(x < 10);
    }
}
