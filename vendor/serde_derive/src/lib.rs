//! Hermetic stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored `serde` shim's
//! value-tree model. Parsing is done directly on the `proc_macro` token
//! stream (no `syn`/`quote` — they cannot be fetched in this build
//! environment), which restricts the accepted input to the shapes this
//! workspace actually derives on:
//!
//! * non-generic structs: named, tuple, unit;
//! * non-generic enums: unit, tuple, and struct variants (externally
//!   tagged, matching serde's default representation);
//! * arbitrary attributes and doc comments are skipped, **except**
//!   `#[serde(...)]`, which is rejected because the shim does not implement
//!   attribute-driven behavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- parsing ----------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips `#[...]` / `#![...]` attributes; rejects `#[serde(...)]`.
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Punct(p)) = self.peek() {
                if p.as_char() == '!' {
                    self.next();
                }
            }
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let body = g.stream().to_string();
                    assert!(
                        !body.starts_with("serde"),
                        "the vendored serde shim does not support #[serde(...)] attributes"
                    );
                }
                other => panic!("malformed attribute near {other:?}"),
            }
        }
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected identifier, found {other:?}"),
        }
    }

    fn expect_punct(&mut self, c: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => {}
            other => panic!("expected `{c}`, found {other:?}"),
        }
    }

    /// Consumes a type (or discriminant expression) up to a top-level `,`,
    /// tracking `<...>` nesting so commas inside generics don't terminate.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        assert!(
            p.as_char() != '<',
            "the vendored serde shim cannot derive on generic type `{name}`"
        );
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Fields {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        fields.push(c.expect_ident());
        c.expect_punct(':');
        c.skip_until_top_level_comma();
        if !c.at_end() {
            c.expect_punct(',');
        }
    }
    Fields::Named(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    while !c.at_end() {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_until_top_level_comma();
        if !c.at_end() {
            c.expect_punct(',');
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                c.next();
                c.skip_until_top_level_comma();
            }
        }
        if !c.at_end() {
            c.expect_punct(',');
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation --------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => named_to_map(fs, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inner = named_to_map(fs, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), {inner})]),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{\n\
                     match self {{ {} }}\n\
                   }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_to_map(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                    .collect();
                format!(
                    "let s = ::serde::Content::seq_n(c, {n})?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Fields::Named(fs) => {
                let items: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_content(\
                             ::serde::Content::field(c, \"{f}\")?)?,"
                        )
                    })
                    .collect();
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    items.join("\n")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                   let s = ::serde::Content::seq_n(inner, {n})?;\n\
                                   ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let items: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::Content::field(inner, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                items.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                   ::serde::Content::Str(s) => match s.as_str() {{\n\
                     {unit}\n\
                     other => ::std::result::Result::Err(::serde::DeError(\
                       format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                   }},\n\
                   ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                     let (tag, inner) = &m[0];\n\
                     match tag.as_str() {{\n\
                       {payload}\n\
                       other => ::std::result::Result::Err(::serde::DeError(\
                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }}\n\
                   }}\n\
                   other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"enum {name}\", other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n"),
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_content(c: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}
