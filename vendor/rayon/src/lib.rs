//! Hermetic stand-in for `rayon`.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! parallel-iterator *API surface* the workspace uses (`par_iter`,
//! `into_par_iter`, `flat_map_iter`, plus every adapter inherited from
//! [`Iterator`]) executed **sequentially**. Results are identical to rayon's
//! because every call site in this repository uses order-preserving,
//! side-effect-free pipelines.
//!
//! Heavy data parallelism in the workspace lives in
//! `krsp::batch::Executor` (a real `std::thread` worker pool); this shim
//! only keeps the remaining rayon call sites source-compatible.

#![forbid(unsafe_code)]

/// The rayon prelude: traits that add `par_iter`-style methods.
pub mod prelude {
    /// Conversion into a "parallel" (here: sequential) iterator by value.
    pub trait IntoParallelIterator {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;

        /// Converts `self` into an iterator. Sequential in this shim.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Iter = T::IntoIter;
        type Item = T::Item;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Conversion into a "parallel" iterator over references.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (a reference).
        type Item: 'data;

        /// Iterates over `&self`. Sequential in this shim.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        type Item = <&'data T as IntoIterator>::Item;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Rayon-specific adapters that have no [`Iterator`] counterpart.
    pub trait ParallelIterator: Iterator + Sized {
        /// Rayon's `flat_map_iter`: identical to [`Iterator::flat_map`] here.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Sequential shim: splitting hints are meaningless, returns `self`.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Rayon's `find_any`: sequential execution always yields the first
        /// match, so this is exactly [`Iterator::find`].
        fn find_any<P>(mut self, predicate: P) -> Option<Self::Item>
        where
            P: FnMut(&Self::Item) -> bool,
        {
            self.find(predicate)
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let s: u64 = (0..10u64).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2]
            .par_iter()
            .flat_map_iter(|&x| [x, x + 10])
            .collect();
        assert_eq!(out, vec![1, 11, 2, 12]);
    }
}
