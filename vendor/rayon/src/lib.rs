//! Hermetic stand-in for `rayon` backed by a real worker pool.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! parallel-iterator *API surface* the workspace uses — `par_iter`,
//! `into_par_iter`, `map`/`filter`/`filter_map`, `flat_map_iter`,
//! `collect`, `sum`, and the `find_first` family — executed on a scoped
//! `std::thread` worker pool. Unlike the earlier sequential shim, the
//! adapters here genuinely fan work out across threads; unlike upstream
//! rayon, the pool is scoped per reduction (no resident worker threads,
//! no `unsafe`) and work is distributed by an atomic index counter.
//!
//! ## Determinism contract
//!
//! Every consumer is **deterministic at any thread count**:
//!
//! * [`ParIter::collect`] and [`ParIter::sum`] assemble per-index results
//!   in source order, so the output is identical to a sequential run.
//! * [`ParIter::find_first`] / [`ParIter::find_map_first`] return the
//!   match with the *lowest source index*, cooperatively cancelling:
//!   workers publish the best (lowest) matching index in an `AtomicUsize`
//!   and abandon any index at or above it, so late indices stop burning
//!   cycles once an earlier match exists — but a match can never shadow a
//!   smaller-index match that has not been scanned yet.
//! * [`ParIter::find_any`] is kept for rayon API compatibility but is
//!   implemented as `find_first`; callers must not rely on it being
//!   cheaper than the deterministic reduction.
//!
//! ## Width
//!
//! The worker width is resolved per reduction, in priority order:
//! a per-iterator [`ParIter::with_width`] override, the process-wide
//! [`set_num_threads`] override, the `KRSP_THREADS` environment variable
//! (read once), then [`std::thread::available_parallelism`]. Width 1 (or a
//! single-element input) short-circuits to an inline sequential loop with
//! zero scheduling overhead.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Process-wide width override; 0 means "unset".
static WIDTH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker width for every subsequent reduction in this
/// process (`0` clears the override and restores `KRSP_THREADS` /
/// `available_parallelism` resolution). Takes effect immediately: the
/// width is re-read at the start of each reduction.
pub fn set_num_threads(width: usize) {
    WIDTH_OVERRIDE.store(width, Ordering::SeqCst);
}

/// The `KRSP_THREADS` environment override, read once; 0 = unset/invalid.
fn env_width() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("KRSP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The worker width reductions will use (before any per-iterator
/// override): [`set_num_threads`] if set, else `KRSP_THREADS`, else
/// [`std::thread::available_parallelism`].
#[must_use]
pub fn current_num_threads() -> usize {
    let forced = WIDTH_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    let env = env_width();
    if env > 0 {
        return env;
    }
    thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// A parallel iterator over an indexed source: `len` indices, each
/// evaluated by a boxed pipeline to zero or more items. Adapters compose
/// the pipeline; consumers fan the index space out over scoped worker
/// threads and reassemble results in index order.
pub struct ParIter<'a, T> {
    len: usize,
    /// Per-iterator width override (`None` = [`current_num_threads`]).
    width: Option<usize>,
    /// Minimum indices claimed per worker grab ([`ParIter::with_min_len`]).
    min_chunk: usize,
    /// The per-index pipeline. `Vec` (not a lazy iterator) so adapters can
    /// box a single closure per stage instead of one per item.
    eval: Box<dyn Fn(usize) -> Vec<T> + Sync + 'a>,
}

impl<'a, T: Send + 'a> ParIter<'a, T> {
    /// A parallel iterator producing `f(i)` for each `i in 0..len`.
    ///
    /// Not part of the upstream rayon API; the workspace's `Executor`
    /// builds its scoped fan-out on top of this.
    pub fn from_fn(len: usize, f: impl Fn(usize) -> T + Sync + 'a) -> Self {
        ParIter {
            len,
            width: None,
            min_chunk: 1,
            eval: Box::new(move |i| vec![f(i)]),
        }
    }

    /// A parallel iterator over owned items (cloned out per index).
    pub fn from_items(items: Vec<T>) -> Self
    where
        T: Clone + Sync,
    {
        let len = items.len();
        ParIter {
            len,
            width: None,
            min_chunk: 1,
            eval: Box::new(move |i| vec![items[i].clone()]),
        }
    }

    /// Overrides the worker width for this iterator's reduction only
    /// (`0` = use the process-wide resolution).
    ///
    /// Not part of the upstream rayon API (rayon scopes width to a pool);
    /// provided so callers with their own width policy — `Executor::map` —
    /// can run on this substrate.
    #[must_use]
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = if width == 0 { None } else { Some(width) };
        self
    }

    /// Rayon's `with_min_len`: workers claim at least `min` indices per
    /// atomic grab, amortizing contention for very cheap per-index work.
    #[must_use]
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_chunk = min.max(1);
        self
    }

    /// Transforms every item.
    #[must_use]
    pub fn map<U: Send + 'a>(self, f: impl Fn(T) -> U + Sync + 'a) -> ParIter<'a, U> {
        let eval = self.eval;
        ParIter {
            len: self.len,
            width: self.width,
            min_chunk: self.min_chunk,
            eval: Box::new(move |i| eval(i).into_iter().map(&f).collect()),
        }
    }

    /// Keeps only items matching the predicate.
    #[must_use]
    pub fn filter(self, f: impl Fn(&T) -> bool + Sync + 'a) -> ParIter<'a, T> {
        let eval = self.eval;
        ParIter {
            len: self.len,
            width: self.width,
            min_chunk: self.min_chunk,
            eval: Box::new(move |i| eval(i).into_iter().filter(&f).collect()),
        }
    }

    /// Maps and filters in one pass.
    #[must_use]
    pub fn filter_map<U: Send + 'a>(
        self,
        f: impl Fn(T) -> Option<U> + Sync + 'a,
    ) -> ParIter<'a, U> {
        let eval = self.eval;
        ParIter {
            len: self.len,
            width: self.width,
            min_chunk: self.min_chunk,
            eval: Box::new(move |i| eval(i).into_iter().filter_map(&f).collect()),
        }
    }

    /// Rayon's `flat_map_iter`: maps each item to a *sequential* iterator
    /// and flattens, preserving source order within and across indices.
    #[must_use]
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<'a, U::Item>
    where
        U: IntoIterator,
        U::Item: Send + 'a,
        F: Fn(T) -> U + Sync + 'a,
    {
        let eval = self.eval;
        ParIter {
            len: self.len,
            width: self.width,
            min_chunk: self.min_chunk,
            eval: Box::new(move |i| eval(i).into_iter().flat_map(&f).collect()),
        }
    }

    /// Resolved worker width for this reduction.
    fn resolved_width(&self) -> usize {
        self.width.unwrap_or_else(current_num_threads).max(1)
    }

    /// The execution core: evaluates every index and hands `(index,
    /// items)` to `visit`, fanning out over scoped worker threads. When
    /// `skip_from` is given, indices `>= skip_from` are abandoned without
    /// evaluation (the `find_first` cancellation frontier; consumers that
    /// visit everything pass `None`).
    fn drive(&self, skip_from: Option<&AtomicUsize>, visit: impl Fn(usize, Vec<T>) + Sync) {
        let width = self.resolved_width().min(self.len);
        let chunk = self.min_chunk;
        let skip = |i: usize| skip_from.is_some_and(|b| i >= b.load(Ordering::Acquire));
        if width <= 1 {
            for i in 0..self.len {
                if skip(i) {
                    break; // indices only grow; nothing later can matter
                }
                visit(i, (self.eval)(i));
            }
            return;
        }
        let next = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..width {
                s.spawn(|| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= self.len {
                        break;
                    }
                    for i in start..(start + chunk).min(self.len) {
                        if !skip(i) {
                            visit(i, (self.eval)(i));
                        }
                    }
                });
            }
        });
    }

    /// Evaluates all indices in parallel and collects the items in source
    /// order — identical to the sequential result.
    #[must_use]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let mut slots: Vec<Mutex<Vec<T>>> = Vec::new();
        slots.resize_with(self.len, || Mutex::new(Vec::new()));
        self.drive(None, |i, items| {
            *slots[i].lock().expect("collect slot poisoned") = items;
        });
        slots
            .into_iter()
            .flat_map(|m| m.into_inner().expect("collect slot poisoned"))
            .collect()
    }

    /// Sums all items (order-insensitive, but computed from the
    /// order-preserving collection so custom `Sum` impls see source order).
    #[must_use]
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.collect::<Vec<T>>().into_iter().sum()
    }

    /// Number of items produced.
    #[must_use]
    pub fn count(self) -> usize {
        self.map(|_| 1usize).sum()
    }

    /// The first item (in source-index order) matching the predicate —
    /// deterministic at any thread count. Workers cooperatively cancel:
    /// once a match at index `i` is published, indices `>= i` are
    /// abandoned, while indices `< i` are still scanned so an earlier
    /// match can replace it.
    #[must_use]
    pub fn find_first(self, pred: impl Fn(&T) -> bool + Sync) -> Option<T> {
        self.find_map_first(|item| if pred(&item) { Some(item) } else { None })
    }

    /// Deterministic alias of [`ParIter::find_first`], kept so rayon call
    /// sites compile; upstream `find_any` returns *any* match and is
    /// nondeterministic under parallel execution, which no caller in this
    /// workspace may depend on.
    #[must_use]
    pub fn find_any(self, pred: impl Fn(&T) -> bool + Sync) -> Option<T> {
        self.find_first(pred)
    }

    /// Applies `f` to every item and returns the first `Some` in
    /// source-index order, with the same cooperative cancellation as
    /// [`ParIter::find_first`].
    #[must_use]
    pub fn find_map_first<U: Send>(self, f: impl Fn(T) -> Option<U> + Sync) -> Option<U> {
        // Lowest index with a published match; the cancellation frontier.
        let best = AtomicUsize::new(usize::MAX);
        let slot: Mutex<Option<(usize, U)>> = Mutex::new(None);
        self.drive(Some(&best), |i, items| {
            if let Some(found) = items.into_iter().find_map(&f) {
                let mut held = slot.lock().expect("find slot poisoned");
                if held.as_ref().is_none_or(|&(j, _)| i < j) {
                    *held = Some((i, found));
                    best.fetch_min(i, Ordering::AcqRel);
                }
            }
        });
        slot.into_inner()
            .expect("find slot poisoned")
            .map(|(_, item)| item)
    }
}

/// The rayon prelude: traits that add `par_iter`-style entry points.
pub mod prelude {
    pub use crate::ParIter;

    /// Conversion into a parallel iterator by value. The source is
    /// materialized up front, so only [`ExactSizeIterator`]-ish cheap
    /// sources (ranges, small vectors) should come through here.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter<'a>(self) -> ParIter<'a, Self::Item>
        where
            Self: 'a;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send + Sync + Clone,
    {
        type Item = I::Item;

        fn into_par_iter<'a>(self) -> ParIter<'a, I::Item>
        where
            Self: 'a,
        {
            ParIter::from_items(self.into_iter().collect())
        }
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type (a reference).
        type Item: Send + 'data;

        /// Iterates over `&self` in parallel.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
        <&'data T as IntoIterator>::Item: Send + Sync + Clone,
    {
        type Item = <&'data T as IntoIterator>::Item;

        fn par_iter(&'data self) -> ParIter<'data, Self::Item> {
            ParIter::from_items(self.into_iter().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let s: u64 = (0..10u64).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        for width in [1, 2, 8] {
            let out: Vec<u32> = vec![1u32, 2]
                .par_iter()
                .flat_map_iter(|&x| [x, x + 10])
                .with_width(width)
                .collect();
            assert_eq!(out, vec![1, 11, 2, 12], "width {width}");
        }
    }

    #[test]
    fn collect_preserves_order_at_every_width() {
        let items: Vec<usize> = (0..500).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for width in [1, 2, 3, 8, 64] {
            let got: Vec<usize> = items.par_iter().map(|&x| x * 3).with_width(width).collect();
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn filter_map_collect_is_deterministic() {
        for width in [1, 2, 8] {
            let got: Vec<usize> = (0..200usize)
                .into_par_iter()
                .filter_map(|x| (x % 3 == 0).then_some(x * x))
                .with_width(width)
                .collect();
            let expect: Vec<usize> = (0..200).filter(|x| x % 3 == 0).map(|x| x * x).collect();
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn find_first_returns_lowest_index() {
        // Matches at 13, 14, …; later matches complete much faster, so an
        // "any" reduction would routinely return a higher index.
        for width in [2, 8] {
            for _ in 0..25 {
                let got = (0..256usize)
                    .into_par_iter()
                    .with_width(width)
                    .find_first(|&i| {
                        if i < 64 {
                            // Earlier indices do more work before answering.
                            std::hint::black_box((0..2_000).sum::<usize>());
                        }
                        i >= 13
                    });
                assert_eq!(got, Some(13), "width {width}");
            }
        }
    }

    #[test]
    fn find_map_first_skips_late_indices_after_a_match() {
        // Cancellation: once index 5 has matched, indices past the
        // frontier must be abandoned — with a single worker claiming
        // indices in order, nothing after the first match is evaluated.
        let evaluated = AtomicUsize::new(0);
        let got = (0..10_000usize)
            .into_par_iter()
            .with_width(1)
            .find_map_first(|i| {
                evaluated.fetch_add(1, Ordering::SeqCst);
                (i >= 5).then_some(i)
            });
        assert_eq!(got, Some(5));
        assert_eq!(evaluated.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn find_first_with_no_match_is_none() {
        for width in [1, 4] {
            let got = (0..100u64)
                .into_par_iter()
                .with_width(width)
                .find_first(|&x| x > 1_000);
            assert_eq!(got, None, "width {width}");
        }
    }

    #[test]
    fn width_override_round_trips() {
        crate::set_num_threads(3);
        assert_eq!(crate::current_num_threads(), 3);
        crate::set_num_threads(0);
        assert!(crate::current_num_threads() >= 1);
    }
}
