//! Hermetic readiness reactor for the NDJSON frontend.
//!
//! The build environment has no crates.io access, so instead of `mio` this
//! crate speaks to the kernel directly through hand-written FFI
//! declarations (the same approach as the vendored `ctrlc` shim): `epoll`
//! on Linux, `poll(2)` on other Unixes. On top of the raw syscalls it
//! provides the three primitives an event-driven server needs:
//!
//! * **Registration** — [`Reactor::register`] associates a file
//!   descriptor with a caller-chosen [`Token`] and an [`Interest`]
//!   (readable/writable), in level- or edge-triggered [`Mode`];
//! * **Timers** — [`Reactor::set_timer`] arms a one-shot deadline that is
//!   delivered as an [`Event`] with `timer = true`, letting the owner run
//!   periodic sweeps (read-timeout enforcement, shutdown-flag checks)
//!   without a dedicated ticker thread;
//! * **A wake pipe** — [`Reactor::waker`] hands out a cheap `Send + Sync`
//!   handle other threads use to interrupt a blocked [`Reactor::poll`],
//!   which is how solver workers tell the I/O loop "a response is ready".
//!
//! The reactor itself is single-owner (`&mut self` everywhere); only the
//! [`Waker`] crosses threads. Nothing here spawns threads or buffers
//! I/O — it is a readiness multiplexer, not a runtime.
//!
//! Unsupported platforms (non-Unix) compile but [`Reactor::new`] returns
//! `ErrorKind::Unsupported`, so callers can fall back to a blocking
//! design; the workspace only targets Linux containers.

#![warn(missing_docs)]

use std::collections::BinaryHeap;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw file descriptor (`std::os::fd::RawFd` on Unix; mirrored here so the
/// API also typechecks on unsupported targets).
pub type RawFd = i32;

/// Caller-chosen identifier carried on every readiness event for a
/// registered descriptor. The reactor never interprets it beyond equality;
/// [`Token::WAKE`] is reserved for the internal wake pipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

impl Token {
    /// Reserved by the reactor for its wake pipe; never delivered to the
    /// caller and rejected by [`Reactor::register`].
    pub const WAKE: Token = Token(usize::MAX);
}

/// Which readiness directions a registration listens for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable (or peer hangup).
    pub readable: bool,
    /// Wake on writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Level- or edge-triggered delivery.
///
/// Level-triggered registrations re-report a condition on every poll while
/// it holds; edge-triggered ones report only transitions, so the owner
/// must drain until `WouldBlock`. The `poll(2)` fallback backend is
/// inherently level-triggered and degrades `Edge` to `Level` — portable
/// callers must stay correct under level semantics (ours do: they drain
/// on every event anyway).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Report while the condition holds (default, `poll(2)`-compatible).
    Level,
    /// Report state *transitions* only (`EPOLLET`).
    Edge,
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registration (or timer) this event belongs to.
    pub token: Token,
    /// The descriptor is readable (includes EOF/peer-hangup: a read will
    /// not block, it returns 0 or an error).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// An error or hangup condition was reported (`EPOLLERR`/`EPOLLHUP`).
    /// Also sets `readable` so a plain read loop observes the failure.
    pub error: bool,
    /// This is a timer expiry (no descriptor involved), delivered for the
    /// token passed to [`Reactor::set_timer`].
    pub timer: bool,
}

/// A `Send + Sync` handle that interrupts a blocked [`Reactor::poll`] from
/// another thread. Cheap to clone; coalesces (many wakes before the next
/// poll produce one interruption).
#[derive(Clone)]
pub struct Waker {
    pipe: Arc<sys::WakePipe>,
}

impl Waker {
    /// Interrupts the reactor's current (or next) [`Reactor::poll`].
    /// Never blocks: a full pipe means a wake is already pending.
    pub fn wake(&self) {
        self.pipe.wake();
    }
}

#[derive(PartialEq, Eq)]
struct Timer {
    deadline: Instant,
    seq: u64,
    token: Token,
}

// BinaryHeap is a max-heap; invert so the earliest deadline pops first.
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The readiness multiplexer. See the crate docs for the model.
pub struct Reactor {
    backend: sys::Backend,
    wake: Arc<sys::WakePipe>,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
}

impl Reactor {
    /// Opens a reactor on the platform's preferred backend (`epoll` on
    /// Linux, `poll(2)` elsewhere on Unix).
    ///
    /// # Errors
    /// Propagates the backend syscall failure; `ErrorKind::Unsupported` on
    /// non-Unix targets.
    pub fn new() -> io::Result<Reactor> {
        Self::with_backend(sys::Backend::preferred()?)
    }

    /// Opens a reactor on the portable `poll(2)` backend regardless of
    /// platform (level-triggered only). Exists so the fallback backend
    /// stays exercised by tests on Linux too.
    ///
    /// # Errors
    /// Propagates the syscall failure.
    pub fn with_poll_backend() -> io::Result<Reactor> {
        Self::with_backend(sys::Backend::poll_set()?)
    }

    fn with_backend(backend: sys::Backend) -> io::Result<Reactor> {
        let wake = Arc::new(sys::WakePipe::new()?);
        let mut reactor = Reactor {
            backend,
            wake,
            timers: BinaryHeap::new(),
            timer_seq: 0,
        };
        let wake_fd = reactor.wake.read_fd();
        reactor.backend.attach_wake(wake_fd)?;
        Ok(reactor)
    }

    /// A handle other threads use to interrupt [`Reactor::poll`].
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker {
            pipe: Arc::clone(&self.wake),
        }
    }

    /// Registers `fd` for `interest` under `token`. The reactor does not
    /// own the descriptor — the caller keeps it open until after
    /// [`Reactor::deregister`].
    ///
    /// # Errors
    /// `InvalidInput` for [`Token::WAKE`]; otherwise the syscall failure
    /// (e.g. registering the same fd twice on epoll).
    pub fn register(
        &mut self,
        fd: RawFd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        if token == Token::WAKE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "Token::WAKE is reserved for the reactor's wake pipe",
            ));
        }
        self.backend.register(fd, token, interest, mode)
    }

    /// Changes the interest/mode of an already-registered descriptor.
    ///
    /// # Errors
    /// The syscall failure (e.g. the fd was never registered).
    pub fn reregister(
        &mut self,
        fd: RawFd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        if token == Token::WAKE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "Token::WAKE is reserved for the reactor's wake pipe",
            ));
        }
        self.backend.reregister(fd, token, interest, mode)
    }

    /// Removes a registration. Always call before closing the descriptor
    /// (closing first leaves a stale entry on the `poll(2)` backend).
    ///
    /// # Errors
    /// The syscall failure (e.g. the fd was never registered).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Arms a one-shot timer: a poll at or after `deadline` delivers an
    /// [`Event`] with `timer = true` for `token`. Timers are independent
    /// of descriptor registrations (any token value is fine, including one
    /// also used for an fd).
    pub fn set_timer(&mut self, deadline: Instant, token: Token) {
        self.timer_seq += 1;
        self.timers.push(Timer {
            deadline,
            seq: self.timer_seq,
            token,
        });
    }

    /// Blocks until readiness, a timer expiry, a [`Waker::wake`], or
    /// `timeout` (forever when `None`), then appends the batch of events
    /// to `events` (cleared first) and returns its length.
    ///
    /// A wake produces an early return with possibly zero events — the
    /// caller's loop re-checks its own cross-thread queues on every
    /// return, which is exactly why it was woken.
    ///
    /// # Errors
    /// Propagates the backend syscall failure. `EINTR` is not an error:
    /// it returns with whatever (possibly zero) events are due.
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let now = Instant::now();
        // The kernel wait is bounded by the nearest timer deadline.
        let until_timer = self
            .timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(now));
        let effective = match (timeout, until_timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        let woken = self.backend.wait(effective, &self.wake, events)?;
        if woken {
            self.wake.drain();
        }
        // Deliver every timer that has expired by the time the wait ended.
        let now = Instant::now();
        while let Some(t) = self.timers.peek() {
            if t.deadline > now {
                break;
            }
            let t = self.timers.pop().expect("peeked entry exists");
            events.push(Event {
                token: t.token,
                readable: false,
                writable: false,
                error: false,
                timer: true,
            });
        }
        Ok(events.len())
    }

    /// Number of armed (not yet delivered) timers.
    #[must_use]
    pub fn timers_armed(&self) -> usize {
        self.timers.len()
    }
}

/// Converts a `Duration` to a millisecond count for the kernel, rounding
/// *up* so a timer never fires early, saturating at `i32::MAX` (~24 days —
/// the caller simply re-polls).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => i32::try_from(d.as_micros().div_ceil(1000)).unwrap_or(i32::MAX),
    }
}

#[cfg(unix)]
mod sys {
    //! The Unix backends: raw FFI declarations plus the epoll and
    //! `poll(2)` wait implementations. This is the only module in the
    //! crate containing `unsafe`; every block carries its justification.

    use super::{timeout_ms, Event, Interest, Mode, RawFd, Token};
    use std::ffi::{c_int, c_short, c_ulong, c_void};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0x800;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x4; // the BSD family value

    // epoll constants (Linux UAPI).
    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    // poll(2) constants (identical on Linux and the BSDs).
    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    /// Mirror of the kernel's `struct epoll_event`. The x86-64 UAPI
    /// declares it `__attribute__((packed))`; other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Mirror of `struct pollfd` (layout identical across Unixes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        // All of these are libc symbols; std always links libc on Unix.
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(pipefd: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// The self-pipe a [`super::Waker`] writes into. Both ends are
    /// nonblocking: a full pipe means a wake is already pending, and the
    /// drain read stops at empty.
    pub(super) struct WakePipe {
        read_fd: RawFd,
        write_fd: RawFd,
        /// Fast path: set by `wake`, cleared by `drain`, so back-to-back
        /// wakes skip the syscall entirely once one byte is in flight.
        pending: AtomicBool,
    }

    impl WakePipe {
        pub(super) fn new() -> io::Result<WakePipe> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a valid 2-slot buffer, exactly what
            // pipe(2) writes into; fcntl only flips the status flags of
            // descriptors this function just created and still owns.
            unsafe {
                cvt(pipe(fds.as_mut_ptr()))?;
                for fd in fds {
                    if cvt(fcntl(fd, F_SETFL, O_NONBLOCK)).is_err() {
                        let e = io::Error::last_os_error();
                        close(fds[0]);
                        close(fds[1]);
                        return Err(e);
                    }
                }
            }
            Ok(WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
                pending: AtomicBool::new(false),
            })
        }

        pub(super) fn read_fd(&self) -> RawFd {
            self.read_fd
        }

        pub(super) fn wake(&self) {
            if self.pending.swap(true, Ordering::AcqRel) {
                return; // a byte is already in the pipe
            }
            let byte = 1u8;
            // SAFETY: writes one byte from a live stack buffer into an fd
            // this struct owns. A nonblocking write to a full pipe fails
            // with EAGAIN, which is fine: full pipe ⇒ wake already pending.
            unsafe {
                write(self.write_fd, (&raw const byte).cast::<c_void>(), 1);
            }
        }

        pub(super) fn drain(&self) {
            self.pending.store(false, Ordering::Release);
            let mut buf = [0u8; 64];
            // SAFETY: reads into a live stack buffer from an owned
            // nonblocking fd; loops until the pipe is empty (EAGAIN).
            unsafe { while read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) > 0 {} }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            // SAFETY: closing descriptors this struct exclusively owns.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    /// Backend dispatch: epoll where available, a `poll(2)` set otherwise
    /// (and on request, for fallback-path testing).
    pub(super) enum Backend {
        #[cfg(target_os = "linux")]
        Epoll(Epoll),
        Poll(PollSet),
    }

    impl Backend {
        pub(super) fn preferred() -> io::Result<Backend> {
            #[cfg(target_os = "linux")]
            {
                Epoll::new().map(Backend::Epoll)
            }
            #[cfg(not(target_os = "linux"))]
            {
                Self::poll_set()
            }
        }

        pub(super) fn poll_set() -> io::Result<Backend> {
            Ok(Backend::Poll(PollSet::new()))
        }

        /// Hooks the wake pipe's read end into the backend. The epoll set
        /// carries it as a normal registration under [`Token::WAKE`]; the
        /// `poll(2)` backend slots it in per-wait, so this is a no-op.
        pub(super) fn attach_wake(&mut self, fd: RawFd) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(e) => e.ctl(
                    EPOLL_CTL_ADD,
                    fd,
                    Token::WAKE,
                    Interest::READABLE,
                    Mode::Level,
                ),
                Backend::Poll(_) => Ok(()),
            }
        }

        pub(super) fn register(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            mode: Mode,
        ) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(e) => e.ctl(EPOLL_CTL_ADD, fd, token, interest, mode),
                Backend::Poll(p) => p.register(fd, token, interest),
            }
        }

        pub(super) fn reregister(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            mode: Mode,
        ) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(e) => e.ctl(EPOLL_CTL_MOD, fd, token, interest, mode),
                Backend::Poll(p) => p.reregister(fd, token, interest),
            }
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(e) => {
                    e.ctl(EPOLL_CTL_DEL, fd, Token(0), Interest::READABLE, Mode::Level)
                }
                Backend::Poll(p) => p.deregister(fd),
            }
        }

        /// One kernel wait. Fills `events` with non-wake readiness and
        /// returns whether the wake pipe fired.
        pub(super) fn wait(
            &mut self,
            timeout: Option<Duration>,
            wake: &WakePipe,
            events: &mut Vec<Event>,
        ) -> io::Result<bool> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(e) => e.wait(timeout, events),
                Backend::Poll(p) => p.wait(timeout, wake, events),
            }
        }
    }

    #[cfg(target_os = "linux")]
    pub(super) struct Epoll {
        epfd: RawFd,
        /// Reusable kernel-fill buffer for `epoll_wait`.
        buf: Vec<EpollEvent>,
    }

    #[cfg(target_os = "linux")]
    impl Epoll {
        fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall, no pointers.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn bits(interest: Interest, mode: Mode) -> u32 {
            let mut ev = EPOLLRDHUP;
            if interest.readable {
                ev |= EPOLLIN;
            }
            if interest.writable {
                ev |= EPOLLOUT;
            }
            if mode == Mode::Edge {
                ev |= EPOLLET;
            }
            ev
        }

        fn ctl(
            &mut self,
            op: c_int,
            fd: RawFd,
            token: Token,
            interest: Interest,
            mode: Mode,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::bits(interest, mode),
                data: token.0 as u64,
            };
            // SAFETY: `ev` lives across the call; DEL ignores the event
            // pointer on modern kernels but passing a valid one is always
            // permitted.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &raw mut ev) })?;
            Ok(())
        }

        fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<bool> {
            let max = c_int::try_from(self.buf.len()).expect("buffer is small");
            // SAFETY: the buffer outlives the call and `max` is exactly
            // its length, so the kernel writes in bounds.
            let n =
                unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), max, timeout_ms(timeout)) };
            let n = match cvt(n) {
                Ok(n) => n as usize,
                // A signal interrupted the wait: report zero events; the
                // caller's loop re-polls with recomputed timeouts.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            let mut woken = false;
            for slot in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (slot.events, slot.data);
                if data == Token::WAKE.0 as u64 {
                    woken = true;
                    continue;
                }
                let error = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    token: Token(data as usize),
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0 || error,
                    writable: bits & EPOLLOUT != 0,
                    error,
                    timer: false,
                });
            }
            Ok(woken)
        }
    }

    #[cfg(target_os = "linux")]
    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd this struct exclusively owns.
            unsafe {
                close(self.epfd);
            }
        }
    }

    /// The portable fallback: a registration table replayed into a fresh
    /// `pollfd` array per wait. Level-triggered only (edge degrades).
    pub(super) struct PollSet {
        entries: Vec<(RawFd, Token, Interest)>,
    }

    impl PollSet {
        fn new() -> PollSet {
            PollSet {
                entries: Vec::new(),
            }
        }

        fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            match self.entries.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(e) => {
                    *e = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "fd was never registered",
                )),
            }
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|&(f, _, _)| f != fd);
            if self.entries.len() == before {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "fd was never registered",
                ));
            }
            Ok(())
        }

        fn wait(
            &mut self,
            timeout: Option<Duration>,
            wake: &WakePipe,
            events: &mut Vec<Event>,
        ) -> io::Result<bool> {
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.entries.len() + 1);
            fds.push(PollFd {
                fd: wake.read_fd(),
                events: POLLIN,
                revents: 0,
            });
            for &(fd, _, interest) in &self.entries {
                let mut ev = 0;
                if interest.readable {
                    ev |= POLLIN;
                }
                if interest.writable {
                    ev |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events: ev,
                    revents: 0,
                });
            }
            // SAFETY: `fds` outlives the call and the count is exactly its
            // length, so the kernel reads/writes in bounds.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
            match cvt(n) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(false),
                Err(e) => return Err(e),
            }
            let woken = fds[0].revents & POLLIN != 0;
            for (slot, &(_, token, _)) in fds[1..].iter().zip(&self.entries) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                let error = bits & (POLLERR | POLLHUP | POLLNVAL) != 0;
                events.push(Event {
                    token,
                    readable: bits & POLLIN != 0 || error,
                    writable: bits & POLLOUT != 0,
                    error,
                    timer: false,
                });
            }
            Ok(woken)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Non-Unix stub: compiles, but every constructor reports
    //! `Unsupported` so callers fall back to a blocking frontend.

    use super::{Event, Interest, Mode, RawFd, Token};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "krsp-reactor requires a Unix poll/epoll facility",
        )
    }

    pub(super) struct WakePipe;

    impl WakePipe {
        pub(super) fn new() -> io::Result<WakePipe> {
            Err(unsupported())
        }

        pub(super) fn read_fd(&self) -> RawFd {
            -1
        }

        pub(super) fn wake(&self) {}

        pub(super) fn drain(&self) {}
    }

    pub(super) struct Backend;

    impl Backend {
        pub(super) fn preferred() -> io::Result<Backend> {
            Err(unsupported())
        }

        pub(super) fn poll_set() -> io::Result<Backend> {
            Err(unsupported())
        }

        pub(super) fn attach_wake(&mut self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) fn register(
            &mut self,
            _fd: RawFd,
            _token: Token,
            _interest: Interest,
            _mode: Mode,
        ) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) fn reregister(
            &mut self,
            _fd: RawFd,
            _token: Token,
            _interest: Interest,
            _mode: Mode,
        ) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) fn deregister(&mut self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) fn wait(
            &mut self,
            _timeout: Option<Duration>,
            _wake: &WakePipe,
            _events: &mut Vec<Event>,
        ) -> io::Result<bool> {
            Err(unsupported())
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn backends() -> Vec<Reactor> {
        let mut v = vec![Reactor::new().expect("default backend")];
        v.push(Reactor::with_poll_backend().expect("poll backend"));
        v
    }

    #[test]
    fn readable_event_fires_and_clears() {
        for mut r in backends() {
            let (mut a, b) = UnixStream::pair().expect("socketpair");
            b.set_nonblocking(true).expect("nonblocking");
            r.register(b.as_raw_fd(), Token(7), Interest::READABLE, Mode::Level)
                .expect("register");

            let mut events = Vec::new();
            // Nothing pending: a zero timeout returns empty.
            r.poll(&mut events, Some(Duration::ZERO)).expect("poll");
            assert!(events.is_empty(), "spurious events: {events:?}");

            a.write_all(b"x").expect("write");
            r.poll(&mut events, Some(Duration::from_secs(5)))
                .expect("poll");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable && !events[0].writable && !events[0].timer);

            // Level-triggered: still readable on the next poll; after
            // draining, quiet again.
            r.poll(&mut events, Some(Duration::ZERO)).expect("poll");
            assert_eq!(events.len(), 1, "level mode must re-report");
            let mut buf = [0u8; 8];
            let mut b2 = &b;
            let _ = b2.read(&mut buf).expect("drain");
            r.poll(&mut events, Some(Duration::ZERO)).expect("poll");
            assert!(events.is_empty(), "drained fd still reported");

            r.deregister(b.as_raw_fd()).expect("deregister");
            a.write_all(b"y").expect("write");
            r.poll(&mut events, Some(Duration::ZERO)).expect("poll");
            assert!(events.is_empty(), "deregistered fd still reported");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn edge_mode_reports_transitions_only() {
        let mut r = Reactor::new().expect("epoll backend");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        r.register(b.as_raw_fd(), Token(3), Interest::READABLE, Mode::Edge)
            .expect("register");
        a.write_all(b"x").expect("write");

        let mut events = Vec::new();
        r.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert_eq!(events.len(), 1, "edge reports the transition");
        // Without a new arrival the edge does not re-fire (data unread).
        r.poll(&mut events, Some(Duration::from_millis(50)))
            .expect("poll");
        assert!(events.is_empty(), "edge re-reported without a transition");
        // A new arrival is a new edge.
        a.write_all(b"y").expect("write");
        r.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        for mut r in backends() {
            let waker = r.waker();
            let t0 = Instant::now();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let mut events = Vec::new();
            r.poll(&mut events, Some(Duration::from_secs(30)))
                .expect("poll");
            let waited = t0.elapsed();
            handle.join().expect("waker thread");
            assert!(events.is_empty(), "wake is not a caller event");
            assert!(
                waited < Duration::from_secs(10),
                "poll was not interrupted (waited {waited:?})"
            );
            // Coalescing, checked deterministically from this thread (a
            // second wake racing the in-poll drain is a legitimate signal
            // for the *next* poll, not a stale byte — so it can't be
            // asserted against from a racing thread): two wakes, one poll
            // observes and drains both.
            let w2 = r.waker();
            w2.wake();
            w2.wake(); // coalesces, must not jam the pipe
            r.poll(&mut events, Some(Duration::from_secs(30)))
                .expect("poll");
            assert!(events.is_empty(), "wake is not a caller event");
            // The pipe was drained: the next poll does not spin.
            let t1 = Instant::now();
            r.poll(&mut events, Some(Duration::from_millis(80)))
                .expect("poll");
            assert!(t1.elapsed() >= Duration::from_millis(50), "stale wake byte");
        }
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        for mut r in backends() {
            let t0 = Instant::now();
            r.set_timer(t0 + Duration::from_millis(60), Token(2));
            r.set_timer(t0 + Duration::from_millis(20), Token(1));
            assert_eq!(r.timers_armed(), 2);

            let mut events = Vec::new();
            r.poll(&mut events, None).expect("poll");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, Token(1));
            assert!(events[0].timer);
            assert!(
                t0.elapsed() >= Duration::from_millis(20),
                "timer fired early"
            );

            r.poll(&mut events, None).expect("poll");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, Token(2));
            assert!(
                t0.elapsed() >= Duration::from_millis(60),
                "timer fired early"
            );
            assert_eq!(r.timers_armed(), 0);
        }
    }

    #[test]
    fn writable_interest_and_reregister() {
        for mut r in backends() {
            let (a, _b) = UnixStream::pair().expect("socketpair");
            a.set_nonblocking(true).expect("nonblocking");
            // An idle socket with buffer space is immediately writable.
            r.register(a.as_raw_fd(), Token(9), Interest::WRITABLE, Mode::Level)
                .expect("register");
            let mut events = Vec::new();
            r.poll(&mut events, Some(Duration::from_secs(5)))
                .expect("poll");
            assert_eq!(events.len(), 1);
            assert!(events[0].writable && !events[0].readable);

            // Dropping write interest silences it.
            r.reregister(a.as_raw_fd(), Token(9), Interest::READABLE, Mode::Level)
                .expect("reregister");
            r.poll(&mut events, Some(Duration::ZERO)).expect("poll");
            assert!(events.is_empty(), "reregister did not take: {events:?}");
        }
    }

    #[test]
    fn wake_token_is_reserved() {
        let mut r = Reactor::new().expect("reactor");
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let err = r
            .register(a.as_raw_fd(), Token::WAKE, Interest::READABLE, Mode::Level)
            .expect_err("WAKE must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn peer_hangup_reads_as_readable_error() {
        for mut r in backends() {
            let (a, b) = UnixStream::pair().expect("socketpair");
            b.set_nonblocking(true).expect("nonblocking");
            r.register(b.as_raw_fd(), Token(4), Interest::READABLE, Mode::Level)
                .expect("register");
            drop(a);
            let mut events = Vec::new();
            r.poll(&mut events, Some(Duration::from_secs(5)))
                .expect("poll");
            assert_eq!(events.len(), 1);
            assert!(
                events[0].readable,
                "hangup must surface as readable so a read loop sees EOF"
            );
        }
    }
}
