//! Hermetic stand-in for `proptest`.
//!
//! The build environment cannot fetch crates, so the workspace vendors the
//! property-testing API subset it uses: the [`proptest!`] macro,
//! `prop_assert*` / `prop_assume!`, range and tuple strategies,
//! [`collection::vec`], [`sample::select`], and `prop_map`. Cases are
//! generated from a deterministic per-test RNG.
//!
//! Differences from upstream: **no shrinking** (failures report the raw
//! case), no regression-file persistence (`proptest-regressions/` files are
//! ignored), and rejection via `prop_assume!` skips the case rather than
//! resampling.

#![forbid(unsafe_code)]

/// Test-runner types: config, RNG, and case errors.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the property fails.
        Fail(String),
    }

    /// Per-case result, as produced by the macro-wrapped body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case RNG (xoshiro256++ seeded from the test name
    /// and case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u128) -> u128 {
            assert!(bound > 0);
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % bound
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (no shrinking to invert).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 as u128)
                        .wrapping_sub(self.start as i128 as u128);
                    let r = rng.below(span);
                    (self.start as i128).wrapping_add(r as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 as u128).wrapping_sub(lo as i128 as u128);
                    if span == u128::MAX {
                        return rng.next_u64() as $t;
                    }
                    let r = rng.below(span + 1);
                    (lo as i128).wrapping_add(r as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector whose length is uniform in
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span as u128) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding clones of elements of a fixed list.
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// `select(values)` — uniform choice among `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires a non-empty list");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u128) as usize].clone()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions that run a property over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                let result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, -5i64..=5).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i128..=4, v in crate::collection::vec(0u8..3, 1..6)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn tuples_and_map((a, b) in pair()) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn select_picks_members(x in crate::sample::select(vec![2usize, 5, 7])) {
            prop_assert!(x == 2 || x == 5 || x == 7);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
