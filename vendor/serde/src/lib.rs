//! Hermetic stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal (de)serialization framework under serde's names. Instead of
//! serde's visitor-based zero-copy data model, values round-trip through an
//! owned tree ([`Content`]); `#[derive(Serialize, Deserialize)]` (from the
//! sibling `serde_derive` shim) generates `Content` conversions for plain
//! structs and enums — exactly the shapes this repository uses. The JSON
//! text layer lives in the vendored `serde_json`.
//!
//! Supported: named/tuple/unit structs; enums with unit, tuple, and struct
//! variants (externally tagged, like serde); primitives, `String`, `char`,
//! `Option`, `Vec`, arrays-as-seqs, tuples to arity 4, `Duration`, and
//! maps with `String` keys. Unsupported (panics at derive time): generics,
//! `#[serde(...)]` attributes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

/// The self-describing value tree every type (de)serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer (i128 covers every integral type the workspace uses).
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, insertion-ordered.
    Map(Vec<(String, Content)>),
}

/// Deserialization failure: a human-readable path/expectation message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing an unexpected shape.
    #[must_use]
    pub fn expected(what: &str, got: &Content) -> Self {
        let shape = match got {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        };
        DeError(format!("expected {what}, found {shape}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Content {
    /// Map field lookup, as used by derived `Deserialize` impls.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Content, DeError> {
        match self {
            Content::Map(m) => m
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError::expected("map", other)),
        }
    }

    /// The sequence payload, checked against an exact length.
    pub fn seq_n(&self, n: usize) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(s) if s.len() == n => Ok(s),
            Content::Seq(s) => Err(DeError(format!(
                "expected sequence of length {n}, found {}",
                s.len()
            ))),
            other => Err(DeError::expected("sequence", other)),
        }
    }

    fn int(&self) -> Result<i128, DeError> {
        match self {
            Content::Int(i) => Ok(*i),
            // Tolerate integral floats (JSON writers may emit `1.0`).
            Content::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(96) => Ok(*f as i128),
            other => Err(DeError::expected("integer", other)),
        }
    }
}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization out of the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls --------------------------------------------------

// `Content` is its own wire form, so callers can splice dynamic values
// (e.g. an opaque request id echoed back verbatim) into typed payloads.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let i = c.int()?;
                <$t>::try_from(i).map_err(|_| DeError(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for i128 {
    fn to_content(&self) -> Content {
        Content::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.int()
    }
}

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        Content::Int(i128::try_from(*self).expect("u128 value exceeds i128 content range"))
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        u128::try_from(c.int()?).map_err(|_| DeError("negative integer for u128".into()))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Float(f) => Ok(*f),
            Content::Int(i) => Ok(*i as f64),
            other => Err(DeError::expected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) => s.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_content(c)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let s = c.seq_n(N)?;
                Ok(($($t::from_content(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".into(), Content::Int(self.as_secs() as i128)),
            (
                "nanos".into(),
                Content::Int(i128::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let secs = u64::from_content(c.field("secs")?)?;
        let nanos = u32::from_content(c.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
    }

    #[test]
    fn option_vec_tuple_round_trip() {
        let v: Option<Vec<(u32, i64)>> = Some(vec![(1, -2), (3, 4)]);
        let c = v.to_content();
        assert_eq!(Option::<Vec<(u32, i64)>>::from_content(&c), Ok(v));
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::from_content(&Content::Int(300)).is_err());
        assert!(u32::from_content(&Content::Int(-1)).is_err());
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 456);
        assert_eq!(Duration::from_content(&d.to_content()), Ok(d));
    }
}
