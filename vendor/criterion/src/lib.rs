//! Hermetic stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — with a coarse
//! measurement loop (warmup + timed batches, median-of-batches reporting)
//! instead of criterion's full statistical machinery. Good enough to smoke
//! out perf regressions by eye; not a statistics engine.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from the standard library.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timing harness passed to bench closures.
pub struct Bencher {
    /// Total time spent in timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Wall-clock budget for the whole measurement.
    budget: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call (also primes lazy state).
        black_box(f());
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

fn run_one(label: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        budget,
    };
    f(&mut b);
    println!(
        "bench {label:<40} {:>12.3?}/iter  ({} iters)",
        b.per_iter(),
        b.iters
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keys off wall-clock budget
    /// rather than sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Keep runs quick: this shim is a smoke harness, not a lab.
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            name: name.to_string(),
            budget,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.budget, &mut f);
        self
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
