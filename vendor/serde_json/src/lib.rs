//! Hermetic stand-in for `serde_json`.
//!
//! JSON text ⇄ the vendored `serde` shim's [`Content`] tree. Supports the
//! API subset the workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], plus a [`Value`] alias for dynamic JSON. Non-finite floats
//! serialize as `null` (matching upstream serde_json). Integers round-trip
//! exactly through `i128`; floats use Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Dynamic JSON value (the shim's content tree).
pub type Value = Content;

/// (De)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ----------------------------------------------------

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep a float marker so `2.0` stays a float on reload.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- deserialization --------------------------------------------------

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse_value(s)?;
    Ok(T::from_content(&content)?)
}

/// Parses JSON text into the dynamic [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the run of plain characters up to the next quote,
            // escape, or end of input: one UTF-8 validation per run. (The
            // per-character path used to re-validate everything from the
            // cursor to the END of the input for every character, making
            // string scanning O(line²) — harmless on small lines,
            // pathological on the multi-hundred-KB `SolveBatch` lines the
            // batch plane ships.) Stopping only at ASCII `"` / `\` is
            // safe: those bytes cannot occur inside a multi-byte UTF-8
            // sequence, so the run always ends on a character boundary.
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("bad utf8".into()))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(_) => {
                    // A backslash escape.
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error("bad codepoint".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?
                            };
                            out.push(ch);
                            continue;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        // Caller has consumed the `u`; self.pos points at the first digit.
        // (For the surrogate-pair path, eat_literal consumed `\u`.)
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Content::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(parse_value("42").unwrap(), Content::Int(42));
        assert_eq!(parse_value("-3.5").unwrap(), Content::Float(-3.5));
        assert_eq!(parse_value("true").unwrap(), Content::Bool(true));
        assert_eq!(parse_value("null").unwrap(), Content::Null);
        assert_eq!(
            parse_value("\"a\\nb\\u0041\"").unwrap(),
            Content::Str("a\nbA".into())
        );
    }

    #[test]
    fn nested_round_trip() {
        let v = Content::Map(vec![
            (
                "k".into(),
                Content::Seq(vec![Content::Int(1), Content::Null]),
            ),
            ("s".into(), Content::Str("x\"y".into())),
            ("f".into(), Content::Float(2.0)),
        ]);
        let compact = to_string(&DynWrap(v.clone())).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&DynWrap(v.clone())).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    struct DynWrap(Content);
    impl serde::Serialize for DynWrap {
        fn to_content(&self) -> Content {
            self.0.clone()
        }
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b\"c".into())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn unicode_survives() {
        let s = to_string(&"héllo → 𝄞".to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "héllo → 𝄞");
    }

    #[test]
    fn string_runs_end_on_every_boundary() {
        // The string scanner bulk-copies runs between escapes; pin every
        // boundary shape: escape at the start, between multi-byte
        // characters, back-to-back escapes, and a run ending the string.
        for raw in [
            "\\nhead",
            "héllo\\t𝄞tail",
            "a\\\\\\\"b",
            "𝄞\\u0041𝄞",
            "plain run with no escapes at all",
            "",
        ] {
            let line = format!("\"{raw}\"");
            let parsed = parse_value(&line).unwrap();
            let expected: String = to_string(&parsed).unwrap();
            // Round-trip through the serializer and back: the value the
            // scanner produced must re-encode to an equivalent string.
            assert_eq!(parse_value(&expected).unwrap(), parsed, "raw = {raw:?}");
        }
        assert_eq!(
            parse_value("\"héllo\\t𝄞tail\"").unwrap(),
            Content::Str("héllo\t𝄞tail".into())
        );
        assert!(parse_value("\"dangling\\").is_err());
        assert!(parse_value("\"unterminated run").is_err());
    }
}
