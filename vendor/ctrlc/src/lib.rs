//! Hermetic offline stand-in for the `ctrlc` crate.
//!
//! [`set_handler`] installs an async-signal-safe flag-setting handler for
//! SIGINT and SIGTERM and spawns a watcher thread that invokes the user
//! callback from normal (non-signal) context whenever the flag trips. This
//! is the only crate in the workspace that contains `unsafe` code — a raw
//! `signal(2)` FFI call; everything the handler itself does is a single
//! atomic store, which is async-signal-safe.
//!
//! On non-Unix targets [`set_handler`] succeeds but never fires (the
//! workspace only targets Linux containers; the stub keeps it compiling
//! elsewhere).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Error installing the handler.
#[derive(Debug)]
pub enum Error {
    /// [`set_handler`] was already called once in this process.
    MultipleHandlers,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::MultipleHandlers => write!(f, "a ctrl-c handler is already installed"),
        }
    }
}

impl std::error::Error for Error {}

static TRIPPED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::TRIPPED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        TRIPPED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is in libc (always linked by std on Unix); the
        // handler performs a single lock-free atomic store, which is on
        // POSIX's async-signal-safe list. Handler function pointers are
        // passed as the platform's usize-sized handler slot.
        unsafe {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            let h = on_signal as extern "C" fn(i32) as usize;
            signal(SIGINT, h);
            signal(SIGTERM, h);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

/// Installs `handler` to run (on a watcher thread, not in signal context)
/// each time the process receives SIGINT or SIGTERM.
pub fn set_handler<F>(mut handler: F) -> Result<(), Error>
where
    F: FnMut() + Send + 'static,
{
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return Err(Error::MultipleHandlers);
    }
    sys::install();
    std::thread::Builder::new()
        .name("ctrlc-watcher".to_owned())
        .spawn(move || loop {
            if TRIPPED.swap(false, Ordering::SeqCst) {
                handler();
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawn ctrl-c watcher thread");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn handler_runs_when_the_flag_trips() {
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&fired);
        set_handler(move || {
            seen.fetch_add(1, Ordering::SeqCst);
        })
        .expect("first install succeeds");
        // Simulate signal delivery without killing the test runner.
        TRIPPED.store(true, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while fired.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(matches!(set_handler(|| {}), Err(Error::MultipleHandlers)));
    }
}
