//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the *subset* of the `rand 0.8` API it actually
//! uses: [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). Streams are deterministic per seed but are *not* bit-for-bit
//! compatible with the upstream crate — every consumer in this repository
//! only relies on per-seed determinism, never on specific values.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types whose values can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high]` (inclusive). Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo reduction; the bias is ~span/2^64 and irrelevant for
                // test workloads (upstream rand uses rejection sampling).
                let r = rng.next_u64() as $u % (span + 1);
                low.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleUniform for i128 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let span = (high as u128).wrapping_sub(low as u128);
        if span == u128::MAX {
            return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as i128;
        }
        let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        low.wrapping_add((wide % (span + 1)) as i128)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for std::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Internal helper to turn a half-open bound into an inclusive one.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

/// Distributions samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// A sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
            let y: u32 = rng.gen_range(3..9);
            assert!((3..9).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Lcg(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = Lcg(9);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = Rng::gen_range(dynr, -3i64..=3);
        assert!((-3..=3).contains(&x));
    }
}
