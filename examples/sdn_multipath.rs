//! SDN multipath provisioning.
//!
//! The paper's motivation: an SDN controller has global topology knowledge
//! and enough compute to run nontrivial routing algorithms. Here it
//! provisions `k = 3` disjoint tunnels through a layered data-center-style
//! fabric under a total-latency SLO, and compares the kRSP algorithm
//! against the classical alternatives a controller might ship instead.
//!
//! Run with: `cargo run --release --example sdn_multipath`

use krsp::{baselines, solve, Config, Instance};
use krsp_gen::{Family, Regime, Workload};

fn describe(name: &str, sol: Option<&krsp::Solution>, inst: &Instance) {
    match sol {
        None => println!("  {name:<22} —        (failed / infeasible for this method)"),
        Some(s) => {
            let status = if s.delay <= inst.delay_bound {
                "meets SLO"
            } else {
                "VIOLATES SLO"
            };
            println!(
                "  {name:<22} cost {:>5}   delay {:>5} / {:<5} {status}",
                s.cost, s.delay, inst.delay_bound
            );
        }
    }
}

fn main() {
    println!("SDN controller: provisioning 3 disjoint tunnels under a latency SLO");
    println!("====================================================================");

    let workload = Workload {
        family: Family::Layered,
        n: 50,
        m: 400,
        regime: Regime::Anticorrelated, // fast links are expensive
        k: 3,
        tightness: 0.35, // SLO well below the min-cost delay
        seed: 2026,
    };
    let inst = krsp_gen::instantiate_with_retries(workload, 50).expect("feasible fabric");
    println!(
        "fabric: {} switches, {} links, SLO: total delay ≤ {}",
        inst.n(),
        inst.m(),
        inst.delay_bound
    );
    println!();

    let ours = solve(&inst, &Config::default()).expect("kRSP solves feasible instances");
    let min_sum = baselines::min_sum(&inst);
    let min_delay = baselines::min_delay(&inst);
    let greedy = baselines::greedy_rsp(&inst);
    let orda = baselines::orda_sprintson(&inst);
    let lp_only = baselines::lp_rounding_only(&inst);

    describe("kRSP (this paper)", Some(&ours.solution), &inst);
    describe("min-cost (Suurballe)", min_sum.as_ref(), &inst);
    describe("min-delay", min_delay.as_ref(), &inst);
    describe("greedy per-path RSP", greedy.as_ref(), &inst);
    describe("Orda–Sprintson-style", orda.as_ref(), &inst);
    describe("LP rounding only [9]", lp_only.as_ref(), &inst);

    println!();
    if let Some(lb) = ours.solution.lower_bound {
        println!(
            "certified: cost within {:.3}× of optimal (LP bound {})",
            ours.solution.cost as f64 / lb.to_f64(),
            lb
        );
    }
    println!(
        "solver: {} probe(s), {} cycle cancellations, {:?} wall time",
        ours.stats.probes,
        ours.stats.iterations.len(),
        ours.stats.wall
    );
}
