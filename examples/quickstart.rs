//! Quickstart: build a small network, ask for two disjoint delay-bounded
//! paths, inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use krsp::{solve, Config, Instance};
use krsp_graph::{DiGraph, NodeId};

fn main() {
    // A 6-node network with a cost/delay trade-off:
    //   - the upper route is cheap but slow,
    //   - the lower route is fast but expensive,
    //   - a middle route balances the two.
    let graph = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10), // s → a   cheap, slow
            (1, 5, 1, 10), // a → t
            (0, 2, 8, 1),  // s → b   pricey, fast
            (2, 5, 8, 1),  // b → t
            (0, 3, 2, 6),  // s → c   balanced
            (3, 5, 2, 6),  // c → t
            (0, 4, 9, 2),  // s → d   spare fast route
            (4, 5, 9, 2),  // d → t
        ],
    );
    let s = NodeId(0);
    let t = NodeId(5);

    // Two edge-disjoint paths, total delay at most 22.
    let instance = Instance::new(graph, s, t, 2, 22).expect("valid instance");
    let solved = solve(&instance, &Config::default()).expect("feasible instance");

    println!("kRSP quickstart");
    println!("===============");
    println!(
        "budget D = {}, achieved delay = {}, total cost = {}",
        instance.delay_bound, solved.solution.delay, solved.solution.cost
    );
    if let Some(lb) = solved.solution.lower_bound {
        println!(
            "LP lower bound on C_OPT: {lb}  (cost factor <= {:.3})",
            solved.solution.cost as f64 / lb.to_f64()
        );
    }
    for (i, path) in solved.solution.paths(&instance).iter().enumerate() {
        let nodes: Vec<String> = path
            .nodes(&instance.graph)
            .iter()
            .map(|n| n.to_string())
            .collect();
        println!(
            "path {}: {}  (cost {}, delay {})",
            i + 1,
            nodes.join(" → "),
            path.cost(),
            path.delay()
        );
    }
    println!(
        "phase 1 gave (cost {}, delay {}); {} cancellation iteration(s) refined it",
        solved.stats.phase1_cost,
        solved.stats.phase1_delay,
        solved.stats.iterations.len()
    );
}
