//! Failure-resilient backbone provisioning.
//!
//! Disjointness is the fault-tolerance mechanism: when any single link
//! dies, at most one of the `k` paths dies with it. This example provisions
//! `k = 2` disjoint paths across a mesh backbone, then kills every link of
//! the primary path in turn and re-provisions, verifying the SLO survives
//! each failure and measuring the re-provisioning cost premium.
//!
//! Run with: `cargo run --release --example resilient_backbone`

use krsp::{solve, Config, Instance};
use krsp_gen::{grid, Regime, WeightParams};
use krsp_graph::{DiGraph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

/// Removes one edge from a graph (by rebuilding without it).
fn without_edge(g: &DiGraph, dead: krsp_graph::EdgeId) -> DiGraph {
    let mut out = DiGraph::new(g.node_count());
    for (id, e) in g.edge_iter() {
        if id != dead {
            out.add_edge(e.src, e.dst, e.cost, e.delay);
        }
    }
    out
}

fn main() {
    println!("resilient backbone: 2 disjoint paths surviving single-link failures");
    println!("====================================================================");

    let mut rng = ChaCha20Rng::seed_from_u64(11);
    let graph = grid(
        7,
        Regime::Uniform,
        WeightParams { max: 15, noise: 0 },
        &mut rng,
    );
    let (s, t) = (NodeId(0), NodeId((graph.node_count() - 1) as u32));

    // Pick a budget between the extremes.
    let probe = Instance::new(graph.clone(), s, t, 2, i64::MAX / 4).expect("valid");
    let dmin = krsp::baselines::min_delay(&probe)
        .expect("grid hosts 2 paths")
        .delay;
    let drelax = krsp::baselines::min_sum(&probe).expect("feasible").delay;
    let budget = dmin + (drelax - dmin) / 3;

    let inst = Instance::new(graph.clone(), s, t, 2, budget).expect("valid");
    let base = solve(&inst, &Config::default()).expect("feasible");
    println!(
        "backbone: {} nodes, {} links; SLO: total delay ≤ {budget}",
        inst.n(),
        inst.m()
    );
    println!(
        "nominal provisioning: cost {}, delay {}",
        base.solution.cost, base.solution.delay
    );
    println!();

    // Fail each link of the first path in turn.
    let paths = base.solution.paths(&inst);
    let primary = &paths[0];
    println!(
        "failing each of the {} links of the primary path:",
        primary.len()
    );
    let mut worst_premium = 0.0f64;
    let mut survived = 0usize;
    for &dead in primary.edges() {
        let degraded = without_edge(&graph, dead);
        let e = graph.edge(dead);
        match Instance::new(degraded, s, t, 2, budget)
            .ok()
            .and_then(|i| solve(&i, &Config::default()).ok())
        {
            Some(re) => {
                survived += 1;
                let premium = re.solution.cost as f64 / base.solution.cost as f64;
                worst_premium = worst_premium.max(premium);
                println!(
                    "  link {}→{} down: re-provisioned at cost {} (premium {:.2}×), delay {} ≤ {budget}",
                    e.src, e.dst, re.solution.cost, premium, re.solution.delay
                );
            }
            None => println!(
                "  link {}→{} down: no disjoint pair meets the SLO anymore",
                e.src, e.dst
            ),
        }
    }
    println!();
    println!(
        "{survived}/{} failures survived with the SLO intact; worst cost premium {:.2}×",
        primary.len(),
        worst_premium
    );
}
