//! Multi-path video delivery: the delay/cost trade-off curve.
//!
//! A streaming service pushes one video over two disjoint WAN paths
//! (packets routed "according to their urgency priority", as the paper puts
//! it: keyframes on the low-delay path, deferrable data on the other). The
//! operator wants the cheapest disjoint pair for each latency target — this
//! example sweeps the budget `D` and prints the resulting trade-off curve,
//! including where the delay-oblivious min-cost routing becomes usable.
//!
//! Run with: `cargo run --release --example video_streaming`

use krsp::{baselines, solve, Config, Instance};
use krsp_gen::{geometric, WeightParams};
use krsp_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    println!("video streaming: cheapest 2 disjoint WAN paths per latency target");
    println!("==================================================================");

    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let graph = geometric(60, 700, WeightParams { max: 30, noise: 0 }, &mut rng);
    let (s, t) = (NodeId(0), NodeId(59));

    // Establish the interesting budget range from the two extremes.
    let probe = Instance::new(graph.clone(), s, t, 2, i64::MAX / 4).expect("valid");
    let Some(fastest) = baselines::min_delay(&probe) else {
        println!("(sampled WAN cannot host 2 disjoint paths — rerun with another seed)");
        return;
    };
    let cheapest = baselines::min_sum(&probe).expect("feasible");
    println!(
        "delay range: fastest pair = {}, min-cost pair = {} (cost {})",
        fastest.delay, cheapest.delay, cheapest.cost
    );
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>14}",
        "D", "cost", "delay", "cost/LP", "min-cost ok?"
    );

    let lo = fastest.delay;
    let hi = cheapest.delay.max(lo + 1);
    let steps = 10;
    for i in 0..=steps {
        let d = lo + (hi - lo) * i / steps;
        let inst = Instance::new(graph.clone(), s, t, 2, d).expect("valid");
        match solve(&inst, &Config::default()) {
            Ok(out) => {
                let ratio = out
                    .solution
                    .lower_bound
                    .map(|lb| out.solution.cost as f64 / lb.to_f64().max(1e-9))
                    .unwrap_or(f64::NAN);
                let minsum_ok = cheapest.delay <= d;
                println!(
                    "{:>8} {:>10} {:>10} {:>12.3} {:>14}",
                    d,
                    out.solution.cost,
                    out.solution.delay,
                    ratio,
                    if minsum_ok { "yes" } else { "no" }
                );
            }
            Err(e) => println!("{d:>8} infeasible: {e}"),
        }
    }
    println!();
    println!("reading the curve: as D tightens the pair must buy faster links,");
    println!("so cost rises; once D ≥ the min-cost pair's delay the constraint");
    println!("is free and kRSP coincides with Suurballe's min-sum routing.");
}
