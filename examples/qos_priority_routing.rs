//! Urgency-priority QoS routing (the paper's §1 motivation, end to end).
//!
//! Definition 1 asks for `k` disjoint paths with a *per-path* delay bound —
//! NP-hard to satisfy exactly. The paper's practical answer: solve kRSP
//! with the total budget `k·D` and "route the packages via the k paths
//! according to their urgency priority". This example runs that reduction
//! for a video-conferencing flow and then re-provisions a whole batch of
//! conference sessions in parallel.
//!
//! Run with: `cargo run --release --example qos_priority_routing`

use krsp::extensions::solve_qos;
use krsp::{solve_batch, summarize, Config, Instance};
use krsp_gen::{instantiate_with_retries, Family, Regime, Workload};

fn main() {
    println!("QoS priority routing: per-path target via the kRSP reduction");
    println!("=============================================================");

    // One conference session: 3 disjoint tunnels, per-path target 60.
    let Some(inst) = instantiate_with_retries(
        Workload {
            family: Family::Layered,
            n: 60,
            m: 480,
            regime: Regime::Anticorrelated,
            k: 3,
            tightness: 0.6,
            seed: 424242,
        },
        50,
    ) else {
        println!("(no feasible fabric sampled — rerun with another seed)");
        return;
    };
    let per_path = inst.delay_bound / inst.k as i64;
    match solve_qos(
        &inst.graph,
        inst.s,
        inst.t,
        inst.k,
        per_path,
        &Config::default(),
    ) {
        Ok(out) => {
            println!(
                "session: k = {}, per-path target {per_path}, total budget {}",
                inst.k,
                per_path * inst.k as i64
            );
            println!(
                "provisioned at cost {}, total delay {}; {} of {} paths meet the per-path target",
                out.cost,
                out.total_delay,
                out.paths_meeting_bound,
                out.paths.len()
            );
            for (i, p) in out.paths.iter().enumerate() {
                let class = match i {
                    0 => "audio + keyframes (most urgent)",
                    1 => "video layers",
                    _ => "bulk / retransmissions",
                };
                println!(
                    "  priority {}: delay {:>4}, cost {:>4}  ← {class}",
                    i + 1,
                    p.delay(),
                    p.cost()
                );
            }
        }
        Err(e) => println!("session unprovisionable: {e}"),
    }

    // Nightly re-optimization: a batch of sessions, solved in parallel.
    println!();
    println!("nightly re-optimization of 24 sessions (rayon batch):");
    let batch: Vec<Instance> = (0..24u64)
        .filter_map(|seed| {
            instantiate_with_retries(
                Workload {
                    family: Family::Layered,
                    n: 40,
                    m: 320,
                    regime: Regime::Anticorrelated,
                    k: 2,
                    tightness: 0.4,
                    seed: 9_000 + seed,
                },
                25,
            )
        })
        .collect();
    let start = std::time::Instant::now();
    let results = solve_batch(&batch, &Config::default());
    let elapsed = start.elapsed();
    let summary = summarize(&batch, &results);
    println!(
        "  {} sessions: {} provisioned, {} infeasible, total cost {}, worst delay utilization {:.1}%, {:?} wall",
        batch.len(),
        summary.solved,
        summary.infeasible,
        summary.total_cost,
        100.0 * summary.worst_delay_utilization,
        elapsed
    );
}
