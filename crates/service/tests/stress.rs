//! Threaded stress tests for the sharded cache + singleflight service.
//!
//! These are `#[ignore]`d in the default run (they hammer the service with
//! many client threads for a while) and executed by the CI stress stage:
//! `cargo test --release -- --ignored stress`.

use krsp::Instance;
use krsp_graph::{DiGraph, NodeId};
use krsp_service::{Rejection, Request, Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A 6-node instance with a cost/delay trade-off; distinct delay bounds
/// yield distinct canonical keys.
fn tradeoff(d: i64) -> Instance {
    let g = DiGraph::from_edges(
        6,
        &[
            (0, 1, 1, 10),
            (1, 5, 1, 10),
            (0, 2, 8, 1),
            (2, 5, 8, 1),
            (0, 3, 2, 6),
            (3, 5, 2, 6),
            (0, 4, 9, 2),
            (4, 5, 9, 2),
        ],
    );
    Instance::new(g, NodeId(0), NodeId(5), 2, d).unwrap()
}

/// Duplicate-heavy storm: many clients, few distinct keys. Every request
/// must complete, answers must be coherent per key, and the counters must
/// balance exactly.
#[test]
#[ignore = "stress: run via cargo test --release -- --ignored stress"]
fn stress_duplicate_heavy_storm_completes_and_balances() {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 150;
    let bounds = [14i64, 16, 18, 22];

    let svc = Service::new(ServiceConfig {
        workers: 4,
        queue_capacity: 4096, // storm fits: completeness, not backpressure
        ..ServiceConfig::default()
    });
    let completed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let svc = svc.clone();
            let completed = Arc::clone(&completed);
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    let d = bounds[(c + i) % bounds.len()];
                    let out = svc.provision(Request {
                        instance: tradeoff(d),
                        deadline: None,
                        kernel: None,
                    });
                    let r = out.expect("feasible instance under a roomy queue");
                    assert!(r.solution.delay <= d, "budget violated for D={d}");
                    assert!(
                        !(r.cache_hit && r.coalesced),
                        "an answer is a hit or a follower, never both"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let issued = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(completed.load(Ordering::Relaxed), issued);
    let m = svc.metrics();
    assert_eq!(m.admitted, issued);
    assert_eq!(m.completed, issued);
    assert_eq!(m.rejected_queue_full, 0);
    // Exact balance: every answer is a cache hit, a coalesced follower, or
    // a fresh solve at some rung.
    let fresh: u64 = m.per_rung.iter().sum();
    assert_eq!(m.cache_hits + m.coalesced + fresh, issued, "m = {m:?}");
    assert!(
        fresh >= bounds.len() as u64,
        "each distinct key needs one solve"
    );
    // Coalescing and caching must absorb nearly all of the duplication.
    assert!(
        fresh <= issued / 10,
        "duplicate-heavy traffic mostly re-solved: fresh = {fresh}"
    );
    // Per-shard counters sum to the aggregates.
    let shard_hits: u64 = m.per_shard.iter().map(|s| s.hits).sum();
    let shard_misses: u64 = m.per_shard.iter().map(|s| s.misses).sum();
    assert_eq!(shard_hits, m.cache_hits);
    assert_eq!(shard_misses, m.cache_misses);
    assert_eq!(m.per_shard.len(), svc.config().cache_shards);
}

/// Tiny sharded cache under a wide key set: evictions must stay bounded by
/// construction and the hit/miss ledger must match the probe count.
#[test]
#[ignore = "stress: run via cargo test --release -- --ignored stress"]
fn stress_cache_thrash_keeps_counters_coherent() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 100;

    let svc = Service::new(ServiceConfig {
        workers: 4,
        queue_capacity: 4096,
        cache_capacity: 4, // far fewer slots than keys: constant eviction
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let svc = svc.clone();
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    // 20 distinct feasible bounds, scanned in conflicting
                    // orders per client.
                    let d = 14 + ((c * 7 + i) % 20) as i64;
                    let out = svc.provision(Request {
                        instance: tradeoff(d),
                        deadline: None,
                        kernel: None,
                    });
                    match out {
                        Ok(r) => assert!(r.solution.delay <= d),
                        Err(e) => assert_eq!(e, Rejection::Infeasible, "unexpected {e}"),
                    }
                }
            });
        }
    });

    let m = svc.metrics();
    let issued = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(m.completed + m.infeasible, issued);
    // Only completed non-coalesced requests probe... every drive probes the
    // cache at least once, so probes ≥ requests that reached the cache.
    assert!(
        m.cache_hits + m.cache_misses >= m.completed,
        "every request probes the cache at least once: {m:?}"
    );
    let fresh: u64 = m.per_rung.iter().sum();
    assert_eq!(m.cache_hits + m.coalesced + fresh, m.completed);
    let shard_evictions: u64 = m.per_shard.iter().map(|s| s.evictions).sum();
    assert_eq!(shard_evictions, m.cache_evictions);
    assert!(m.cache_evictions > 0, "thrash must evict");
}
