//! Integration tests for the event-driven NDJSON frontend: pipelined
//! out-of-order responses matched by id, slow-loris isolation and
//! read-timeout enforcement, incremental framing under oversize lines and
//! mid-line disconnects, connection caps, per-address rate limiting, the
//! `Health` probe, and (ignored by default) a ≥512-connection scaling
//! smoke with O(workers) server threads.
//!
//! Tests that arm failpoints serialize on [`FP_LOCK`] — the registry is
//! process-global — and clear it on drop, pass or fail.

use krsp::Instance;
use krsp_graph::{DiGraph, NodeId};
use krsp_service::proto::{
    self, BatchQuery, SolveBatchRequest, SolveRequest, WireRequest, WireResponse,
};
use krsp_service::{
    serve_with_shutdown, ErrorKind, HealthStatus, ServeOptions, Service, ServiceConfig,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static FP_LOCK: Mutex<()> = Mutex::new(());

struct FpGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FpGuard {
    fn drop(&mut self) {
        krsp_failpoint::clear();
    }
}

fn fp_lock() -> FpGuard {
    FpGuard(FP_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

/// A small feasible 2-path instance; `cost_scale` perturbs the weights so
/// distinct scales produce distinct cache keys.
fn instance(cost_scale: i64) -> Instance {
    let g = DiGraph::from_edges(
        4,
        &[
            (0, 1, cost_scale, 5),
            (1, 3, cost_scale, 5),
            (0, 2, 4 * cost_scale, 1),
            (2, 3, 4 * cost_scale, 1),
        ],
    );
    Instance::new(g, NodeId(0), NodeId(3), 2, 20).expect("test instance is well-formed")
}

fn solve_line(inst: &Instance) -> String {
    serde_json::to_string(&WireRequest::Solve(SolveRequest {
        instance: inst.clone(),
        deadline_ms: None,
        kernel: None,
    }))
    .expect("request serializes")
}

struct TestServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(cfg: ServiceConfig, opts: ServeOptions) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let service = Service::new(cfg);
            serve_with_shutdown(&service, listener, flag, opts)
        });
        TestServer {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }

    fn connect(&self) -> BufReader<TcpStream> {
        BufReader::new(TcpStream::connect(self.addr).expect("connect to test server"))
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let joined = handle.join().expect("server thread must not panic");
            joined.expect("server exits cleanly");
        }
    }
}

fn send_line(conn: &mut BufReader<TcpStream>, line: &str) {
    let s = conn.get_mut();
    s.write_all(line.as_bytes()).expect("write request");
    s.write_all(b"\n").expect("write newline");
}

fn read_reply(conn: &mut BufReader<TcpStream>) -> String {
    let mut reply = String::new();
    let n = conn.read_line(&mut reply).expect("read reply");
    assert!(n > 0, "server closed the connection unexpectedly");
    reply.trim().to_string()
}

fn quick_opts() -> ServeOptions {
    ServeOptions {
        poll: Duration::from_millis(20),
        grace: Duration::from_secs(5),
        ..ServeOptions::default()
    }
}

#[test]
fn pipelined_responses_come_back_out_of_order_and_id_matched() {
    let _fp = fp_lock();
    let server = TestServer::start(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        quick_opts(),
    );
    let mut conn = server.connect();

    // Warm the cache with instance B so its pipelined solve is a fast hit.
    send_line(&mut conn, &solve_line(&instance(2)));
    let warm = read_reply(&mut conn);
    let (warm_id, warm_resp) = proto::decode_response_line(&warm).expect("warm reply parses");
    assert_eq!(warm_id, None, "id-less request must get an id-less reply");
    let warm_cost = match warm_resp {
        WireResponse::Solved(r) => r.cost,
        other => panic!("warmup did not solve: {other:?}"),
    };

    // Slow every fresh solve, then pipeline: id 1 = a cache miss (slow),
    // id 2 = the warmed instance (fast hit). The hit must overtake.
    krsp_failpoint::cfg("service.solve", "delay(200)").expect("arm failpoint");
    let batch = format!(
        "{}\n{}\n",
        proto::encode_request_with_id(
            1,
            &WireRequest::Solve(SolveRequest {
                instance: instance(1),
                deadline_ms: None,
                kernel: None,
            })
        ),
        proto::encode_request_with_id(
            2,
            &WireRequest::Solve(SolveRequest {
                instance: instance(2),
                deadline_ms: None,
                kernel: None,
            })
        ),
    );
    conn.get_mut()
        .write_all(batch.as_bytes())
        .expect("write pipelined batch");

    let first = proto::decode_response_line(&read_reply(&mut conn)).expect("first reply parses");
    let second = proto::decode_response_line(&read_reply(&mut conn)).expect("second reply parses");
    assert_eq!(first.0, Some(2), "the cache hit must complete first");
    assert_eq!(second.0, Some(1), "the delayed miss completes second");
    match (first.1, second.1) {
        (WireResponse::Solved(hit), WireResponse::Solved(miss)) => {
            assert!(hit.cache_hit, "id 2 was warmed and must hit the cache");
            assert_eq!(hit.cost, warm_cost, "same instance, same answer");
            assert!(!miss.cache_hit);
        }
        other => panic!("expected two Solved replies, got {other:?}"),
    }
}

#[test]
fn idless_pipelining_keeps_order_and_historical_wire_format() {
    let server = TestServer::start(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        quick_opts(),
    );
    let mut conn = server.connect();

    // Three id-less lines at once: two solves and a metrics probe. The
    // replies must come back in submission order, the metrics snapshot
    // must already count both solves (evaluated at its queue turn, not at
    // receipt), and no reply may grow an "id" member.
    let batch = format!(
        "{}\n{}\n\"Metrics\"\n",
        solve_line(&instance(1)),
        solve_line(&instance(3))
    );
    conn.get_mut()
        .write_all(batch.as_bytes())
        .expect("write batch");

    let first = read_reply(&mut conn);
    let second = read_reply(&mut conn);
    let third = read_reply(&mut conn);
    assert!(
        first.starts_with("{\"Solved\"") && second.starts_with("{\"Solved\""),
        "id-less replies keep the historical byte format: {first} / {second}"
    );
    let metrics = match serde_json::from_str::<WireResponse>(&third) {
        Ok(WireResponse::Metrics(m)) => m,
        other => panic!("third reply must be Metrics: {other:?}"),
    };
    assert_eq!(
        metrics.completed, 2,
        "a queued Metrics observes every id-less solve before it"
    );
}

#[test]
fn slow_loris_is_isolated_and_reaped_by_the_read_timeout() {
    let opts = ServeOptions {
        read_timeout: Duration::from_millis(250),
        ..quick_opts()
    };
    let server = TestServer::start(ServiceConfig::default(), opts);

    // The loris: half a request line, then silence.
    let mut loris = server.connect();
    loris
        .get_mut()
        .write_all(b"{\"Solve\": {\"inst")
        .expect("write partial line");

    // A well-behaved client on another connection is not blocked.
    let mut good = server.connect();
    let started = Instant::now();
    send_line(&mut good, &solve_line(&instance(1)));
    let reply = read_reply(&mut good);
    assert!(
        reply.starts_with("{\"Solved\""),
        "healthy connection must be served during the loris stall: {reply}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "healthy reply took {:?}",
        started.elapsed()
    );

    // The loris connection is dropped once its mid-line stall exceeds the
    // read timeout.
    loris
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set client read timeout");
    let mut buf = [0u8; 16];
    let n = loris.get_mut().read(&mut buf).expect("loris read");
    assert_eq!(n, 0, "server must close the timed-out loris connection");

    send_line(&mut good, "\"Metrics\"");
    let metrics = match serde_json::from_str::<WireResponse>(&read_reply(&mut good)) {
        Ok(WireResponse::Metrics(m)) => m,
        other => panic!("expected Metrics: {other:?}"),
    };
    assert!(
        metrics.frontend.read_timeouts >= 1,
        "the reap must be counted: {:?}",
        metrics.frontend
    );
}

#[test]
fn oversize_lines_and_midline_disconnects_leave_the_server_healthy() {
    let server = TestServer::start(ServiceConfig::default(), quick_opts());

    // A connection that dies mid-line (unterminated junk, then drop).
    {
        let mut dying = server.connect();
        dying
            .get_mut()
            .write_all(b"{\"Solve\": {\"trunca")
            .expect("write partial");
    }

    // An oversize line: the framer must discard it without buffering,
    // answer one oversize error, and keep the connection usable. The
    // follow-up request is pipelined behind it with an id to prove the
    // stream recovers into id-matched service.
    let mut conn = server.connect();
    let junk = vec![b'x'; proto::MAX_LINE_BYTES + 1024];
    conn.get_mut()
        .write_all(&junk)
        .expect("write oversize line");
    let follow_up = format!(
        "\n{}\n",
        proto::encode_request_with_id(
            9,
            &WireRequest::Solve(SolveRequest {
                instance: instance(1),
                deadline_ms: None,
                kernel: None,
            })
        )
    );
    conn.get_mut()
        .write_all(follow_up.as_bytes())
        .expect("write follow-up");

    let first = read_reply(&mut conn);
    match serde_json::from_str::<WireResponse>(&first) {
        Ok(WireResponse::Error(e)) => assert_eq!(e.kind, ErrorKind::OversizeLine),
        other => panic!("expected an oversize error, got {other:?}"),
    }
    let (id, resp) = proto::decode_response_line(&read_reply(&mut conn)).expect("reply parses");
    assert_eq!(id, Some(9), "the stream recovers into id-matched replies");
    assert!(matches!(resp, WireResponse::Solved(_)));
}

#[test]
fn connection_caps_shed_at_accept_and_health_reports_state() {
    let opts = ServeOptions {
        max_conns: 2,
        ..quick_opts()
    };
    let server = TestServer::start(ServiceConfig::default(), opts);

    let mut first = server.connect();
    send_line(&mut first, "\"Health\"");
    let health = match serde_json::from_str::<WireResponse>(&read_reply(&mut first)) {
        Ok(WireResponse::Health(h)) => h,
        other => panic!("expected Health: {other:?}"),
    };
    assert_eq!(health.status, HealthStatus::Ready);
    assert!(health.conns_open >= 1);
    assert!(health.workers >= 1);

    let _second = server.connect();
    // Give the reactor a beat to register both before the over-cap accept.
    std::thread::sleep(Duration::from_millis(100));
    let mut third = server.connect();
    let shed = read_reply(&mut third);
    match serde_json::from_str::<WireResponse>(&shed) {
        Ok(WireResponse::Error(e)) => assert_eq!(e.kind, ErrorKind::Shed),
        other => panic!("over-cap accept must shed, got {other:?}"),
    }
    let mut buf = [0u8; 8];
    let n = third.get_mut().read(&mut buf).expect("read after shed");
    assert_eq!(n, 0, "shed connections are closed after the error line");

    send_line(&mut first, "\"Metrics\"");
    let metrics = match serde_json::from_str::<WireResponse>(&read_reply(&mut first)) {
        Ok(WireResponse::Metrics(m)) => m,
        other => panic!("expected Metrics: {other:?}"),
    };
    assert!(metrics.frontend.shed_total_cap >= 1);
    assert!(metrics.frontend.conns_peak >= 2);
}

#[test]
fn per_address_rate_limit_rejects_excess_solves() {
    let opts = ServeOptions {
        rate_per_sec: 1,
        rate_burst: 1,
        ..quick_opts()
    };
    let server = TestServer::start(ServiceConfig::default(), opts);
    let mut conn = server.connect();

    let batch = (1..=3)
        .map(|id| {
            proto::encode_request_with_id(
                id,
                &WireRequest::Solve(SolveRequest {
                    instance: instance(1),
                    deadline_ms: None,
                    kernel: None,
                }),
            ) + "\n"
        })
        .collect::<String>();
    conn.get_mut()
        .write_all(batch.as_bytes())
        .expect("write burst");

    let mut solved = 0;
    let mut limited = 0;
    for _ in 0..3 {
        let (_, resp) = proto::decode_response_line(&read_reply(&mut conn)).expect("reply parses");
        match resp {
            WireResponse::Solved(_) => solved += 1,
            WireResponse::Error(e) if e.kind == ErrorKind::RateLimited => limited += 1,
            other => panic!("unexpected reply under rate limit: {other:?}"),
        }
    }
    assert_eq!(solved, 1, "burst capacity 1 admits exactly one solve");
    assert_eq!(limited, 2, "the rest are rate-limited, connection stays up");

    send_line(&mut conn, "\"Health\"");
    let health = match serde_json::from_str::<WireResponse>(&read_reply(&mut conn)) {
        Ok(WireResponse::Health(h)) => h,
        other => panic!("expected Health: {other:?}"),
    };
    assert_eq!(health.status, HealthStatus::Ready);
}

/// Counts this process's live threads via /proc (Linux-only; returns 0
/// elsewhere so the assertion is skipped rather than wrong).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// ≥512 concurrent connections served with O(workers) threads and zero
/// dropped responses. Ignored by default (hundreds of sockets); run via
/// `cargo test --release -- --ignored scaling` or scripts/ci.sh.
#[test]
#[ignore = "scaling smoke: hundreds of sockets; run via scripts/ci.sh"]
fn scaling_smoke_512_connections_bounded_threads() {
    const CONNS: usize = 512;
    let opts = ServeOptions {
        max_conns: CONNS + 64,
        per_client_conns: CONNS + 64,
        ..quick_opts()
    };
    let server = TestServer::start(
        ServiceConfig {
            workers: 2,
            // Every connection's solve is admitted at once; the queue must
            // hold them all or admission control (correctly) sheds.
            queue_capacity: CONNS,
            ..ServiceConfig::default()
        },
        opts,
    );

    let before = thread_count();
    let mut conns: Vec<BufReader<TcpStream>> = (0..CONNS).map(|_| server.connect()).collect();

    // One id-tagged solve per connection, all written before any read.
    for (i, conn) in conns.iter_mut().enumerate() {
        let line = proto::encode_request_with_id(
            i as u64,
            &WireRequest::Solve(SolveRequest {
                instance: instance(1 + (i % 3) as i64),
                deadline_ms: None,
                kernel: None,
            }),
        );
        send_line(conn, &line);
    }

    let during = thread_count();
    if before > 0 && during > 0 {
        assert!(
            during.saturating_sub(before) <= 8,
            "{CONNS} connections must not grow threads: {before} -> {during}"
        );
    }

    let mut answered = 0;
    for (i, conn) in conns.iter_mut().enumerate() {
        let (id, resp) = proto::decode_response_line(&read_reply(conn)).expect("reply parses");
        assert_eq!(id, Some(i as u64), "replies are id-matched per connection");
        match resp {
            WireResponse::Solved(_) => answered += 1,
            other => panic!("connection {i} got {other:?}"),
        }
    }
    assert_eq!(answered, CONNS, "zero dropped responses at {CONNS} conns");
}

/// Regression (ISSUE 7): an oversize line that triggers discard-to-newline
/// while id'd requests are in flight must answer with an *id-matched*
/// structured error. The old framer dropped the line's head before the id
/// could be read and emitted a bare ordered error, which a pipelined
/// client charges to the wrong request.
#[test]
fn oversize_error_is_id_matched_while_solves_are_in_flight() {
    let _fp = fp_lock();
    // Hold the in-flight solve long enough that the oversize error must
    // overtake it — proving the error is answered out-of-order by id, not
    // spliced into the ordered stream ahead of the solve's response.
    krsp_failpoint::cfg("service.solve", "delay(300)").expect("arm service.solve");
    let server = TestServer::start(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        quick_opts(),
    );
    let mut conn = server.connect();

    send_line(
        &mut conn,
        &proto::encode_request_with_id(
            1,
            &WireRequest::Solve(SolveRequest {
                instance: instance(1),
                deadline_ms: None,
                kernel: None,
            }),
        ),
    );
    // An id-carrying line that blows the cap: the canonical client splice
    // (`{"id":7,...`) followed by enough padding to cross MAX_LINE_BYTES.
    let mut oversize = String::from("{\"id\":7,\"Solve\":\"");
    oversize.push_str(&"x".repeat(proto::MAX_LINE_BYTES + 1024));
    send_line(&mut conn, &oversize);

    let first = proto::decode_response_line(&read_reply(&mut conn)).expect("first reply parses");
    match first {
        (Some(7), WireResponse::Error(e)) => assert_eq!(e.kind, ErrorKind::OversizeLine),
        other => panic!("expected the id-matched oversize error first, got {other:?}"),
    }
    let second = proto::decode_response_line(&read_reply(&mut conn)).expect("second reply parses");
    assert_eq!(second.0, Some(1), "the delayed solve keeps its own id");
    assert!(matches!(second.1, WireResponse::Solved(_)));
}

/// `SolveBatch` round-trip through the reactor frontend: one request line,
/// one id-matched response per query, mixed outcomes kept per-query, and
/// the batch counters visible in `Metrics`.
#[test]
fn solve_batch_round_trips_with_per_query_responses() {
    let _fp = fp_lock();
    let server = TestServer::start(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        quick_opts(),
    );
    let mut conn = server.connect();

    // d = 3 is below the instance's best achievable total delay (12):
    // query 12 must come back `Rejected` without touching its siblings.
    let tight = {
        let feasible = instance(3);
        Instance::new(
            feasible.graph.clone(),
            feasible.s,
            feasible.t,
            feasible.k,
            3,
        )
        .expect("tight instance is well-formed")
    };
    let batch = WireRequest::SolveBatch(SolveBatchRequest {
        queries: vec![
            BatchQuery {
                id: 10,
                instance: instance(1),
                deadline_ms: None,
                kernel: None,
            },
            BatchQuery {
                id: 11,
                instance: instance(2),
                deadline_ms: Some(5000),
                kernel: None,
            },
            BatchQuery {
                id: 12,
                instance: tight,
                deadline_ms: None,
                kernel: None,
            },
        ],
    });
    send_line(
        &mut conn,
        &serde_json::to_string(&batch).expect("batch serializes"),
    );

    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..3 {
        let (id, resp) = proto::decode_response_line(&read_reply(&mut conn)).expect("reply parses");
        outcomes.insert(id.expect("every batch response carries its query id"), resp);
    }
    assert!(
        matches!(outcomes.get(&10), Some(WireResponse::Solved(r)) if r.delay <= 20),
        "query 10: {:?}",
        outcomes.get(&10)
    );
    assert!(
        matches!(outcomes.get(&11), Some(WireResponse::Solved(_))),
        "query 11: {:?}",
        outcomes.get(&11)
    );
    assert!(
        matches!(outcomes.get(&12), Some(WireResponse::Rejected(_))),
        "query 12: {:?}",
        outcomes.get(&12)
    );

    // An empty batch is a parse error, not silence.
    send_line(&mut conn, "{\"SolveBatch\":{\"queries\":[]}}");
    match serde_json::from_str::<WireResponse>(&read_reply(&mut conn)) {
        Ok(WireResponse::Error(e)) => assert_eq!(e.kind, ErrorKind::Parse),
        other => panic!("expected a parse error for an empty batch, got {other:?}"),
    }

    send_line(&mut conn, "\"Metrics\"");
    match serde_json::from_str::<WireResponse>(&read_reply(&mut conn)) {
        Ok(WireResponse::Metrics(m)) => {
            assert_eq!(m.frontend.batches, 1, "one SolveBatch line served");
            assert_eq!(m.frontend.batch_queries, 3);
            assert_eq!(m.completed + m.infeasible, 3, "metrics: {m:?}");
        }
        other => panic!("expected Metrics, got {other:?}"),
    }
}

#[test]
fn reap_latency_is_bounded_by_the_timeout_not_the_sweep_tick() {
    // A deliberately coarse sweep tick (2 s) with a tight read timeout
    // (50 ms): the stall-transition wake-up must reap the loris near its
    // deadline instead of letting it linger until the next fixed tick.
    let opts = ServeOptions {
        poll: Duration::from_secs(2),
        read_timeout: Duration::from_millis(50),
        grace: Duration::from_secs(5),
        ..ServeOptions::default()
    };
    let server = TestServer::start(ServiceConfig::default(), opts);

    let mut loris = server.connect();
    loris
        .get_mut()
        .write_all(b"{\"Solve\": {\"inst")
        .expect("write partial line");
    let stalled_at = Instant::now();
    loris
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set client read timeout");
    let mut buf = [0u8; 16];
    let n = loris.get_mut().read(&mut buf).expect("loris read");
    let reaped_after = stalled_at.elapsed();
    assert_eq!(n, 0, "server must close the timed-out loris connection");
    assert!(
        reaped_after < Duration::from_secs(1),
        "reap took {reaped_after:?} — the sweep slept a full tick past the 50 ms timeout"
    );
}

#[test]
fn register_and_epoch_requests_are_served_by_the_frontend() {
    let server = TestServer::start(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        quick_opts(),
    );
    let mut conn = server.connect();
    let inst = instance(1);

    // Id-less requests travel the ordered stream: Register → Solve →
    // Epoch → Solve observes the advance exactly between the solves.
    let register = serde_json::to_string(&WireRequest::Register(krsp_service::RegisterRequest {
        graph: inst.graph.clone(),
    }))
    .expect("register serializes");
    send_line(&mut conn, &register);
    let reply = read_reply(&mut conn);
    let topo = match serde_json::from_str::<WireResponse>(&reply) {
        Ok(WireResponse::Registered(r)) => {
            assert_eq!(r.epoch, 0);
            r.topo
        }
        other => panic!("expected Registered, got {other:?}"),
    };

    send_line(&mut conn, &solve_line(&inst));
    assert!(read_reply(&mut conn).starts_with("{\"Solved\""));

    let advance = serde_json::to_string(&WireRequest::Epoch(krsp_service::EpochRequest {
        topo,
        changes: vec![krsp_service::WireChange {
            edge: 0,
            cost: 1,
            delay: 5,
        }],
    }))
    .expect("epoch serializes");
    send_line(&mut conn, &advance);
    match serde_json::from_str::<WireResponse>(&read_reply(&mut conn)) {
        Ok(WireResponse::Epoch(e)) => {
            assert_eq!(e.epoch, 1);
            assert_eq!(e.retained + e.evicted, 1, "the solve's entry is tracked");
        }
        other => panic!("expected Epoch, got {other:?}"),
    }

    send_line(&mut conn, &solve_line(&inst));
    assert!(read_reply(&mut conn).starts_with("{\"Solved\""));
}
