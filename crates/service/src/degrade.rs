//! Deadline-aware degradation ladder.
//!
//! A provisioning request carries a latency deadline. The full solver (the
//! `Ĉ`-bisected Algorithm 1) is the best answer but the slowest; when the
//! remaining budget cannot pay for it, the service walks down a ladder of
//! progressively cheaper algorithms, each with an explicitly advertised
//! (cost, delay) guarantee, so a response is *always* produced and its
//! quality is *always* stated:
//!
//! | rung | algorithm | cost factor | delay factor |
//! |------|-----------|-------------|--------------|
//! | [`Rung::Full`] | Algorithm 1 + `Ĉ` bisection | 2 | 1 |
//! | [`Rung::SingleProbe`] | Algorithm 1, one probe at `Ĉ = UB` | — | 1 |
//! | [`Rung::LpRounding`] | phase-1 LP rounding alone (Lemma 5) | 2 | 2 |
//! | [`Rung::MinDelay`] | min-delay disjoint paths | — | 1 |
//!
//! (Cost factors are relative to `C_OPT`; delay factors to the budget `D`.
//! "—" means feasibility only.) Rung choice is an admission decision: each
//! rung has a per-unit time estimate and is attempted only if the remaining
//! deadline covers it; [`Rung::MinDelay`] is always attempted as the last
//! resort. A rung that *fails* (stalls, iteration limit) falls through to
//! the next; genuine infeasibility short-circuits.
//!
//! ## Kernel assignment
//!
//! Each rung is additionally assigned an RSP-kernel backend
//! ([`KernelKind`], DESIGN.md §4.16) through a [`KernelLadder`]. The kernel
//! is consulted wherever a rung solves a restricted-shortest-path
//! subproblem — today that is the `k = 1` fast path of the
//! [`Rung::Full`]/[`Rung::SingleProbe`] rungs, which answer single-path
//! instances through the configured `(1+ε)` kernel at ε = 1 (certifying the
//! same `cost ≤ 2·C_OPT`, `delay ≤ D` the Full rung advertises) instead of
//! spinning up the k-path cycle-cancellation machinery. Rungs whose
//! algorithms never touch the RSP subproblem ([`Rung::LpRounding`],
//! [`Rung::MinDelay`]) carry their assignment for observability only; the
//! answering rung's kernel is reported on every response either way.

use krsp::{
    baselines, rsp_kernel, solve_warm_with, solve_with, CancelToken, Config, DpScratch, Instance,
    KernelKind, SearchScratch, Solution, SolveError,
};
use krsp_graph::EdgeSet;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The ladder rungs, best first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rung {
    /// Algorithm 1 with the full `Ĉ` bisection: the paper's `(1, 2)`.
    Full,
    /// Algorithm 1 with a single probe at `Ĉ = UB`: delay-feasible, cost
    /// factor not certified.
    SingleProbe,
    /// Phase-1 LP rounding alone: the `(2, 2)` of Lemma 5.
    LpRounding,
    /// Minimum-delay disjoint paths: feasibility fallback.
    MinDelay,
}

/// What a rung promises about its answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Guarantee {
    /// Certified `cost ≤ factor · C_OPT`, when the rung certifies one.
    pub cost_factor: Option<u32>,
    /// Certified `delay ≤ factor · D`.
    pub delay_factor: u32,
}

impl Rung {
    /// All rungs, best first.
    pub const LADDER: [Rung; 4] = [
        Rung::Full,
        Rung::SingleProbe,
        Rung::LpRounding,
        Rung::MinDelay,
    ];

    /// Ladder position, 0 = best.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Rung::Full => 0,
            Rung::SingleProbe => 1,
            Rung::LpRounding => 2,
            Rung::MinDelay => 3,
        }
    }

    /// The advertised approximation guarantee.
    #[must_use]
    pub fn guarantee(self) -> Guarantee {
        match self {
            Rung::Full => Guarantee {
                cost_factor: Some(2),
                delay_factor: 1,
            },
            Rung::SingleProbe => Guarantee {
                cost_factor: None,
                delay_factor: 1,
            },
            Rung::LpRounding => Guarantee {
                cost_factor: Some(2),
                delay_factor: 2,
            },
            Rung::MinDelay => Guarantee {
                cost_factor: None,
                delay_factor: 1,
            },
        }
    }
}

impl std::fmt::Display for Guarantee {
    /// `(cost, delay)` factor pair, `-` when the cost is uncertified:
    /// `(2,1)`, `(-,1)`, `(2,2)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cost_factor {
            Some(c) => write!(f, "({c},{})", self.delay_factor),
            None => write!(f, "(-,{})", self.delay_factor),
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rung::Full => "full",
            Rung::SingleProbe => "single_probe",
            Rung::LpRounding => "lp_rounding",
            Rung::MinDelay => "min_delay",
        };
        f.write_str(s)
    }
}

/// Admission thresholds for the ladder: estimated microseconds per work
/// unit (`m·k + n`) that a rung must fit inside the remaining deadline to
/// be attempted. [`Rung::MinDelay`] has no threshold — it always runs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LadderPolicy {
    /// Estimate for [`Rung::Full`].
    pub full_us_per_unit: u64,
    /// Estimate for [`Rung::SingleProbe`].
    pub probe_us_per_unit: u64,
    /// Estimate for [`Rung::LpRounding`].
    pub lp_us_per_unit: u64,
}

impl Default for LadderPolicy {
    fn default() -> Self {
        // Calibrated loosely against the krsp-gen families on one core;
        // deliberately pessimistic so a rung that is admitted usually
        // finishes inside the budget.
        LadderPolicy {
            full_us_per_unit: 60,
            probe_us_per_unit: 20,
            lp_us_per_unit: 8,
        }
    }
}

impl LadderPolicy {
    /// The default (single-threaded) calibration rescaled for a solver
    /// `width` threads wide. The dominant cost of the [`Rung::Full`] and
    /// [`Rung::SingleProbe`] rungs — the bicameral per-seed scan — runs on
    /// the rayon pool, so those estimates shrink with width; the
    /// [`Rung::LpRounding`] simplex is sequential and keeps its estimate.
    /// A conservative half-efficiency model (`width` threads count as
    /// `(width + 1) / 2`) absorbs the serial passes and pool overhead, so
    /// admission stays pessimistic rather than optimistic.
    #[must_use]
    pub fn for_width(width: usize) -> Self {
        let effective = (width.max(1) as u64).div_ceil(2);
        let base = LadderPolicy::default();
        LadderPolicy {
            full_us_per_unit: (base.full_us_per_unit / effective).max(1),
            probe_us_per_unit: (base.probe_us_per_unit / effective).max(1),
            lp_us_per_unit: base.lp_us_per_unit,
        }
    }

    /// Estimated wall time for `rung` on `inst`; `None` means "always
    /// admitted".
    #[must_use]
    pub fn estimate(&self, rung: Rung, inst: &Instance) -> Option<Duration> {
        let units = (inst.m() * inst.k + inst.n()) as u64;
        let per_unit = match rung {
            Rung::Full => self.full_us_per_unit,
            Rung::SingleProbe => self.probe_us_per_unit,
            Rung::LpRounding => self.lp_us_per_unit,
            Rung::MinDelay => return None,
        };
        Some(Duration::from_micros(per_unit.saturating_mul(units)))
    }

    /// Highest rung whose estimate fits in `remaining`.
    #[must_use]
    pub fn admit(&self, inst: &Instance, remaining: Duration) -> Rung {
        for rung in Rung::LADDER {
            match self.estimate(rung, inst) {
                None => return rung,
                Some(est) if est <= remaining => return rung,
                Some(_) => {}
            }
        }
        Rung::MinDelay
    }
}

/// Per-rung RSP-kernel assignment (module docs, "Kernel assignment").
///
/// Indexed by [`Rung::index`]; defaults to [`KernelKind::Classic`]
/// everywhere, which reproduces the pre-trait service behavior exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelLadder([KernelKind; Rung::LADDER.len()]);

impl Default for KernelLadder {
    fn default() -> Self {
        KernelLadder::uniform(KernelKind::Classic)
    }
}

impl KernelLadder {
    /// The same kernel on every rung (what `--kernel` and the per-request
    /// wire override select).
    #[must_use]
    pub fn uniform(kind: KernelKind) -> Self {
        KernelLadder([kind; Rung::LADDER.len()])
    }

    /// The kernel assigned to `rung`.
    #[must_use]
    pub fn for_rung(&self, rung: Rung) -> KernelKind {
        self.0[rung.index()]
    }

    /// Reassigns one rung's kernel.
    pub fn set(&mut self, rung: Rung, kind: KernelKind) {
        self.0[rung.index()] = kind;
    }
}

/// A ladder answer: the solution plus which rung produced it.
///
/// Serializable so the disk cache tier can persist answers across daemon
/// restarts (DESIGN.md §4.17).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Degraded {
    /// The solution.
    pub solution: Solution,
    /// The rung that produced it.
    pub rung: Rung,
    /// [`Rung::guarantee`] of that rung, recorded at solve time.
    pub guarantee: Guarantee,
    /// The RSP kernel assigned to the answering rung.
    pub kernel: KernelKind,
    /// Whether a previous-epoch seed participated in the answering solve
    /// (see [`krsp::solve_warm_with`]).
    pub warm: bool,
}

/// Why the ladder produced no solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LadderError {
    /// Fewer than `k` disjoint paths exist, or the delay budget is
    /// unsatisfiable even by the min-delay routing.
    Infeasible,
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("instance is infeasible at every rung")
    }
}

impl std::error::Error for LadderError {}

/// Runs the ladder: starts at the highest rung `policy` admits for
/// `remaining`, falls through on rung failure, and reports the rung that
/// answered. `cfg` seeds the solver configuration for the top two rungs.
pub fn solve_degraded(
    inst: &Instance,
    cfg: &Config,
    remaining: Duration,
    policy: &LadderPolicy,
) -> Result<Degraded, LadderError> {
    solve_degraded_with(
        inst,
        cfg,
        remaining,
        policy,
        &KernelLadder::default(),
        &CancelToken::never(),
    )
}

/// [`solve_degraded`] with a cooperative [`CancelToken`] threaded into the
/// solver kernels. A token that trips mid-rung stops that rung's DP/search
/// loops; the failed rung falls through like any other rung failure, and
/// rungs above [`Rung::MinDelay`] are skipped entirely once the token is
/// cancelled. [`Rung::MinDelay`] always runs to completion (it is the
/// always-answer contract), so a cancelled solve still returns a *complete*
/// path system from a lower rung — never a partial one.
pub fn solve_degraded_with(
    inst: &Instance,
    cfg: &Config,
    remaining: Duration,
    policy: &LadderPolicy,
    kernels: &KernelLadder,
    cancel: &CancelToken,
) -> Result<Degraded, LadderError> {
    solve_degraded_seeded(inst, cfg, remaining, policy, kernels, cancel, None)
}

/// [`solve_degraded_with`] with an optional warm-start seed: a previous
/// topology epoch's solution edge set, threaded into the solver rungs
/// ([`Rung::Full`] / [`Rung::SingleProbe`]) through [`krsp::solve_warm_with`].
/// The seed is re-verified there against the current weights, so a stale or
/// invalid seed degrades to the cold path bit-identically; rungs that never
/// run Algorithm 1 ignore it.
#[allow(clippy::too_many_arguments)]
pub fn solve_degraded_seeded(
    inst: &Instance,
    cfg: &Config,
    remaining: Duration,
    policy: &LadderPolicy,
    kernels: &KernelLadder,
    cancel: &CancelToken,
    seed: Option<&EdgeSet>,
) -> Result<Degraded, LadderError> {
    let start = policy.admit(inst, remaining);
    // One cycle-search scratch for every solver rung the ladder attempts.
    let mut scratch = SearchScratch::new();
    scratch.set_cancel(cancel.clone());
    for rung in Rung::LADDER.into_iter().skip(start.index()) {
        if rung != Rung::MinDelay && cancel.is_cancelled() {
            continue;
        }
        let kernel = kernels.for_rung(rung);
        match attempt(inst, cfg, rung, kernel, &mut scratch, cancel, seed) {
            Attempt::Solved(solution, warm) => {
                return Ok(Degraded {
                    solution,
                    rung,
                    guarantee: rung.guarantee(),
                    kernel,
                    warm,
                })
            }
            Attempt::Infeasible => return Err(LadderError::Infeasible),
            Attempt::RungFailed => {}
        }
    }
    Err(LadderError::Infeasible)
}

enum Attempt {
    Solved(Solution, bool),
    Infeasible,
    RungFailed,
}

#[allow(clippy::too_many_arguments)]
fn attempt(
    inst: &Instance,
    cfg: &Config,
    rung: Rung,
    kernel: KernelKind,
    scratch: &mut SearchScratch,
    cancel: &CancelToken,
    seed: Option<&EdgeSet>,
) -> Attempt {
    match rung {
        // k = 1 *is* the restricted-shortest-path subproblem: answer it
        // through the rung's assigned kernel at ε = 1 (cost ≤ 2·OPT, delay
        // ≤ D — exactly the Full rung's advertised guarantee) instead of
        // the k-path cycle-cancellation machinery.
        Rung::Full | Rung::SingleProbe if inst.k == 1 => {
            let mut dp = DpScratch::new();
            dp.set_cancel(cancel.clone());
            let solved = rsp_kernel(kernel)
                .solve_with(&inst.graph, inst.s, inst.t, inst.delay_bound, 1, 1, &mut dp)
                .expect("1/1 is a valid epsilon");
            match solved {
                Some(p) => {
                    match Solution::from_edge_set(inst, EdgeSet::from_edges(inst.m(), &p.edges)) {
                        Some(sol) => Attempt::Solved(sol, false),
                        None => Attempt::RungFailed,
                    }
                }
                // A cancelled kernel proved nothing about feasibility.
                None if cancel.is_cancelled() => Attempt::RungFailed,
                None => Attempt::Infeasible,
            }
        }
        Rung::Full | Rung::SingleProbe => {
            let cfg = Config {
                single_probe: rung == Rung::SingleProbe,
                ..*cfg
            };
            let solved = match seed {
                Some(seed) => solve_warm_with(inst, &cfg, scratch, seed),
                None => solve_with(inst, &cfg, scratch),
            };
            match solved {
                Ok(s) => Attempt::Solved(s.solution, s.stats.warm_start),
                // A cancelled rung proved nothing about feasibility — fall
                // through so MinDelay can still answer.
                Err(SolveError::IterationLimit | SolveError::Cancelled) => Attempt::RungFailed,
                Err(_) => Attempt::Infeasible,
            }
        }
        Rung::LpRounding => match baselines::lp_rounding_only(inst) {
            Some(sol) => Attempt::Solved(sol, false),
            None => Attempt::RungFailed,
        },
        Rung::MinDelay => match baselines::min_delay(inst) {
            Some(sol) if sol.delay <= inst.delay_bound => Attempt::Solved(sol, false),
            // The min-delay routing is the feasibility certificate: if even
            // it busts the budget (or no k disjoint paths exist), the
            // instance is infeasible outright.
            _ => Attempt::Infeasible,
        },
    }
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn tradeoff(d: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d).unwrap()
    }

    #[test]
    fn ladder_order_is_best_first() {
        let ranked: Vec<usize> = Rung::LADDER.iter().map(|r| r.index()).collect();
        assert_eq!(ranked, vec![0, 1, 2, 3]);
        assert_eq!(Rung::Full.guarantee().delay_factor, 1);
        assert_eq!(Rung::LpRounding.guarantee().cost_factor, Some(2));
    }

    #[test]
    fn generous_deadline_uses_full_rung() {
        let inst = tradeoff(14);
        let out = solve_degraded(
            &inst,
            &Config::default(),
            Duration::from_secs(60),
            &LadderPolicy::default(),
        )
        .unwrap();
        assert_eq!(out.rung, Rung::Full);
        assert_eq!(out.guarantee, Rung::Full.guarantee());
        assert!(out.solution.delay <= 14);
    }

    #[test]
    fn exhausted_deadline_degrades_to_min_delay() {
        let inst = tradeoff(14);
        let out = solve_degraded(
            &inst,
            &Config::default(),
            Duration::ZERO,
            &LadderPolicy::default(),
        )
        .unwrap();
        assert_eq!(out.rung, Rung::MinDelay);
        assert_eq!(
            out.guarantee,
            Guarantee {
                cost_factor: None,
                delay_factor: 1
            }
        );
        // The degraded answer is still delay-feasible.
        assert!(out.solution.delay <= 14);
    }

    #[test]
    fn admission_respects_rung_order() {
        let inst = tradeoff(14);
        let policy = LadderPolicy::default();
        // Budgets between consecutive estimates land on interior rungs.
        let full = policy.estimate(Rung::Full, &inst).unwrap();
        let probe = policy.estimate(Rung::SingleProbe, &inst).unwrap();
        let lp = policy.estimate(Rung::LpRounding, &inst).unwrap();
        assert!(lp < probe && probe < full);
        assert_eq!(policy.admit(&inst, full), Rung::Full);
        assert_eq!(policy.admit(&inst, probe), Rung::SingleProbe);
        assert_eq!(policy.admit(&inst, lp), Rung::LpRounding);
        assert_eq!(policy.admit(&inst, Duration::ZERO), Rung::MinDelay);
    }

    #[test]
    fn width_scaled_policy_shrinks_parallel_rungs_only() {
        let base = LadderPolicy::default();
        let w1 = LadderPolicy::for_width(1);
        assert_eq!(w1.full_us_per_unit, base.full_us_per_unit);
        assert_eq!(w1.probe_us_per_unit, base.probe_us_per_unit);
        assert_eq!(w1.lp_us_per_unit, base.lp_us_per_unit);
        let w8 = LadderPolicy::for_width(8);
        assert!(w8.full_us_per_unit < base.full_us_per_unit);
        assert!(w8.probe_us_per_unit < base.probe_us_per_unit);
        assert_eq!(w8.lp_us_per_unit, base.lp_us_per_unit);
        // A deadline that only covers the width-8 Full estimate admits the
        // Full rung on the wide pool but not under the 1-thread policy.
        let inst = tradeoff(14);
        let tight = w8.estimate(Rung::Full, &inst).unwrap();
        assert_eq!(w8.admit(&inst, tight), Rung::Full);
        assert!(base.estimate(Rung::Full, &inst).unwrap() > tight);
        assert_ne!(base.admit(&inst, tight), Rung::Full);
    }

    #[test]
    fn cancelled_token_degrades_to_min_delay() {
        let inst = tradeoff(14);
        let cancel = CancelToken::cancellable();
        cancel.cancel();
        // A generous deadline admits the Full rung, but the tripped token
        // skips every cancellable rung; MinDelay still answers in full.
        let out = solve_degraded_with(
            &inst,
            &Config::default(),
            Duration::from_secs(60),
            &LadderPolicy::default(),
            &KernelLadder::default(),
            &cancel,
        )
        .unwrap();
        assert_eq!(out.rung, Rung::MinDelay);
        assert_eq!(out.guarantee, Rung::MinDelay.guarantee());
        assert!(out.solution.delay <= 14);
    }

    #[test]
    fn kernel_ladder_assigns_per_rung() {
        let mut kernels = KernelLadder::default();
        for rung in Rung::LADDER {
            assert_eq!(kernels.for_rung(rung), KernelKind::Classic);
        }
        kernels.set(Rung::SingleProbe, KernelKind::Interval);
        assert_eq!(kernels.for_rung(Rung::SingleProbe), KernelKind::Interval);
        assert_eq!(kernels.for_rung(Rung::Full), KernelKind::Classic);
        let uniform = KernelLadder::uniform(KernelKind::Interval);
        for rung in Rung::LADDER {
            assert_eq!(uniform.for_rung(rung), KernelKind::Interval);
        }
    }

    #[test]
    fn k1_instances_answer_through_the_assigned_kernel() {
        // k = 1 over the tradeoff graph: OPT = 4 (the (2,6)+(2,6) legs)
        // under budget 12; both kernels certify cost ≤ 2·OPT, delay ≤ D,
        // and the answer reports the rung's kernel.
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
            ],
        );
        let inst = Instance::new(g, NodeId(0), NodeId(5), 1, 12).unwrap();
        for kind in [KernelKind::Classic, KernelKind::Interval] {
            let out = solve_degraded_with(
                &inst,
                &Config::default(),
                Duration::from_secs(60),
                &LadderPolicy::default(),
                &KernelLadder::uniform(kind),
                &CancelToken::never(),
            )
            .unwrap();
            assert_eq!(out.rung, Rung::Full, "{kind}");
            assert_eq!(out.kernel, kind);
            assert!(out.solution.delay <= 12);
            assert!(out.solution.cost <= 8, "cost {} > 2·OPT", out.solution.cost);
        }
        // Infeasible k = 1 budget short-circuits at the kernel.
        let tight = Instance::new(inst.graph.clone(), NodeId(0), NodeId(5), 1, 1).unwrap();
        let err = solve_degraded(
            &tight,
            &Config::default(),
            Duration::from_secs(60),
            &LadderPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err, LadderError::Infeasible);
    }

    #[test]
    fn infeasible_instances_fail_at_every_rung() {
        let inst = tradeoff(3); // below the minimum achievable delay
        for remaining in [Duration::from_secs(10), Duration::ZERO] {
            let err = solve_degraded(
                &inst,
                &Config::default(),
                remaining,
                &LadderPolicy::default(),
            )
            .unwrap_err();
            assert_eq!(err, LadderError::Infeasible);
        }
    }
}
