//! Negative cache for instances that crash the solver.
//!
//! A deterministic solver panics deterministically: if one request's
//! instance trips a bug, every retry of the same instance trips it again,
//! and a retrying client can pin workers in a crash loop. The quarantine
//! records panic *strikes* per canonical key; once a key accumulates
//! [`Quarantine`]'s threshold it fast-fails with
//! [`Rejection::Quarantined`](crate::Rejection::Quarantined) — no solver
//! run, no worker touched — until a TTL elapses and the key is given
//! another chance (the solver may have been reconfigured meanwhile).
//!
//! The table is bounded: when full, the entry closest to expiry is evicted
//! to admit a new striker, so a hostile key-stream cannot grow it without
//! limit.

use crate::hash::CacheKey;
use crate::sync_util::{lock_recover, saturating_deadline};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
struct Entry {
    strikes: u32,
    /// When the entry leaves the table (strike window and quarantine TTL
    /// share the same clock: each strike re-arms it).
    expires: Instant,
    /// True once strikes reached the threshold: the key fast-fails.
    active: bool,
}

/// Panic-strike table keyed by canonical instance hash.
pub struct Quarantine {
    inner: Mutex<HashMap<CacheKey, Entry>>,
    threshold: u32,
    ttl: Duration,
    capacity: usize,
}

impl Quarantine {
    /// A table quarantining keys after `threshold` strikes for `ttl`,
    /// tracking at most `capacity` keys. `threshold == 0` disables the
    /// quarantine entirely (strikes are not recorded, nothing fast-fails).
    #[must_use]
    pub fn new(threshold: u32, ttl: Duration, capacity: usize) -> Self {
        Quarantine {
            inner: Mutex::new(HashMap::new()),
            threshold,
            ttl,
            capacity: capacity.max(1),
        }
    }

    /// Records one solver panic against `key`. Returns `true` when this
    /// strike activated the quarantine for the key (the transition, not the
    /// steady state — callers use it to count quarantined keys once).
    pub fn strike(&self, key: CacheKey) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let now = Instant::now();
        let mut map = lock_recover(&self.inner);
        map.retain(|_, e| e.expires > now);
        if map.len() >= self.capacity && !map.contains_key(&key) {
            // Evict the entry closest to expiry rather than refuse the new
            // striker: recent offenders matter more than nearly-forgiven.
            if let Some(victim) = map.iter().min_by_key(|(_, e)| e.expires).map(|(k, _)| *k) {
                map.remove(&victim);
            }
        }
        // A `Duration::MAX`-style TTL ("quarantine forever") must clamp,
        // not panic the striking worker mid-bookkeeping.
        let expires = saturating_deadline(now, self.ttl);
        let entry = map.entry(key).or_insert(Entry {
            strikes: 0,
            expires,
            active: false,
        });
        entry.strikes = entry.strikes.saturating_add(1);
        entry.expires = expires;
        let newly_active = !entry.active && entry.strikes >= self.threshold;
        entry.active |= newly_active;
        newly_active
    }

    /// Whether `key` is currently quarantined (active and unexpired).
    #[must_use]
    pub fn is_quarantined(&self, key: CacheKey) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let now = Instant::now();
        let mut map = lock_recover(&self.inner);
        match map.get(&key) {
            Some(e) if e.expires <= now => {
                map.remove(&key);
                false
            }
            Some(e) => e.active,
            None => false,
        }
    }

    /// Number of keys currently tracked (striking or quarantined).
    #[must_use]
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// True when no keys are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::hash::CacheKey;

    #[test]
    fn activates_at_threshold_and_expires() {
        let q = Quarantine::new(2, Duration::from_millis(40), 8);
        assert!(!q.is_quarantined(CacheKey(1)));
        assert!(!q.strike(CacheKey(1)), "first strike is below threshold");
        assert!(!q.is_quarantined(CacheKey(1)));
        assert!(q.strike(CacheKey(1)), "second strike activates");
        assert!(q.is_quarantined(CacheKey(1)));
        assert!(!q.strike(CacheKey(1)), "already active: not a transition");
        std::thread::sleep(Duration::from_millis(60));
        assert!(!q.is_quarantined(CacheKey(1)), "TTL elapsed");
        // After expiry the key starts a fresh strike count.
        assert!(!q.strike(CacheKey(1)));
        assert!(!q.is_quarantined(CacheKey(1)));
    }

    #[test]
    fn zero_threshold_disables() {
        let q = Quarantine::new(0, Duration::from_secs(60), 8);
        for _ in 0..10 {
            assert!(!q.strike(CacheKey(9)));
        }
        assert!(!q.is_quarantined(CacheKey(9)));
        assert!(q.is_empty());
    }

    #[test]
    fn unbounded_ttl_clamps_instead_of_panicking() {
        let q = Quarantine::new(1, Duration::MAX, 8);
        assert!(q.strike(CacheKey(4)), "strike must not panic on TTL math");
        assert!(q.is_quarantined(CacheKey(4)));
    }

    #[test]
    fn capacity_evicts_oldest_expiring() {
        let q = Quarantine::new(1, Duration::from_secs(60), 2);
        assert!(q.strike(CacheKey(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(q.strike(CacheKey(2)));
        std::thread::sleep(Duration::from_millis(5));
        // Key 3 needs a slot: key 1 (closest to expiry) is evicted.
        assert!(q.strike(CacheKey(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_quarantined(CacheKey(1)));
        assert!(q.is_quarantined(CacheKey(2)));
        assert!(q.is_quarantined(CacheKey(3)));
    }
}
