//! LRU solution cache keyed by [`CacheKey`](crate::hash::CacheKey).
//!
//! Provisioning traffic is heavily repetitive — failure storms re-request
//! the same flows, controllers retry idempotently — so the service memoizes
//! full ladder answers. The canonical key (see [`crate::hash`]) makes the
//! cache insensitive to edge enumeration order; hit/miss/eviction counters
//! feed [`MetricsSnapshot`](crate::metrics::MetricsSnapshot).
//!
//! Two layers live here:
//!
//! * [`SolutionCache`] — the single-threaded LRU map (one shard's worth).
//! * [`ShardedCache`] — N independent `Mutex<SolutionCache>` shards, the
//!   shard chosen from the canonical 128-bit key. Concurrent clients
//!   touching different keys almost never contend on the same lock, and
//!   because the canonical hash assigns every key to exactly one shard,
//!   per-shard LRU is exact LRU *within the key population of that shard*
//!   — recency of a key is only ever compared against keys it actually
//!   competes with for slots.

use crate::degrade::Degraded;
use crate::hash::CacheKey;
use crate::sync_util::lock_recover;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;

/// Counters describing cache behavior since construction. `hits`, `misses`,
/// `evictions`, and `invalidations` are monotone; `entries` and `bytes` are
/// live gauges maintained incrementally on every insert/evict/remove (the
/// drift-free bookkeeping is property-tested against a from-scratch
/// recount).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries removed explicitly (quarantine purges, epoch invalidation).
    pub invalidations: u64,
    /// Live entry count.
    pub entries: u64,
    /// Estimated live bytes across entries.
    pub bytes: u64,
}

impl CacheStats {
    /// Component-wise sum, for aggregating shards (gauges sum to the
    /// aggregate gauge).
    #[must_use]
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            entries: self.entries + other.entries,
            bytes: self.bytes + other.bytes,
        }
    }
}

struct Entry {
    value: Degraded,
    last_used: u64,
}

/// Estimated resident size of one cached answer: the struct itself plus the
/// solution's edge-set bitmap (the only heap payload that scales with the
/// instance).
fn entry_weight(d: &Degraded) -> u64 {
    let bitmap = d.solution.edges.capacity().div_ceil(64) * 8;
    (std::mem::size_of::<Entry>() + bitmap) as u64
}

/// A least-recently-used map from canonical instance keys to ladder
/// answers. Zero capacity disables caching (every lookup is a miss).
pub struct SolutionCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl SolutionCache {
    /// A cache holding at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Degraded> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn put(&mut self, key: CacheKey, value: Degraded) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                if let Some(old) = self.map.remove(&oldest) {
                    self.stats.entries -= 1;
                    self.stats.bytes -= entry_weight(&old.value);
                }
                self.stats.evictions += 1;
            }
        }
        let weight = entry_weight(&value);
        if let Some(prev) = self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        ) {
            // Refresh of an existing key: swap the old weight out first so
            // the byte gauge moves exactly once per stored copy.
            self.stats.bytes -= entry_weight(&prev.value);
        } else {
            self.stats.entries += 1;
        }
        self.stats.bytes += weight;
    }

    /// Removes `key` outright (quarantine purge, epoch invalidation),
    /// decrementing the entry/byte gauges exactly once and counting one
    /// invalidation. Returns the evicted answer, `None` if the key was
    /// absent (counters untouched).
    pub fn remove(&mut self, key: CacheKey) -> Option<Degraded> {
        let value = self.detach(key)?;
        self.stats.invalidations += 1;
        Some(value)
    }

    /// Removes `key` *without* counting an invalidation — the sweep's
    /// rekey path, where the entry immediately reinserts under its new key
    /// and keeps serving. The entry/byte gauges still decrement exactly
    /// once.
    fn detach(&mut self, key: CacheKey) -> Option<Degraded> {
        let entry = self.map.remove(&key)?;
        self.stats.entries -= 1;
        self.stats.bytes -= entry_weight(&entry.value);
        Some(entry.value)
    }

    /// From-scratch `(entries, bytes)` recount over the live map — the
    /// ground truth the incremental gauges are property-tested against.
    #[must_use]
    pub fn recount(&self) -> (u64, u64) {
        (
            self.map.len() as u64,
            self.map.values().map(|e| entry_weight(&e.value)).sum(),
        )
    }
}

/// Per-entry verdict of a cache sweep (see [`ShardedCache::sweep`]).
pub enum Sweep {
    /// Leave the entry in place.
    Keep,
    /// Remove the entry (counted as an invalidation).
    Evict,
    /// Move the entry to a new key (epoch re-scoping); recency is reset.
    /// The entry keeps serving, so this is *not* counted as an
    /// invalidation.
    Rekey(CacheKey),
}

/// An N-way sharded [`SolutionCache`]: each shard is an independent LRU
/// behind its own `Mutex`, and a key's shard is a pure function of its
/// canonical 128-bit hash — so a hot single-lock cache becomes N mostly
/// uncontended locks without changing per-key semantics. All methods take
/// `&self`; the type is `Sync` and shared across worker and client threads.
pub struct ShardedCache {
    shards: Vec<Mutex<SolutionCache>>,
}

impl ShardedCache {
    /// A cache of `shards` shards (clamped to ≥ 1) holding at most
    /// `capacity` entries in total; each shard gets an equal slice
    /// (rounded up, so total capacity is never below `capacity`). Zero
    /// capacity disables caching entirely.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(SolutionCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `key`. Uses the upper half of the 128-bit
    /// canonical digest (both halves are independent FNV streams, so any
    /// fixed slice is uniformly mixed).
    #[must_use]
    pub fn shard_of(&self, key: CacheKey) -> usize {
        ((key.0 >> 64) % self.shards.len() as u128) as usize
    }

    /// Looks up `key` in its shard, refreshing recency on a hit.
    pub fn get(&self, key: CacheKey) -> Option<Degraded> {
        // Chaos-testing hook: `cache.get=err` forces a miss, exercising the
        // solve path even for cached keys.
        krsp_failpoint::fail_point!("cache.get", |_msg| None);
        lock_recover(&self.shards[self.shard_of(key)]).get(key)
    }

    /// Inserts (or refreshes) `key` in its shard, evicting that shard's
    /// LRU entry under capacity pressure.
    pub fn put(&self, key: CacheKey, value: Degraded) {
        lock_recover(&self.shards[self.shard_of(key)]).put(key, value);
    }

    /// Removes `key` from its shard (quarantine purge, targeted
    /// invalidation); that shard's entry/byte gauges decrement exactly once.
    pub fn remove(&self, key: CacheKey) -> Option<Degraded> {
        lock_recover(&self.shards[self.shard_of(key)]).remove(key)
    }

    /// Full-cache sweep for epoch bumps: `decide` sees every live entry and
    /// returns its fate — keep it, evict it, or move it to a new key (the
    /// epoch-rescoped digest). Rekeyed entries are reinserted *after* all
    /// shards have been drained (their new key may route to a different
    /// shard), so the sweep never deadlocks on two shard locks at once.
    /// Returns `(kept, evicted, rekeyed)` counts.
    pub fn sweep(&self, mut decide: impl FnMut(&CacheKey, &Degraded) -> Sweep) -> (u64, u64, u64) {
        let (mut kept, mut evicted) = (0u64, 0u64);
        let mut rekeyed: Vec<(CacheKey, Degraded)> = Vec::new();
        for shard in &self.shards {
            let mut s = lock_recover(shard);
            let fates: Vec<(CacheKey, Sweep)> = s
                .map
                .iter()
                .map(|(k, e)| (*k, decide(k, &e.value)))
                .collect();
            for (k, fate) in fates {
                match fate {
                    Sweep::Keep => kept += 1,
                    Sweep::Evict => {
                        s.remove(k);
                        evicted += 1;
                    }
                    Sweep::Rekey(nk) => {
                        if let Some(v) = s.detach(k) {
                            rekeyed.push((nk, v));
                        }
                    }
                }
            }
        }
        let moved = rekeyed.len() as u64;
        for (nk, v) in rekeyed {
            self.put(nk, v);
        }
        (kept, evicted, moved)
    }

    /// From-scratch `(entries, bytes)` recount across shards.
    #[must_use]
    pub fn recount(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(e, b), s| {
            let (se, sb) = lock_recover(s).recount();
            (e + se, b + sb)
        })
    }

    /// Total entries across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).len()).sum()
    }

    /// True when every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters over all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), CacheStats::merge)
    }

    /// Per-shard counters, indexed by shard.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| lock_recover(s).stats())
            .collect()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::degrade::Rung;
    use krsp_graph::EdgeSet;

    fn dummy(cost: i64) -> Degraded {
        dummy_sized(cost, 0)
    }

    /// A dummy whose edge-set capacity (and hence byte weight) varies.
    fn dummy_sized(cost: i64, cap: usize) -> Degraded {
        Degraded {
            solution: krsp::Solution {
                edges: EdgeSet::with_capacity(cap),
                cost,
                delay: 0,
                lower_bound: None,
            },
            rung: Rung::MinDelay,
            guarantee: Rung::MinDelay.guarantee(),
            kernel: krsp::KernelKind::Classic,
            warm: false,
        }
    }

    fn key(v: u128) -> CacheKey {
        CacheKey(v)
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let mut c = SolutionCache::new(2);
        assert!(c.get(key(1)).is_none());
        c.put(key(1), dummy(10));
        c.put(key(2), dummy(20));
        assert_eq!(c.get(key(1)).unwrap().solution.cost, 10);
        c.put(key(3), dummy(30)); // evicts key 2 (LRU)
        assert!(c.get(key(2)).is_none());
        assert_eq!(c.get(key(1)).unwrap().solution.cost, 10);
        assert_eq!(c.get(key(3)).unwrap().solution.cost, 30);
        let s = c.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        let mut c = SolutionCache::new(2);
        c.put(key(1), dummy(1));
        c.put(key(2), dummy(2));
        let _ = c.get(key(1)); // 1 is now hotter than 2
        c.put(key(3), dummy(3));
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(2)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = SolutionCache::new(0);
        c.put(key(1), dummy(1));
        assert!(c.get(key(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = SolutionCache::new(2);
        c.put(key(1), dummy(1));
        c.put(key(2), dummy(2));
        c.put(key(1), dummy(11)); // refresh, not a new entry
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(key(1)).unwrap().solution.cost, 11);
        assert!(c.get(key(2)).is_some());
    }

    /// Spread small integers over the full 128-bit key space so the shard
    /// choice (upper 64 bits) actually varies.
    fn spread(v: u64) -> CacheKey {
        let x = (u128::from(v) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834);
        CacheKey(x)
    }

    #[test]
    fn sharded_basics_and_shard_routing() {
        let c = ShardedCache::new(64, 8);
        assert_eq!(c.shard_count(), 8);
        assert!(c.is_empty());
        for v in 0..32u64 {
            c.put(spread(v), dummy(v as i64));
        }
        assert_eq!(c.len(), 32);
        for v in 0..32u64 {
            assert_eq!(c.get(spread(v)).unwrap().solution.cost, v as i64);
            // Routing is deterministic and in range.
            let s = c.shard_of(spread(v));
            assert!(s < 8);
            assert_eq!(s, c.shard_of(spread(v)));
        }
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (32, 0, 0));
        let per_shard = c.shard_stats();
        assert_eq!(per_shard.len(), 8);
        assert_eq!(
            per_shard
                .iter()
                .fold(CacheStats::default(), |a, &b| a.merge(b)),
            stats
        );
        // The keys actually landed on more than one shard.
        assert!(per_shard.iter().filter(|s| s.hits > 0).count() > 1);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let c = ShardedCache::new(8, 1);
        c.put(spread(1), dummy(5));
        // Poison the only shard's lock with a panic mid-hold.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = c.shards[0].lock().unwrap();
            panic!("poison the shard");
        }));
        assert!(caught.is_err());
        // The cache keeps serving: per-operation state is consistent.
        assert_eq!(c.get(spread(1)).unwrap().solution.cost, 5);
        c.put(spread(2), dummy(6));
        assert_eq!(c.len(), 2);
        assert!(c.stats().hits >= 1);
    }

    #[test]
    fn sharded_zero_capacity_disables_caching() {
        let c = ShardedCache::new(0, 4);
        c.put(spread(1), dummy(1));
        assert!(c.get(spread(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_capacity_bounds_total_size() {
        let c = ShardedCache::new(16, 4); // 4 slots per shard
        for v in 0..200u64 {
            c.put(spread(v), dummy(v as i64));
        }
        assert!(c.len() <= 16, "len = {}", c.len());
        assert_eq!(c.stats().evictions, 200 - c.len() as u64);
    }

    #[test]
    fn remove_decrements_gauges_exactly_once() {
        let mut c = SolutionCache::new(4);
        c.put(key(1), dummy_sized(1, 100));
        c.put(key(2), dummy_sized(2, 500));
        assert_eq!(c.stats().entries, 2);
        assert_eq!((c.stats().entries, c.stats().bytes), c.recount());
        let removed = c.remove(key(1)).unwrap();
        assert_eq!(removed.solution.cost, 1);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!((c.stats().entries, c.stats().bytes), c.recount());
        // Double-remove is a no-op on every counter.
        assert!(c.remove(key(1)).is_none());
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!((c.stats().entries, c.stats().bytes), c.recount());
    }

    #[test]
    fn refresh_and_eviction_keep_byte_gauge_exact() {
        let mut c = SolutionCache::new(2);
        c.put(key(1), dummy_sized(1, 1000));
        let big = c.stats().bytes;
        c.put(key(1), dummy_sized(1, 10)); // refresh with a smaller payload
        assert!(c.stats().bytes < big);
        assert_eq!((c.stats().entries, c.stats().bytes), c.recount());
        c.put(key(2), dummy_sized(2, 64));
        c.put(key(3), dummy_sized(3, 64)); // evicts LRU
        assert_eq!(c.stats().evictions, 1);
        assert_eq!((c.stats().entries, c.stats().bytes), c.recount());
    }

    #[test]
    fn sweep_keeps_evicts_and_rekeys() {
        let c = ShardedCache::new(64, 4);
        for v in 0..12u64 {
            c.put(spread(v), dummy_sized(v as i64, v as usize * 32));
        }
        // Evict odd costs, rekey cost 0 and 2, keep the rest.
        let (kept, evicted, rekeyed) = c.sweep(|k, d| {
            if d.solution.cost % 2 == 1 {
                Sweep::Evict
            } else if d.solution.cost <= 2 {
                Sweep::Rekey(CacheKey(k.0 ^ 0xdead_beef))
            } else {
                Sweep::Keep
            }
        });
        assert_eq!((kept, evicted, rekeyed), (4, 6, 2));
        assert_eq!(c.len(), 6);
        // Rekeyed entries answer at their new key, not the old one.
        assert!(c.get(spread(0)).is_none());
        assert_eq!(
            c.get(CacheKey(spread(0).0 ^ 0xdead_beef))
                .unwrap()
                .solution
                .cost,
            0
        );
        let agg = c.stats();
        let (entries, bytes) = c.recount();
        assert_eq!((agg.entries, agg.bytes), (entries, bytes));
        // Only the evictions are invalidations: a rekeyed entry keeps
        // serving, so moving it must not inflate the counter.
        assert_eq!(agg.invalidations, 6);
    }

    proptest::proptest! {
        /// Satellite 3: after any interleaving of inserts, targeted removes
        /// (the quarantine-purge path), and sweeps (the epoch-invalidation
        /// path), each shard's incremental entry/byte gauges must equal a
        /// from-scratch recount — i.e. every removal decrements exactly once
        /// and every refresh swaps weights exactly once.
        #[test]
        fn prop_gauges_match_recount_under_interleaving(
            ops in proptest::collection::vec((0u8..=3, 0u64..32, 0usize..512), 1..200),
            shards in 1usize..6,
        ) {
            let c = ShardedCache::new(16, shards);
            for (op, k, sz) in ops {
                match op {
                    0 => c.put(spread(k), dummy_sized(k as i64, sz)),
                    1 => { c.remove(spread(k)); }
                    2 => { c.get(spread(k)); }
                    _ => {
                        // Epoch-style sweep: evict small payloads, rekey the
                        // rest of the matching population.
                        c.sweep(|ck, d| {
                            if d.solution.edges.capacity() < sz / 2 {
                                Sweep::Evict
                            } else if ck.0 & 1 == u128::from(k) & 1 {
                                Sweep::Rekey(CacheKey(ck.0 ^ (u128::from(k) << 77)))
                            } else {
                                Sweep::Keep
                            }
                        });
                    }
                }
                // Per-shard gauge == per-shard recount, not just aggregate.
                for shard in &c.shards {
                    let s = lock_recover(shard);
                    let (entries, bytes) = s.recount();
                    proptest::prop_assert_eq!(s.stats().entries, entries);
                    proptest::prop_assert_eq!(s.stats().bytes, bytes);
                }
            }
        }

        /// With capacity ample enough that no shard ever evicts, a sharded
        /// cache is observationally identical to a 1-shard cache under any
        /// op sequence: same per-key answers, same aggregate counters.
        /// (Under eviction pressure the two legitimately differ — LRU age
        /// is tracked per shard — so ample capacity is the precise regime
        /// where equivalence must be exact.)
        #[test]
        fn prop_sharded_matches_single_shard(
            ops in proptest::collection::vec((0u8..=1, 0u64..24, 0i64..1000), 1..256),
            shards in 1usize..12,
        ) {
            let sharded = ShardedCache::new(24 * shards, shards);
            let single = ShardedCache::new(24, 1);
            for (op, k, v) in ops {
                let key = spread(k);
                if op == 0 {
                    let a = sharded.get(key).map(|d| d.solution.cost);
                    let b = single.get(key).map(|d| d.solution.cost);
                    proptest::prop_assert_eq!(a, b);
                } else {
                    sharded.put(key, dummy(v));
                    single.put(key, dummy(v));
                }
            }
            proptest::prop_assert_eq!(sharded.stats(), single.stats());
            proptest::prop_assert_eq!(sharded.len(), single.len());
        }
    }
}
