//! LRU solution cache keyed by [`CacheKey`](crate::hash::CacheKey).
//!
//! Provisioning traffic is heavily repetitive — failure storms re-request
//! the same flows, controllers retry idempotently — so the service memoizes
//! full ladder answers. The canonical key (see [`crate::hash`]) makes the
//! cache insensitive to edge enumeration order; hit/miss/eviction counters
//! feed [`MetricsSnapshot`](crate::metrics::MetricsSnapshot).

use crate::degrade::Degraded;
use crate::hash::CacheKey;
use std::collections::HashMap;

/// Monotone counters describing cache behavior since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

struct Entry {
    value: Degraded,
    last_used: u64,
}

/// A least-recently-used map from canonical instance keys to ladder
/// answers. Zero capacity disables caching (every lookup is a miss).
pub struct SolutionCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl SolutionCache {
    /// A cache holding at most `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Degraded> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn put(&mut self, key: CacheKey, value: Degraded) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::Rung;
    use krsp_graph::EdgeSet;

    fn dummy(cost: i64) -> Degraded {
        Degraded {
            solution: krsp::Solution {
                edges: EdgeSet::with_capacity(0),
                cost,
                delay: 0,
                lower_bound: None,
            },
            rung: Rung::MinDelay,
            guarantee: Rung::MinDelay.guarantee(),
        }
    }

    fn key(v: u128) -> CacheKey {
        CacheKey(v)
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let mut c = SolutionCache::new(2);
        assert!(c.get(key(1)).is_none());
        c.put(key(1), dummy(10));
        c.put(key(2), dummy(20));
        assert_eq!(c.get(key(1)).unwrap().solution.cost, 10);
        c.put(key(3), dummy(30)); // evicts key 2 (LRU)
        assert!(c.get(key(2)).is_none());
        assert_eq!(c.get(key(1)).unwrap().solution.cost, 10);
        assert_eq!(c.get(key(3)).unwrap().solution.cost, 30);
        let s = c.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        let mut c = SolutionCache::new(2);
        c.put(key(1), dummy(1));
        c.put(key(2), dummy(2));
        let _ = c.get(key(1)); // 1 is now hotter than 2
        c.put(key(3), dummy(3));
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(2)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = SolutionCache::new(0);
        c.put(key(1), dummy(1));
        assert!(c.get(key(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = SolutionCache::new(2);
        c.put(key(1), dummy(1));
        c.put(key(2), dummy(2));
        c.put(key(1), dummy(11)); // refresh, not a new entry
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(key(1)).unwrap().solution.cost, 11);
        assert!(c.get(key(2)).is_some());
    }
}
