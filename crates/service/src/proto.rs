//! Newline-delimited-JSON TCP frontend.
//!
//! One request per line, one response per line. The default server (see
//! [`serve_with_shutdown`]) is event-driven: a single reactor thread (the
//! vendored `krsp-reactor` epoll/poll loop) multiplexes every connection,
//! frames lines incrementally against [`MAX_LINE_BYTES`], and dispatches
//! solves to the service's worker pool, so thousands of mostly-idle
//! connections cost O(workers) threads — not one thread each. The wire
//! enums are externally tagged, so a solve request looks like
//!
//! ```json
//! {"Solve": {"instance": {...}, "deadline_ms": 250}}
//! ```
//!
//! A solve payload may additionally carry `"kernel": "classic"` or
//! `"kernel": "interval"` to override the service's RSP-kernel ladder
//! (DESIGN.md §4.16) for that request; absent or `null` uses the server's
//! configured default, and the answering kernel is echoed back in every
//! solved reply.
//!
//! `"Metrics"` (a bare string) fetches a
//! [`MetricsSnapshot`](crate::metrics::MetricsSnapshot), and `"Health"`
//! fetches a [`HealthReply`] (ready/draining/shedding plus width and cache
//! counters) cheap enough for load-balancer probing. Malformed lines get
//! an `"Error"` response carrying a machine-readable [`ErrorKind`]
//! (`"parse"`, `"oversize_line"`, `"shed"`, `"rate_limited"`, `"timeout"`,
//! `"solver_panic"`, `"internal"`) so clients can implement retry policy
//! without string matching; the connection stays up.
//!
//! ## Pipelining and request ids
//!
//! Because solves complete on worker threads, responses on one connection
//! come back **in completion order, not submission order**. A map-shaped
//! request may carry an `"id"` member — any JSON value, opaque to the
//! server — and every response to it echoes that id back verbatim as an
//! `"id"` member, so clients can pipeline many in-flight requests and
//! match the replies ([`encode_request_with_id`] /
//! [`decode_response_line`] implement the client side). Requests without
//! an id get the unchanged historical wire format.
//!
//! [`serve_with_shutdown`] is the graceful entry point: on shutdown it
//! stops accepting, flips the service into drain mode (see
//! [`Service::begin_shutdown`]), answers the in-flight work, and bounds
//! the whole farewell by a grace period. The previous thread-per-
//! connection server survives as [`serve_threaded_with_shutdown`] — the
//! A/B baseline and the fallback where no poll facility exists.

use crate::degrade::{Guarantee, Rung};
use crate::metrics::MetricsSnapshot;
use crate::service::{Rejection, Request, Response, Service};
use krsp::{Instance, KernelKind};
use serde::{Content, Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard cap on one request line. A line longer than this is rejected with
/// an [`WireResponse::Error`] and drained, instead of being buffered — an
/// unbounded line would otherwise let a single client OOM the daemon.
/// 8 MiB comfortably fits the largest instances `krsp-gen` emits (a few
/// hundred bytes per edge) while bounding per-connection memory.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// A request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireRequest {
    /// Provision paths for an instance.
    Solve(SolveRequest),
    /// Provision paths for many instances in one request line; each query
    /// is admitted, deadlined, and answered individually (one response
    /// line per query, matched by the query's `id`).
    SolveBatch(SolveBatchRequest),
    /// Fetch the service counters.
    Metrics,
    /// Cheap liveness/readiness probe for load balancers.
    Health,
    /// Register a topology lineage for epoch-scoped caching: later solves
    /// on this graph get weight-free cache keys, and [`WireRequest::Epoch`]
    /// can invalidate them selectively on weight updates.
    Register(RegisterRequest),
    /// Advance a registered lineage's epoch with a weight delta.
    Epoch(EpochRequest),
}

/// Payload of [`WireRequest::Register`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisterRequest {
    /// The topology (with its current weights) to track as a lineage.
    pub graph: krsp_graph::DiGraph,
}

/// Payload of [`WireRequest::Epoch`]: a weight-only delta against a
/// registered lineage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochRequest {
    /// The lineage's structural digest as 32 hex digits — the `topo` a
    /// [`WireResponse::Registered`] reply handed back. (Hex because the
    /// digest is a `u128` and JSON integers top out well below that.)
    pub topo: String,
    /// The edges whose weights change, with their new values.
    pub changes: Vec<WireChange>,
}

/// One edge-weight mutation inside an [`EpochRequest`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WireChange {
    /// Index of the mutated edge in the lineage's edge array.
    pub edge: u32,
    /// New edge cost.
    pub cost: i64,
    /// New edge delay.
    pub delay: i64,
}

/// Payload of [`WireRequest::Solve`].
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The kRSP instance.
    pub instance: Instance,
    /// Latency budget in milliseconds; omitted uses the service default.
    pub deadline_ms: Option<u64>,
    /// RSP-kernel override (`"classic"` or `"interval"`); absent or `null`
    /// uses the service's configured kernel ladder.
    pub kernel: Option<KernelKind>,
}

// Hand-written so `kernel` can be genuinely optional on the wire: the
// vendored serde derive requires every member on deserialize and writes
// `None` as `null`, but the kernel override postdates deployed clients.
// Absent (or `null`) means "service default", and `None` is omitted on
// serialize, so kernel-less requests stay byte-identical to the historical
// format.
impl Serialize for SolveRequest {
    fn to_content(&self) -> Content {
        let mut entries = vec![
            ("instance".to_string(), self.instance.to_content()),
            ("deadline_ms".to_string(), self.deadline_ms.to_content()),
        ];
        if let Some(kind) = self.kernel {
            entries.push(("kernel".to_string(), kind.to_content()));
        }
        Content::Map(entries)
    }
}

impl Deserialize for SolveRequest {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        Ok(SolveRequest {
            instance: Instance::from_content(c.field("instance")?)?,
            deadline_ms: Option::from_content(c.field("deadline_ms")?)?,
            kernel: opt_kernel_member(c)?,
        })
    }
}

/// The optional `"kernel"` member shared by [`SolveRequest`] and
/// [`BatchQuery`]: absent or `null` means "service default", otherwise a
/// kernel-kind string (a bad string is still a parse error, not a silent
/// fallback).
fn opt_kernel_member(c: &Content) -> Result<Option<KernelKind>, serde::DeError> {
    match c.field("kernel") {
        Ok(member) => Option::from_content(member),
        Err(_) => Ok(None),
    }
}

/// Payload of [`WireRequest::SolveBatch`]: many solve queries on one line.
///
/// Unlike pipelined `Solve` requests, the ids here are *part of the
/// payload* (`u64`, chosen by the client, unique within the batch) rather
/// than an envelope member; every per-query response line echoes its
/// query's id as the usual top-level `"id"` member, so a pipelining client
/// consumes batch responses with the same matcher it already has.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveBatchRequest {
    /// The queries, answered in completion order.
    pub queries: Vec<BatchQuery>,
}

/// One query inside a [`SolveBatchRequest`].
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// Client-chosen response-matching id, echoed as the response's
    /// top-level `"id"` member.
    pub id: u64,
    /// The kRSP instance.
    pub instance: Instance,
    /// Latency budget in milliseconds; omitted uses the service default.
    /// The deadline ladder applies per query, not per batch.
    pub deadline_ms: Option<u64>,
    /// RSP-kernel override for this query; absent or `null` uses the
    /// service's configured kernel ladder.
    pub kernel: Option<KernelKind>,
}

// Hand-written for the same reason as `SolveRequest`: `kernel` must be
// optional-on-absent and omitted when `None`.
impl Serialize for BatchQuery {
    fn to_content(&self) -> Content {
        let mut entries = vec![
            ("id".to_string(), self.id.to_content()),
            ("instance".to_string(), self.instance.to_content()),
            ("deadline_ms".to_string(), self.deadline_ms.to_content()),
        ];
        if let Some(kind) = self.kernel {
            entries.push(("kernel".to_string(), kind.to_content()));
        }
        Content::Map(entries)
    }
}

impl Deserialize for BatchQuery {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        Ok(BatchQuery {
            id: u64::from_content(c.field("id")?)?,
            instance: Instance::from_content(c.field("instance")?)?,
            deadline_ms: Option::from_content(c.field("deadline_ms")?)?,
            kernel: opt_kernel_member(c)?,
        })
    }
}

/// A response line.
///
/// One of these exists per request, briefly, between dispatch and
/// serialization — the variant size spread is irrelevant at that rate and
/// boxing would complicate every pattern match on the wire.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireResponse {
    /// The request was provisioned.
    Solved(SolvedReply),
    /// The request was rejected; the string names the
    /// [`Rejection`](crate::service::Rejection).
    Rejected(String),
    /// Service counters.
    Metrics(MetricsSnapshot),
    /// Readiness probe answer.
    Health(HealthReply),
    /// The router's answer to [`WireRequest::Health`]: its view of the
    /// replica ring (per-replica health plus routing counters). Single
    /// replicas never send this.
    Ring(RingReply),
    /// A lineage was registered (or re-confirmed).
    Registered(RegisteredReply),
    /// A lineage's epoch advanced.
    Epoch(EpochReply),
    /// The request failed for an operational reason: unparseable line,
    /// load shed, deadline, or a contained solver fault.
    Error(WireError),
}

/// Payload of [`WireResponse::Registered`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisteredReply {
    /// The lineage's structural digest, 32 hex digits — quote it back in
    /// [`EpochRequest::topo`].
    pub topo: String,
    /// The lineage's current epoch (0 on first registration).
    pub epoch: u64,
}

/// Payload of [`WireResponse::Epoch`]: what the advance did to the cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochReply {
    /// The lineage's structural digest, echoed back.
    pub topo: String,
    /// The epoch the lineage is now at.
    pub epoch: u64,
    /// Cached entries rekeyed into the new epoch (still served verbatim).
    pub retained: u64,
    /// Cached entries evicted because their solutions touched a changed
    /// edge (or the delta decreased a weight).
    pub evicted: u64,
    /// Warm-start seeds now waiting for the new epoch's solves.
    pub seeds: u64,
}

/// Coarse serving state reported by [`WireRequest::Health`], serialized as
/// a snake_case string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthStatus {
    /// Accepting and solving.
    Ready,
    /// Shutting down: existing work finishes, new work is refused.
    Draining,
    /// At capacity (admission queue or connection cap): retry elsewhere.
    Shedding,
}

impl HealthStatus {
    /// The wire string (`"ready"`, `"draining"`, `"shedding"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ready => "ready",
            HealthStatus::Draining => "draining",
            HealthStatus::Shedding => "shedding",
        }
    }
}

// Hand-written for the same reason as `ErrorKind`: the vendored serde
// derive cannot rename variants to snake_case strings.
impl Serialize for HealthStatus {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl Deserialize for HealthStatus {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        match c {
            Content::Str(s) => match s.as_str() {
                "ready" => Ok(HealthStatus::Ready),
                "draining" => Ok(HealthStatus::Draining),
                "shedding" => Ok(HealthStatus::Shedding),
                other => Err(serde::DeError(format!("unknown health status {other:?}"))),
            },
            other => Err(serde::DeError::expected("health-status string", other)),
        }
    }
}

/// Payload of [`WireResponse::Health`]: enough for a load balancer to
/// route (status), for capacity planning (width/workers/queue), and for a
/// cheap cache-efficiency read, without the full metrics histogram.
///
/// The trailing members (`draining_since_ms`, `accepting`, `lineages`,
/// `max_epoch`) postdate deployed clients, so they are **optional on the
/// wire**: absent members deserialize to `None`, and a reply in which
/// they are all `None` serializes byte-identically to the historical
/// format (the same compatibility contract as the `kernel` request
/// member). A router uses them to make handoff decisions — a draining
/// replica advertises *when* it started draining and that it no longer
/// accepts new work — without guessing from the coarse status.
#[derive(Clone, Debug)]
pub struct HealthReply {
    /// Coarse serving state.
    pub status: HealthStatus,
    /// Solver data-parallel width (see `krsp::solver_width`).
    pub width: u64,
    /// Service worker threads.
    pub workers: u64,
    /// Requests admitted and not yet finished.
    pub in_flight: u64,
    /// Admission limit (`queue_capacity + workers`); `in_flight` at or
    /// above this sheds.
    pub queue_limit: u64,
    /// Open frontend connections (0 when no frontend is attached).
    pub conns_open: u64,
    /// Solution-cache hits so far.
    pub cache_hits: u64,
    /// Solution-cache misses so far.
    pub cache_misses: u64,
    /// Solution-cache evictions so far.
    pub cache_evictions: u64,
    /// The service's default RSP kernel — the top (`full`) rung's
    /// assignment, which is what `--kernel` sets uniformly. Per-rung
    /// detail in `kernels`.
    pub kernel: KernelKind,
    /// The RSP kernel assigned to each ladder rung, best rung first
    /// (DESIGN.md §4.16). A per-request `"kernel"` override replaces this
    /// whole map with a uniform one for that request.
    pub kernels: Vec<RungKernel>,
    /// Milliseconds since this replica began draining; absent while
    /// serving normally. Lets an operator (or the router) distinguish a
    /// fresh drain from one stuck past its grace.
    pub draining_since_ms: Option<u64>,
    /// Whether the replica accepts *new* work. Absent means accepting
    /// (the historical implicit contract); an explicit `false` is the
    /// drain handoff signal — in-flight work still completes, but a
    /// router must stop sending and re-ring this replica's digests.
    pub accepting: Option<bool>,
    /// Registered topology lineages; absent when none are registered (so
    /// the steady lineage-free reply stays byte-identical).
    pub lineages: Option<u64>,
    /// Highest epoch across registered lineages; absent alongside
    /// `lineages`.
    pub max_epoch: Option<u64>,
}

// Hand-written for the same reason as `SolveRequest`: the four trailing
// members must be absent-tolerant on deserialize and omitted when `None`,
// which the vendored serde derive cannot express.
impl Serialize for HealthReply {
    fn to_content(&self) -> Content {
        let mut entries = vec![
            ("status".to_string(), self.status.to_content()),
            ("width".to_string(), self.width.to_content()),
            ("workers".to_string(), self.workers.to_content()),
            ("in_flight".to_string(), self.in_flight.to_content()),
            ("queue_limit".to_string(), self.queue_limit.to_content()),
            ("conns_open".to_string(), self.conns_open.to_content()),
            ("cache_hits".to_string(), self.cache_hits.to_content()),
            ("cache_misses".to_string(), self.cache_misses.to_content()),
            (
                "cache_evictions".to_string(),
                self.cache_evictions.to_content(),
            ),
            ("kernel".to_string(), self.kernel.to_content()),
            ("kernels".to_string(), self.kernels.to_content()),
        ];
        if let Some(ms) = self.draining_since_ms {
            entries.push(("draining_since_ms".to_string(), ms.to_content()));
        }
        if let Some(accepting) = self.accepting {
            entries.push(("accepting".to_string(), accepting.to_content()));
        }
        if let Some(lineages) = self.lineages {
            entries.push(("lineages".to_string(), lineages.to_content()));
        }
        if let Some(epoch) = self.max_epoch {
            entries.push(("max_epoch".to_string(), epoch.to_content()));
        }
        Content::Map(entries)
    }
}

/// One optional member of a [`HealthReply`]-style map: absent (or `null`)
/// is `None`, present must parse.
fn opt_member<T: Deserialize>(c: &Content, name: &str) -> Result<Option<T>, serde::DeError> {
    match c.field(name) {
        Ok(member) => Option::from_content(member),
        Err(_) => Ok(None),
    }
}

impl Deserialize for HealthReply {
    fn from_content(c: &Content) -> Result<Self, serde::DeError> {
        Ok(HealthReply {
            status: HealthStatus::from_content(c.field("status")?)?,
            width: u64::from_content(c.field("width")?)?,
            workers: u64::from_content(c.field("workers")?)?,
            in_flight: u64::from_content(c.field("in_flight")?)?,
            queue_limit: u64::from_content(c.field("queue_limit")?)?,
            conns_open: u64::from_content(c.field("conns_open")?)?,
            cache_hits: u64::from_content(c.field("cache_hits")?)?,
            cache_misses: u64::from_content(c.field("cache_misses")?)?,
            cache_evictions: u64::from_content(c.field("cache_evictions")?)?,
            kernel: KernelKind::from_content(c.field("kernel")?)?,
            kernels: Vec::from_content(c.field("kernels")?)?,
            draining_since_ms: opt_member(c, "draining_since_ms")?,
            accepting: opt_member(c, "accepting")?,
            lineages: opt_member(c, "lineages")?,
            max_epoch: opt_member(c, "max_epoch")?,
        })
    }
}

/// One rung's kernel assignment inside [`HealthReply::kernels`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RungKernel {
    /// The ladder rung.
    pub rung: Rung,
    /// The RSP kernel assigned to it.
    pub kernel: KernelKind,
}

/// One replica's entry inside a [`RingReply`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaStatus {
    /// The replica's listen address as configured.
    pub addr: String,
    /// Ring health state (`"up"`, `"degraded"`, `"draining"`, `"down"`).
    pub state: String,
    /// Consecutive probe/forward failures (resets on success).
    pub consecutive_failures: u64,
    /// The replica's self-reported drain age in milliseconds at the last
    /// probe; `0` when not draining.
    pub draining_since_ms: u64,
    /// Router-side requests currently outstanding against this replica.
    pub in_flight: u64,
}

/// Payload of [`WireResponse::Ring`]: the router's replica-set view plus
/// its routing counters, answered to [`WireRequest::Health`] probes of the
/// router itself.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RingReply {
    /// Per-replica health, in configured order (the ring's index space).
    pub replicas: Vec<ReplicaStatus>,
    /// Solve requests routed (before retries).
    pub requests: u64,
    /// Failover retries: additional replicas tried after a transport
    /// failure or a `shed` answer.
    pub retries: u64,
    /// Hedged second sends fired at the latency-quantile trigger.
    pub hedges_fired: u64,
    /// Hedged sends where the *second* replica answered first.
    pub hedges_won: u64,
    /// Requests structurally rejected by the router itself (deadline
    /// budget exhausted or no live replica).
    pub rejected: u64,
}

/// Builds a [`HealthReply`] from the service's current state. `conn_caps`
/// carries the frontend's `(open, max)` connection counts when serving
/// over TCP; `None` (library/threaded use) bases shedding on admission
/// pressure alone.
#[must_use]
pub fn health_reply(service: &Service, conn_caps: Option<(u64, u64)>) -> HealthReply {
    let m = service.metrics();
    let cfg = service.config();
    let queue_limit = (cfg.queue_capacity + cfg.workers) as u64;
    let in_flight = service.in_flight() as u64;
    let conns_open = conn_caps.map_or(m.frontend.conns_open, |(open, _)| open);
    let status = if service.is_shutting_down() {
        HealthStatus::Draining
    } else if in_flight >= queue_limit || conn_caps.is_some_and(|(open, max)| open >= max) {
        HealthStatus::Shedding
    } else {
        HealthStatus::Ready
    };
    HealthReply {
        status,
        width: krsp::solver_width() as u64,
        workers: cfg.workers as u64,
        in_flight,
        queue_limit,
        conns_open,
        cache_hits: m.cache_hits,
        cache_misses: m.cache_misses,
        cache_evictions: m.cache_evictions,
        kernel: cfg.kernels.for_rung(Rung::Full),
        kernels: Rung::LADDER
            .into_iter()
            .map(|rung| RungKernel {
                rung,
                kernel: cfg.kernels.for_rung(rung),
            })
            .collect(),
        draining_since_ms: service
            .draining_since()
            .map(|since| since.as_millis() as u64),
        accepting: if service.is_shutting_down() {
            Some(false)
        } else {
            None
        },
        lineages: (service.lineage_count() > 0).then(|| service.lineage_count()),
        max_epoch: (service.lineage_count() > 0).then_some(m.epoch),
    }
}

/// Machine-readable category of a [`WireResponse::Error`], serialized as a
/// snake_case string so clients branch on it without string matching the
/// human-readable message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line exceeded [`MAX_LINE_BYTES`].
    OversizeLine,
    /// The line was not a valid request (bad JSON or invalid instance).
    Parse,
    /// The solver panicked on this instance (contained server-side), or
    /// the instance is quarantined after repeated panics. Retrying the
    /// same instance will keep failing until the quarantine TTL lapses.
    SolverPanic,
    /// The deadline expired before the solve started (strict mode).
    Timeout,
    /// The service shed the request (queue full or shutting down) —
    /// retry with backoff.
    Shed,
    /// The client exceeded its per-address token-bucket request rate —
    /// retry after backing off.
    RateLimited,
    /// The server failed internally while producing the response.
    Internal,
}

impl ErrorKind {
    /// The wire string (`"oversize_line"`, `"parse"`, `"solver_panic"`,
    /// `"timeout"`, `"shed"`, `"internal"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::OversizeLine => "oversize_line",
            ErrorKind::Parse => "parse",
            ErrorKind::SolverPanic => "solver_panic",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Shed => "shed",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// Hand-written (the vendored serde derive cannot rename variants, and the
// wire format wants snake_case strings, not Rust variant names).
impl Serialize for ErrorKind {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_string())
    }
}

impl Deserialize for ErrorKind {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        match c {
            serde::Content::Str(s) => match s.as_str() {
                "oversize_line" => Ok(ErrorKind::OversizeLine),
                "parse" => Ok(ErrorKind::Parse),
                "solver_panic" => Ok(ErrorKind::SolverPanic),
                "timeout" => Ok(ErrorKind::Timeout),
                "shed" => Ok(ErrorKind::Shed),
                "rate_limited" => Ok(ErrorKind::RateLimited),
                "internal" => Ok(ErrorKind::Internal),
                other => Err(serde::DeError(format!("unknown error kind {other:?}"))),
            },
            other => Err(serde::DeError::expected("error-kind string", other)),
        }
    }
}

/// Structured payload of [`WireResponse::Error`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable category for client retry logic.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

pub(crate) fn wire_error(kind: ErrorKind, message: impl Into<String>) -> WireResponse {
    WireResponse::Error(WireError {
        kind,
        message: message.into(),
    })
}

/// Payload of [`WireResponse::Solved`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolvedReply {
    /// Total solution cost.
    pub cost: i64,
    /// Total solution delay.
    pub delay: i64,
    /// Edge ids of the path system, ascending.
    pub edges: Vec<u32>,
    /// Ladder rung that answered.
    pub rung: Rung,
    /// The rung's advertised guarantee.
    pub guarantee: Guarantee,
    /// The RSP kernel assigned to the answering rung.
    pub kernel: KernelKind,
    /// Whether the solution cache answered.
    pub cache_hit: bool,
    /// Whether the answer piggybacked on a concurrent identical request's
    /// in-flight solve.
    pub coalesced: bool,
    /// End-to-end service latency in microseconds.
    pub latency_us: u64,
    /// True when the answer arrived past the deadline.
    pub deadline_missed: bool,
}

/// Maps a provisioning outcome onto the wire — the single point both the
/// blocking and the event-driven frontends share, so solve payloads are
/// bit-identical regardless of which server answered.
#[must_use]
pub(crate) fn solve_response(out: Result<Response, Rejection>) -> WireResponse {
    match out {
        Ok(r) => WireResponse::Solved(SolvedReply {
            cost: r.solution.cost,
            delay: r.solution.delay,
            edges: r.solution.edges.iter().map(|e| e.0).collect(),
            rung: r.rung,
            guarantee: r.guarantee,
            kernel: r.kernel,
            cache_hit: r.cache_hit,
            coalesced: r.coalesced,
            latency_us: r.latency.as_micros().min(u128::from(u64::MAX)) as u64,
            deadline_missed: r.deadline_missed,
        }),
        // Infeasibility is a *semantic* answer about the instance and
        // keeps the dedicated `Rejected` variant; operational failures map
        // onto error kinds clients can act on.
        Err(r @ Rejection::Infeasible) => WireResponse::Rejected(r.to_string()),
        Err(r @ (Rejection::QueueFull | Rejection::ShuttingDown)) => {
            wire_error(ErrorKind::Shed, r.to_string())
        }
        Err(r @ Rejection::DeadlineExpired) => wire_error(ErrorKind::Timeout, r.to_string()),
        Err(r @ (Rejection::SolverPanic(_) | Rejection::Quarantined)) => {
            wire_error(ErrorKind::SolverPanic, r.to_string())
        }
    }
}

/// Evaluates one already-parsed request against the service.
///
/// [`WireRequest::SolveBatch`] does not fit the one-request/one-response
/// shape — use [`dispatch_batch`] (or the NDJSON servers, which fan it out
/// to one line per query); here it answers with a `"parse"` error.
#[must_use]
pub fn dispatch(service: &Service, request: WireRequest) -> WireResponse {
    match request {
        WireRequest::Metrics => WireResponse::Metrics(service.metrics()),
        WireRequest::Health => WireResponse::Health(health_reply(service, None)),
        WireRequest::Solve(solve) => {
            if let Err(e) = solve.instance.validate() {
                return wire_error(ErrorKind::Parse, format!("invalid instance: {e}"));
            }
            solve_response(service.provision(Request {
                instance: solve.instance,
                deadline: solve.deadline_ms.map(Duration::from_millis),
                kernel: solve.kernel,
            }))
        }
        WireRequest::Register(register) => {
            let (structural, epoch) = service.register_topology(&register.graph);
            WireResponse::Registered(RegisteredReply {
                topo: format!("{structural:032x}"),
                epoch,
            })
        }
        WireRequest::Epoch(req) => dispatch_epoch(service, &req),
        WireRequest::SolveBatch(_) => wire_error(
            ErrorKind::Parse,
            "SolveBatch produces one response per query; use dispatch_batch or an NDJSON server",
        ),
    }
}

/// Evaluates an [`WireRequest::Epoch`] advance: hex-decodes the lineage
/// handle, converts the wire delta, and reports what the sweep did. Bad
/// handles and out-of-range edges answer with a `"parse"` error — they are
/// client mistakes, not service faults.
fn dispatch_epoch(service: &Service, req: &EpochRequest) -> WireResponse {
    let Ok(structural) = u128::from_str_radix(&req.topo, 16) else {
        return wire_error(
            ErrorKind::Parse,
            format!("topo is not a hex digest: {:?}", req.topo),
        );
    };
    let changes: Vec<krsp_gen::WeightChange> = req
        .changes
        .iter()
        .map(|c| krsp_gen::WeightChange {
            edge: krsp_graph::EdgeId(c.edge),
            cost: c.cost,
            delay: c.delay,
        })
        .collect();
    match service.advance_epoch(structural, &changes) {
        Ok(report) => WireResponse::Epoch(EpochReply {
            topo: req.topo.clone(),
            epoch: report.epoch,
            retained: report.retained,
            evicted: report.evicted,
            seeds: report.seeds,
        }),
        Err(e) => wire_error(ErrorKind::Parse, e.to_string()),
    }
}

/// Evaluates every query of a batch against the service, synchronously and
/// in order, returning `(query id, response)` pairs. Each query is
/// admitted and deadlined individually, so one shed, infeasible, or
/// panicking query never poisons its siblings.
#[must_use]
pub fn dispatch_batch(service: &Service, batch: SolveBatchRequest) -> Vec<(u64, WireResponse)> {
    batch
        .queries
        .into_iter()
        .map(|q| {
            let response = if let Err(e) = q.instance.validate() {
                wire_error(ErrorKind::Parse, format!("invalid instance: {e}"))
            } else {
                solve_response(service.provision(Request {
                    instance: q.instance,
                    deadline: q.deadline_ms.map(Duration::from_millis),
                    kernel: q.kernel,
                }))
            };
            (q.id, response)
        })
        .collect()
}

/// Evaluates one raw NDJSON line, returning the response line(s) (without
/// the trailing newline). A `SolveBatch` line yields one `\n`-joined
/// response line per query, each carrying its query's `"id"`.
#[must_use]
pub fn dispatch_line(service: &Service, line: &str) -> String {
    let response = match serde_json::from_str::<WireRequest>(line) {
        Ok(WireRequest::SolveBatch(batch)) => {
            if batch.queries.is_empty() {
                wire_error(ErrorKind::Parse, "empty SolveBatch: no queries")
            } else {
                if let Some(stats) = service.frontend_stats() {
                    stats.batch(batch.queries.len() as u64);
                }
                return dispatch_batch(service, batch)
                    .iter()
                    .map(|(id, response)| {
                        encode_response_line(Some(&Content::Int(i128::from(*id))), response)
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
            }
        }
        Ok(req) => dispatch(service, req),
        Err(e) => wire_error(ErrorKind::Parse, format!("bad request: {e}")),
    };
    serde_json::to_string(&response).unwrap_or_else(|e| {
        format!("{{\"Error\":{{\"kind\":\"internal\",\"message\":\"serialize failed: {e}\"}}}}")
    })
}

// ---- request-id envelope ----------------------------------------------
//
// The vendored serde derive has no field attributes, so optional-absent
// members cannot live in the wire structs themselves (an `Option` field
// would serialize as `null`, changing the id-less format). Instead the id
// is spliced in and out at the `Content` layer: requests may carry an
// `"id"` member beside the request tag, responses echo it back, and an
// id-less exchange is byte-identical to the historical wire format.

/// A request line split into its (verbatim, opaque) id and the parse
/// outcome of the remainder.
pub(crate) struct DecodedRequest {
    /// The `"id"` member, if the line was a map carrying one.
    pub(crate) id: Option<Content>,
    /// The rest of the line parsed as a request, or the parse error.
    pub(crate) request: Result<WireRequest, String>,
}

/// Splits the optional `"id"` member off a raw request line. The id (when
/// the line parsed far enough to extract one) is returned even for
/// unparseable requests, so the error response can still be matched by a
/// pipelining client.
pub(crate) fn decode_request_line(line: &str) -> DecodedRequest {
    let content = match serde_json::parse_value(line) {
        Ok(c) => c,
        Err(e) => {
            return DecodedRequest {
                id: None,
                request: Err(format!("bad request: {e}")),
            }
        }
    };
    let (id, body) = match content {
        Content::Map(mut entries) => {
            let id = entries
                .iter()
                .position(|(key, _)| key == "id")
                .map(|at| entries.remove(at).1);
            (id, Content::Map(entries))
        }
        other => (None, other),
    };
    let request = WireRequest::from_content(&body).map_err(|e| format!("bad request: {e}"));
    DecodedRequest { id, request }
}

/// Renders a response line (no trailing newline), echoing `id` as an
/// `"id"` member when present. Without an id the output is exactly the
/// historical `serde_json::to_string(&response)` bytes.
pub(crate) fn encode_response_line(id: Option<&Content>, response: &WireResponse) -> String {
    let content = match (id, response.to_content()) {
        (None, c) => c,
        (Some(id), Content::Map(mut entries)) => {
            entries.insert(0, ("id".to_string(), id.clone()));
            Content::Map(entries)
        }
        // Unreachable today (every `WireResponse` variant is a map), but a
        // future unit variant must not lose the id.
        (Some(id), other) => Content::Map(vec![
            ("id".to_string(), id.clone()),
            ("response".to_string(), other),
        ]),
    };
    serde_json::to_string(&content).unwrap_or_else(|e| {
        format!("{{\"Error\":{{\"kind\":\"internal\",\"message\":\"serialize failed: {e}\"}}}}")
    })
}

/// Client-side encoder for a pipelined request: `request` with an `"id"`
/// member spliced in (map-shaped requests only — i.e. [`WireRequest::Solve`];
/// the bare-string requests cannot carry one and are answered in place).
#[must_use]
pub fn encode_request_with_id(id: u64, request: &WireRequest) -> String {
    let content = match request.to_content() {
        Content::Map(mut entries) => {
            entries.insert(0, ("id".to_string(), Content::Int(i128::from(id))));
            Content::Map(entries)
        }
        other => other,
    };
    serde_json::to_string(&content).unwrap_or_else(|e| {
        format!("{{\"Error\":{{\"kind\":\"internal\",\"message\":\"serialize failed: {e}\"}}}}")
    })
}

/// Client-side decoder for a response line: the echoed numeric id (if
/// any) and the response.
///
/// # Errors
/// The parse failure as text when the line is not a valid response.
pub fn decode_response_line(line: &str) -> Result<(Option<u64>, WireResponse), String> {
    let content = serde_json::parse_value(line).map_err(|e| format!("bad response: {e}"))?;
    let (id, body) = match content {
        Content::Map(mut entries) => {
            let id = entries
                .iter()
                .position(|(key, _)| key == "id")
                .map(|at| entries.remove(at).1);
            (id, Content::Map(entries))
        }
        other => (None, other),
    };
    let id = match id {
        None => None,
        Some(Content::Int(n)) => {
            Some(u64::try_from(n).map_err(|_| format!("response id {n} out of u64 range"))?)
        }
        Some(other) => return Err(format!("non-integer response id: {other:?}")),
    };
    let response = WireResponse::from_content(&body).map_err(|e| format!("bad response: {e}"))?;
    Ok((id, response))
}

/// One outcome of [`read_line_capped`].
pub(crate) enum LineRead {
    /// A complete line (without the trailing newline).
    Line(Vec<u8>),
    /// The line exceeded the cap; the remainder up to its newline has been
    /// drained so the connection can keep serving.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// What to do when a read blocks (`WouldBlock`/`TimedOut` on a socket with
/// a read timeout). The callback receives whether the reader is mid-line
/// (`partial = true`: bytes of the current line have arrived but not its
/// newline), letting the caller distinguish an idle keepalive connection
/// from a stalled sender.
pub(crate) enum BlockAction {
    /// Keep waiting.
    Retry,
    /// Close the connection cleanly (reported as EOF).
    Close,
    /// Give up: surface the block as a `TimedOut` error.
    Fail,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes.
///
/// `Interrupted` reads are always retried. A *blocked* read (`WouldBlock`
/// / `TimedOut`) consults `on_block`, so callers set the stall policy: a
/// plain blocking server retries forever, while the shutdown-aware server
/// closes idle connections on drain and bounds how long a half-sent line
/// may stall a thread.
pub(crate) fn read_line_capped(
    reader: &mut impl BufRead,
    max: usize,
    on_block: &mut dyn FnMut(bool) -> BlockAction,
) -> std::io::Result<LineRead> {
    // Chaos-testing hook: `proto.read=err(...)` fails the read like a torn
    // connection would.
    krsp_failpoint::fail_point!("proto.read", |msg| Err(std::io::Error::other(msg)));
    let mut line = Vec::new();
    let mut discarding = false;
    loop {
        let (consumed, done) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(e) if matches!(e.kind(), IoErrorKind::WouldBlock | IoErrorKind::TimedOut) => {
                    match on_block(!line.is_empty() || discarding) {
                        BlockAction::Retry => continue,
                        BlockAction::Close => return Ok(LineRead::Eof),
                        BlockAction::Fail => {
                            return Err(std::io::Error::new(
                                IoErrorKind::TimedOut,
                                "read stalled past its budget",
                            ))
                        }
                    }
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF: a capped line ends here too, as does a final
                // unterminated line.
                return Ok(match (discarding, line.is_empty()) {
                    (true, _) => LineRead::TooLong,
                    (false, true) => LineRead::Eof,
                    (false, false) => LineRead::Line(line),
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        line.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !discarding {
                        line.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > max {
            line.clear();
            discarding = true;
        }
        if done {
            return Ok(if discarding {
                LineRead::TooLong
            } else {
                LineRead::Line(line)
            });
        }
    }
}

/// Knobs for [`serve_with_shutdown`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Budget for a *mid-line* read stall before the connection is
    /// dropped; an idle connection (between lines) never times out.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops draining its responses
    /// cannot pin a connection thread forever.
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight connections to finish before
    /// returning anyway.
    pub grace: Duration,
    /// Housekeeping tick: how often the server checks the shutdown flag
    /// and enforces the stall timeouts. (In the threaded fallback, also
    /// the per-read poll granularity.)
    pub poll: Duration,
    /// Total open-connection cap; connections past it are answered with a
    /// `"shed"` error at accept and closed.
    pub max_conns: usize,
    /// Open-connection cap per client address; excess connections from one
    /// address are shed at accept. (Event-driven server only.)
    pub per_client_conns: usize,
    /// Token-bucket refill rate, in `Solve` requests per second per client
    /// address; `0` disables rate limiting. Refused requests get a
    /// `"rate_limited"` error and the connection stays up. (Event-driven
    /// server only.)
    pub rate_per_sec: u64,
    /// Token-bucket burst capacity; `0` defaults to `2 × rate_per_sec`.
    pub rate_burst: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            grace: Duration::from_secs(5),
            poll: Duration::from_millis(50),
            max_conns: 4096,
            per_client_conns: 1024,
            rate_per_sec: 0,
            rate_burst: 0,
        }
    }
}

fn handle_connection(
    service: &Service,
    stream: TcpStream,
    shutdown: &AtomicBool,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    let tick = opts.poll.max(Duration::from_millis(1));
    // A finite read timeout turns blocking reads into poll ticks, so the
    // stall policy below runs even when no bytes arrive.
    stream.set_read_timeout(Some(tick))?;
    stream.set_write_timeout(Some(opts.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut stalled = Duration::ZERO;
        let mut on_block = |partial: bool| {
            if partial {
                // A half-sent line: bounded patience, then drop — a
                // stalled sender must not pin this thread forever.
                stalled += tick;
                if stalled >= opts.read_timeout {
                    BlockAction::Fail
                } else {
                    BlockAction::Retry
                }
            } else if shutdown.load(Ordering::Acquire) {
                // Idle between requests while draining: close cleanly. A
                // request already in flight is not affected (we are here
                // only when waiting for a *new* line).
                BlockAction::Close
            } else {
                BlockAction::Retry
            }
        };
        let reply = match read_line_capped(&mut reader, MAX_LINE_BYTES, &mut on_block)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => {
                let msg = format!("request line exceeds {MAX_LINE_BYTES} bytes");
                serde_json::to_string(&wire_error(ErrorKind::OversizeLine, msg))
                    .expect("error response serializes")
            }
            LineRead::Line(raw) => {
                let line = String::from_utf8_lossy(&raw);
                if line.trim().is_empty() {
                    continue;
                }
                dispatch_line(service, &line)
            }
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Binds `addr` and serves NDJSON connections forever on the event-driven
/// frontend. Returns only on a listener/reactor error.
pub fn serve<A: ToSocketAddrs>(service: &Service, addr: A) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    serve_on(service, listener)
}

/// Serves on an already-bound listener (lets callers report the chosen
/// port, e.g. when binding port 0). Never shuts down on its own.
pub fn serve_on(service: &Service, listener: TcpListener) -> std::io::Result<()> {
    serve_with_shutdown(
        service,
        listener,
        Arc::new(AtomicBool::new(false)),
        ServeOptions::default(),
    )
}

/// Serves NDJSON connections until `shutdown` becomes `true`, then drains:
/// stop accepting, flip the service into shutdown (new requests are shed,
/// in-flight solves degrade to their cheapest rung and complete), close
/// idle connections, and wait up to [`ServeOptions::grace`] for busy ones.
///
/// One reactor thread multiplexes every connection (see
/// [`crate::frontend`]); solves run on the service's worker pool and
/// responses complete out of order (match them by request id). The flag
/// is typically set from a signal handler (`SIGTERM`/ctrl-c in `krsp-cli
/// serve`), which cannot run service code itself — hence a plain atomic
/// rather than a callback; the frontend's housekeeping tick
/// ([`ServeOptions::poll`]) bounds how long the flip can go unnoticed.
/// Returns once drained (or the grace lapsed), so the caller can flush
/// final metrics before exiting.
///
/// Where no poll facility exists (non-Unix), falls back to
/// [`serve_threaded_with_shutdown`].
pub fn serve_with_shutdown(
    service: &Service,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    opts: ServeOptions,
) -> std::io::Result<()> {
    match crate::frontend::serve_event_driven(service, listener, shutdown, opts) {
        Err((e, Some((listener, shutdown, opts)))) if e.kind() == IoErrorKind::Unsupported => {
            serve_threaded_with_shutdown(service, listener, shutdown, opts)
        }
        Err((e, _)) => Err(e),
        Ok(()) => Ok(()),
    }
}

/// The previous thread-per-connection server: one OS thread per accepted
/// connection, blocking reads with a poll-tick stall policy, in-order
/// responses (ids are *not* echoed). Kept as the A/B baseline for the
/// event-driven frontend and as the fallback where no poll facility
/// exists; [`ServeOptions::max_conns`] is enforced (connections past the
/// cap are shed at accept), but per-client caps and rate limits are not.
pub fn serve_threaded_with_shutdown(
    service: &Service,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    opts: ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let conns = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connection sockets must not inherit the listener's
                // nonblocking mode; handle_connection sets its own timeouts.
                stream.set_nonblocking(false)?;
                if conns.load(Ordering::Acquire) >= opts.max_conns {
                    shed_at_accept(stream, "server connection limit reached");
                    continue;
                }
                let service = service.clone();
                let shutdown = Arc::clone(&shutdown);
                let conns = Arc::clone(&conns);
                let opts = opts.clone();
                conns.fetch_add(1, Ordering::AcqRel);
                std::thread::spawn(move || {
                    let _ = handle_connection(&service, stream, &shutdown, &opts);
                    conns.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => std::thread::sleep(opts.poll),
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Drain phase: the listener stops accepting (dropped below), admitted
    // work finishes fast (cancel tokens trip to the cheapest rung), idle
    // connections close on their next poll tick.
    drop(listener);
    service.begin_shutdown();
    let deadline = crate::sync_util::saturating_deadline(Instant::now(), opts.grace);
    while conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(opts.poll.min(Duration::from_millis(10)));
    }
    service.drain(deadline.saturating_duration_since(Instant::now()));
    Ok(())
}

/// Best-effort `"shed"` error to a connection refused at accept, so the
/// client learns *why* instead of seeing a bare RST. The socket is fresh
/// (empty send buffer), so the bounded-timeout write virtually always
/// lands without blocking the acceptor meaningfully.
pub(crate) fn shed_at_accept(stream: TcpStream, message: &str) {
    let line = encode_response_line(None, &wire_error(ErrorKind::Shed, message));
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut stream = stream;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use krsp_graph::{DiGraph, NodeId};

    fn inst(d: i64) -> Instance {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]);
        Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(250),
            kernel: None,
        });
        let text = serde_json::to_string(&req).unwrap();
        let back: WireRequest = serde_json::from_str(&text).unwrap();
        match back {
            WireRequest::Solve(s) => {
                assert_eq!(s.deadline_ms, Some(250));
                assert_eq!(s.instance.k, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let metrics: WireRequest = serde_json::from_str("\"Metrics\"").unwrap();
        assert!(matches!(metrics, WireRequest::Metrics));
    }

    #[test]
    fn kernel_member_is_optional_and_omitted_when_none() {
        // A kernel-less request serializes without a "kernel" member at
        // all (historical byte compatibility), and a historical line
        // missing the member parses as `None` rather than erroring.
        let req = WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(250),
            kernel: None,
        });
        let text = serde_json::to_string(&req).unwrap();
        assert!(!text.contains("kernel"), "line = {text}");
        match serde_json::from_str::<WireRequest>(&text).unwrap() {
            WireRequest::Solve(s) => assert_eq!(s.kernel, None),
            other => panic!("wrong variant: {other:?}"),
        }

        // An explicit override round-trips as a snake_case string, and
        // `null` means "absent".
        for kind in krsp::KERNEL_KINDS {
            let req = WireRequest::Solve(SolveRequest {
                instance: inst(20),
                deadline_ms: None,
                kernel: Some(kind),
            });
            let text = serde_json::to_string(&req).unwrap();
            assert!(text.contains(&format!("\"kernel\":\"{kind}\"")), "{text}");
            match serde_json::from_str::<WireRequest>(&text).unwrap() {
                WireRequest::Solve(s) => assert_eq!(s.kernel, Some(kind)),
                other => panic!("wrong variant: {other:?}"),
            }
            let nulled = text.replace(&format!("\"kernel\":\"{kind}\""), "\"kernel\":null");
            match serde_json::from_str::<WireRequest>(&nulled).unwrap() {
                WireRequest::Solve(s) => assert_eq!(s.kernel, None),
                other => panic!("wrong variant: {other:?}"),
            }
        }

        // A bad kernel string is a parse error, not a silent default.
        let bad = text.replace(
            "\"deadline_ms\":250",
            "\"deadline_ms\":250,\"kernel\":\"exact\"",
        );
        assert!(serde_json::from_str::<WireRequest>(&bad).is_err());
    }

    #[test]
    fn solved_replies_and_health_report_the_kernel() {
        let svc = Service::new(ServiceConfig::default());
        match dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(20),
                deadline_ms: None,
                kernel: Some(krsp::KernelKind::Interval),
            }),
        ) {
            WireResponse::Solved(r) => assert_eq!(r.kernel, krsp::KernelKind::Interval),
            other => panic!("expected Solved, got {other:?}"),
        }
        let health = health_reply(&svc, None);
        assert_eq!(health.kernel, krsp::KernelKind::Classic);
        assert_eq!(health.kernels.len(), Rung::LADDER.len());
        for (entry, rung) in health.kernels.iter().zip(Rung::LADDER) {
            assert_eq!(entry.rung, rung);
            assert_eq!(entry.kernel, krsp::KernelKind::Classic);
        }
    }

    #[test]
    fn health_trailing_members_absent_stay_byte_identical() {
        // A steady-state reply (not draining, no lineages) must serialize
        // exactly as it did before the trailing members existed, so old
        // clients parse it unchanged.
        let svc = Service::new(ServiceConfig::default());
        let health = health_reply(&svc, None);
        assert_eq!(health.draining_since_ms, None);
        assert_eq!(health.accepting, None);
        assert_eq!(health.lineages, None);
        assert_eq!(health.max_epoch, None);
        let text = serde_json::to_string(&WireResponse::Health(health.clone())).unwrap();
        for member in ["draining_since_ms", "accepting", "lineages", "max_epoch"] {
            assert!(!text.contains(member), "line = {text}");
        }
        // And a historical line (no trailing members) parses with all
        // four as `None`.
        match serde_json::from_str::<WireResponse>(&text).unwrap() {
            WireResponse::Health(h) => {
                assert_eq!(h.status, health.status);
                assert_eq!(h.draining_since_ms, None);
                assert_eq!(h.accepting, None);
                assert_eq!(h.lineages, None);
                assert_eq!(h.max_epoch, None);
            }
            other => panic!("expected Health, got {other:?}"),
        }
    }

    #[test]
    fn health_trailing_members_round_trip_when_present() {
        let svc = Service::new(ServiceConfig::default());
        let mut health = health_reply(&svc, None);
        health.draining_since_ms = Some(1234);
        health.accepting = Some(false);
        health.lineages = Some(2);
        health.max_epoch = Some(7);
        let text = serde_json::to_string(&WireResponse::Health(health)).unwrap();
        match serde_json::from_str::<WireResponse>(&text).unwrap() {
            WireResponse::Health(h) => {
                assert_eq!(h.draining_since_ms, Some(1234));
                assert_eq!(h.accepting, Some(false));
                assert_eq!(h.lineages, Some(2));
                assert_eq!(h.max_epoch, Some(7));
            }
            other => panic!("expected Health, got {other:?}"),
        }
    }

    #[test]
    fn draining_service_advertises_handoff_members() {
        let svc = Service::new(ServiceConfig::default());
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]);
        svc.register_topology(&g);
        svc.begin_shutdown();
        let health = health_reply(&svc, None);
        assert_eq!(health.status, HealthStatus::Draining);
        assert!(health.draining_since_ms.is_some());
        assert_eq!(health.accepting, Some(false));
        assert_eq!(health.lineages, Some(1));
        assert!(health.max_epoch.is_some());
    }

    #[test]
    fn dispatch_solves_rejects_and_reports() {
        let svc = Service::new(ServiceConfig::default());
        let ok = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(20),
                deadline_ms: None,
                kernel: None,
            }),
        );
        match ok {
            WireResponse::Solved(r) => {
                assert!(r.delay <= 20);
                assert!(!r.edges.is_empty());
            }
            other => panic!("expected Solved, got {other:?}"),
        }
        let infeasible = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(3),
                deadline_ms: None,
                kernel: None,
            }),
        );
        assert!(matches!(infeasible, WireResponse::Rejected(_)));
        let metrics = dispatch(&svc, WireRequest::Metrics);
        match metrics {
            WireResponse::Metrics(m) => assert_eq!(m.completed, 1),
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn register_and_epoch_round_trip_over_the_wire() {
        let svc = Service::new(ServiceConfig::default());
        let instance = inst(20);

        // Register the topology; the reply's topo is the hex handle an
        // Epoch advance quotes back.
        let line = serde_json::to_string(&WireRequest::Register(RegisterRequest {
            graph: instance.graph.clone(),
        }))
        .unwrap();
        let reply: WireResponse = serde_json::from_str(&dispatch_line(&svc, &line)).unwrap();
        let WireResponse::Registered(registered) = reply else {
            panic!("expected Registered, got {reply:?}");
        };
        assert_eq!(registered.epoch, 0);
        assert_eq!(registered.topo.len(), 32);

        // Populate the cache, then advance with a no-op-valued delta on
        // edge 0 (on the cheap path, which the k=2 answer uses): the one
        // entry is evicted into a seed.
        let solved = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance,
                deadline_ms: None,
                kernel: None,
            }),
        );
        assert!(matches!(solved, WireResponse::Solved(_)));
        let line = serde_json::to_string(&WireRequest::Epoch(EpochRequest {
            topo: registered.topo.clone(),
            changes: vec![WireChange {
                edge: 0,
                cost: 1,
                delay: 5,
            }],
        }))
        .unwrap();
        let reply: WireResponse = serde_json::from_str(&dispatch_line(&svc, &line)).unwrap();
        let WireResponse::Epoch(advanced) = reply else {
            panic!("expected Epoch, got {reply:?}");
        };
        assert_eq!(advanced.topo, registered.topo);
        assert_eq!(advanced.epoch, 1);
        assert_eq!(advanced.retained + advanced.evicted, 1);

        // A bogus handle and an out-of-range edge both answer with parse
        // errors, not panics.
        for bad in [
            EpochRequest {
                topo: "not-hex".to_string(),
                changes: Vec::new(),
            },
            EpochRequest {
                topo: registered.topo.clone(),
                changes: vec![WireChange {
                    edge: 999,
                    cost: 1,
                    delay: 1,
                }],
            },
        ] {
            let reply = dispatch(&svc, WireRequest::Epoch(bad));
            match reply {
                WireResponse::Error(e) => assert_eq!(e.kind, ErrorKind::Parse),
                other => panic!("expected Error, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_lines_get_error_replies() {
        let svc = Service::new(ServiceConfig::default());
        let reply = dispatch_line(&svc, "{not json");
        let parsed: WireResponse = serde_json::from_str(&reply).unwrap();
        match parsed {
            WireResponse::Error(e) => assert_eq!(e.kind, ErrorKind::Parse),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_line_is_rejected_but_connection_survives() {
        use std::io::{BufRead, BufReader, Read, Write};

        let svc = Service::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        // A single line larger than the cap, then a valid pipelined request
        // on the same connection.
        let garbage = vec![b'x'; MAX_LINE_BYTES + 4096];
        stream.write_all(&garbage).unwrap();
        stream.write_all(b"\n").unwrap();
        let req = serde_json::to_string(&WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: None,
            kernel: None,
        }))
        .unwrap();
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match serde_json::from_str::<WireResponse>(line.trim()).unwrap() {
            WireResponse::Error(e) => {
                assert_eq!(e.kind, ErrorKind::OversizeLine);
                assert!(e.message.contains("exceeds"), "msg = {}", e.message);
            }
            other => panic!("expected Error for oversized line, got {other:?}"),
        }
        line.clear();
        reader.read_line(&mut line).unwrap();
        let solved: WireResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(
            matches!(solved, WireResponse::Solved(_)),
            "connection must keep serving after a rejected line"
        );
        // Invalid UTF-8 no longer tears down the connection either.
        let mut stream = reader.into_inner();
        stream.write_all(&[0xff, 0xfe, b'{', b'\n']).unwrap();
        stream.flush().unwrap();
        let mut byte = [0u8; 1];
        stream.read_exact(&mut byte).unwrap(); // an Error line comes back
        assert_eq!(byte[0], b'{');
    }

    #[test]
    fn capped_reader_handles_boundaries() {
        use std::io::Cursor;

        // Exactly at the cap: accepted.
        let data = [vec![b'a'; 16], b"\nrest\n".to_vec()].concat();
        let mut r = BufReader::new(Cursor::new(data));
        match read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap() {
            LineRead::Line(l) => assert_eq!(l.len(), 16),
            _ => panic!("line at the cap must pass"),
        }
        match read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"rest"),
            _ => panic!("next line must still parse"),
        }
        assert!(matches!(
            read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap(),
            LineRead::Eof
        ));

        // One over: rejected, stream drained to the newline.
        let data = [vec![b'b'; 17], b"\nok\n".to_vec()].concat();
        let mut r = BufReader::new(Cursor::new(data));
        assert!(matches!(
            read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap(),
            LineRead::TooLong
        ));
        match read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"ok"),
            _ => panic!("stream must recover after a too-long line"),
        }

        // Unterminated final line and unterminated overflow at EOF.
        let mut r = BufReader::new(Cursor::new(b"tail".to_vec()));
        match read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"tail"),
            _ => panic!("unterminated final line is still a line"),
        }
        let mut r = BufReader::new(Cursor::new(vec![b'c'; 64]));
        assert!(matches!(
            read_line_capped(&mut r, 16, &mut |_| BlockAction::Retry).unwrap(),
            LineRead::TooLong
        ));
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        use std::io::{BufRead, BufReader, Write};

        let svc = Service::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        let req = serde_json::to_string(&WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(1000),
            kernel: None,
        }))
        .unwrap();
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n\"Metrics\"\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let solved: WireResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(solved, WireResponse::Solved(_)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        let metrics: WireResponse = serde_json::from_str(line.trim()).unwrap();
        match metrics {
            WireResponse::Metrics(m) => assert_eq!(m.completed, 1),
            other => panic!("expected Metrics, got {other:?}"),
        }
    }
}
