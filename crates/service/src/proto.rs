//! Newline-delimited-JSON TCP frontend.
//!
//! One request per line, one response per line; connections are handled on
//! a thread each and may pipeline any number of requests. The wire enums
//! are externally tagged, so a solve request looks like
//!
//! ```json
//! {"Solve": {"instance": {...}, "deadline_ms": 250}}
//! ```
//!
//! and `"Metrics"` (a bare string) fetches a
//! [`MetricsSnapshot`](crate::metrics::MetricsSnapshot). Malformed lines
//! get an `"Error"` response; the connection stays up.

use crate::degrade::{Guarantee, Rung};
use crate::metrics::MetricsSnapshot;
use crate::service::{Request, Service};
use krsp::Instance;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Hard cap on one request line. A line longer than this is rejected with
/// an [`WireResponse::Error`] and drained, instead of being buffered — an
/// unbounded line would otherwise let a single client OOM the daemon.
/// 8 MiB comfortably fits the largest instances `krsp-gen` emits (a few
/// hundred bytes per edge) while bounding per-connection memory.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// A request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireRequest {
    /// Provision paths for an instance.
    Solve(SolveRequest),
    /// Fetch the service counters.
    Metrics,
}

/// Payload of [`WireRequest::Solve`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The kRSP instance.
    pub instance: Instance,
    /// Latency budget in milliseconds; omitted uses the service default.
    pub deadline_ms: Option<u64>,
}

/// A response line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireResponse {
    /// The request was provisioned.
    Solved(SolvedReply),
    /// The request was rejected; the string names the
    /// [`Rejection`](crate::service::Rejection).
    Rejected(String),
    /// Service counters.
    Metrics(MetricsSnapshot),
    /// The line could not be parsed or validated.
    Error(String),
}

/// Payload of [`WireResponse::Solved`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolvedReply {
    /// Total solution cost.
    pub cost: i64,
    /// Total solution delay.
    pub delay: i64,
    /// Edge ids of the path system, ascending.
    pub edges: Vec<u32>,
    /// Ladder rung that answered.
    pub rung: Rung,
    /// The rung's advertised guarantee.
    pub guarantee: Guarantee,
    /// Whether the solution cache answered.
    pub cache_hit: bool,
    /// Whether the answer piggybacked on a concurrent identical request's
    /// in-flight solve.
    pub coalesced: bool,
    /// End-to-end service latency in microseconds.
    pub latency_us: u64,
    /// True when the answer arrived past the deadline.
    pub deadline_missed: bool,
}

/// Evaluates one already-parsed request against the service.
#[must_use]
pub fn dispatch(service: &Service, request: WireRequest) -> WireResponse {
    match request {
        WireRequest::Metrics => WireResponse::Metrics(service.metrics()),
        WireRequest::Solve(solve) => {
            if let Err(e) = solve.instance.validate() {
                return WireResponse::Error(format!("invalid instance: {e}"));
            }
            let out = service.provision(Request {
                instance: solve.instance,
                deadline: solve.deadline_ms.map(Duration::from_millis),
            });
            match out {
                Ok(r) => WireResponse::Solved(SolvedReply {
                    cost: r.solution.cost,
                    delay: r.solution.delay,
                    edges: r.solution.edges.iter().map(|e| e.0).collect(),
                    rung: r.rung,
                    guarantee: r.guarantee,
                    cache_hit: r.cache_hit,
                    coalesced: r.coalesced,
                    latency_us: r.latency.as_micros().min(u128::from(u64::MAX)) as u64,
                    deadline_missed: r.deadline_missed,
                }),
                Err(rejection) => WireResponse::Rejected(rejection.to_string()),
            }
        }
    }
}

/// Evaluates one raw NDJSON line, returning the response line (without the
/// trailing newline).
#[must_use]
pub fn dispatch_line(service: &Service, line: &str) -> String {
    let response = match serde_json::from_str::<WireRequest>(line) {
        Ok(req) => dispatch(service, req),
        Err(e) => WireResponse::Error(format!("bad request: {e}")),
    };
    serde_json::to_string(&response)
        .unwrap_or_else(|e| format!("{{\"Error\":\"serialize failed: {e}\"}}"))
}

/// One outcome of [`read_line_capped`].
enum LineRead {
    /// A complete line (without the trailing newline).
    Line(Vec<u8>),
    /// The line exceeded the cap; the remainder up to its newline has been
    /// drained so the connection can keep serving.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes.
///
/// Recoverable read errors (`Interrupted`, `WouldBlock`, `TimedOut`) are
/// retried instead of torn down — a transient stall on a keepalive socket
/// must not kill a connection that may have pipelined requests behind it.
fn read_line_capped(reader: &mut impl BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut line = Vec::new();
    let mut discarding = false;
    loop {
        let (consumed, done) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF: a capped line ends here too, as does a final
                // unterminated line.
                return Ok(match (discarding, line.is_empty()) {
                    (true, _) => LineRead::TooLong,
                    (false, true) => LineRead::Eof,
                    (false, false) => LineRead::Line(line),
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        line.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !discarding {
                        line.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > max {
            line.clear();
            discarding = true;
        }
        if done {
            return Ok(if discarding {
                LineRead::TooLong
            } else {
                LineRead::Line(line)
            });
        }
    }
}

fn handle_connection(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let reply = match read_line_capped(&mut reader, MAX_LINE_BYTES)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => {
                let msg = format!("request line exceeds {MAX_LINE_BYTES} bytes");
                serde_json::to_string(&WireResponse::Error(msg)).expect("error response serializes")
            }
            LineRead::Line(raw) => {
                let line = String::from_utf8_lossy(&raw);
                if line.trim().is_empty() {
                    continue;
                }
                dispatch_line(service, &line)
            }
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Binds `addr` and serves NDJSON connections forever (thread per
/// connection). Returns only on a listener error.
pub fn serve<A: ToSocketAddrs>(service: &Service, addr: A) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    serve_on(service, listener)
}

/// Serves on an already-bound listener (lets callers report the chosen
/// port, e.g. when binding port 0).
pub fn serve_on(service: &Service, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let service = service.clone();
        std::thread::spawn(move || {
            let _ = handle_connection(&service, stream);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use krsp_graph::{DiGraph, NodeId};

    fn inst(d: i64) -> Instance {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]);
        Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(250),
        });
        let text = serde_json::to_string(&req).unwrap();
        let back: WireRequest = serde_json::from_str(&text).unwrap();
        match back {
            WireRequest::Solve(s) => {
                assert_eq!(s.deadline_ms, Some(250));
                assert_eq!(s.instance.k, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let metrics: WireRequest = serde_json::from_str("\"Metrics\"").unwrap();
        assert!(matches!(metrics, WireRequest::Metrics));
    }

    #[test]
    fn dispatch_solves_rejects_and_reports() {
        let svc = Service::new(ServiceConfig::default());
        let ok = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(20),
                deadline_ms: None,
            }),
        );
        match ok {
            WireResponse::Solved(r) => {
                assert!(r.delay <= 20);
                assert!(!r.edges.is_empty());
            }
            other => panic!("expected Solved, got {other:?}"),
        }
        let infeasible = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(3),
                deadline_ms: None,
            }),
        );
        assert!(matches!(infeasible, WireResponse::Rejected(_)));
        let metrics = dispatch(&svc, WireRequest::Metrics);
        match metrics {
            WireResponse::Metrics(m) => assert_eq!(m.completed, 1),
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_get_error_replies() {
        let svc = Service::new(ServiceConfig::default());
        let reply = dispatch_line(&svc, "{not json");
        let parsed: WireResponse = serde_json::from_str(&reply).unwrap();
        assert!(matches!(parsed, WireResponse::Error(_)));
    }

    #[test]
    fn oversized_line_is_rejected_but_connection_survives() {
        use std::io::{BufRead, BufReader, Read, Write};

        let svc = Service::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        // A single line larger than the cap, then a valid pipelined request
        // on the same connection.
        let garbage = vec![b'x'; MAX_LINE_BYTES + 4096];
        stream.write_all(&garbage).unwrap();
        stream.write_all(b"\n").unwrap();
        let req = serde_json::to_string(&WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: None,
        }))
        .unwrap();
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match serde_json::from_str::<WireResponse>(line.trim()).unwrap() {
            WireResponse::Error(msg) => assert!(msg.contains("exceeds"), "msg = {msg}"),
            other => panic!("expected Error for oversized line, got {other:?}"),
        }
        line.clear();
        reader.read_line(&mut line).unwrap();
        let solved: WireResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(
            matches!(solved, WireResponse::Solved(_)),
            "connection must keep serving after a rejected line"
        );
        // Invalid UTF-8 no longer tears down the connection either.
        let mut stream = reader.into_inner();
        stream.write_all(&[0xff, 0xfe, b'{', b'\n']).unwrap();
        stream.flush().unwrap();
        let mut byte = [0u8; 1];
        stream.read_exact(&mut byte).unwrap(); // an Error line comes back
        assert_eq!(byte[0], b'{');
    }

    #[test]
    fn capped_reader_handles_boundaries() {
        use std::io::Cursor;

        // Exactly at the cap: accepted.
        let data = [vec![b'a'; 16], b"\nrest\n".to_vec()].concat();
        let mut r = BufReader::new(Cursor::new(data));
        match read_line_capped(&mut r, 16).unwrap() {
            LineRead::Line(l) => assert_eq!(l.len(), 16),
            _ => panic!("line at the cap must pass"),
        }
        match read_line_capped(&mut r, 16).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"rest"),
            _ => panic!("next line must still parse"),
        }
        assert!(matches!(
            read_line_capped(&mut r, 16).unwrap(),
            LineRead::Eof
        ));

        // One over: rejected, stream drained to the newline.
        let data = [vec![b'b'; 17], b"\nok\n".to_vec()].concat();
        let mut r = BufReader::new(Cursor::new(data));
        assert!(matches!(
            read_line_capped(&mut r, 16).unwrap(),
            LineRead::TooLong
        ));
        match read_line_capped(&mut r, 16).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"ok"),
            _ => panic!("stream must recover after a too-long line"),
        }

        // Unterminated final line and unterminated overflow at EOF.
        let mut r = BufReader::new(Cursor::new(b"tail".to_vec()));
        match read_line_capped(&mut r, 16).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"tail"),
            _ => panic!("unterminated final line is still a line"),
        }
        let mut r = BufReader::new(Cursor::new(vec![b'c'; 64]));
        assert!(matches!(
            read_line_capped(&mut r, 16).unwrap(),
            LineRead::TooLong
        ));
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        use std::io::{BufRead, BufReader, Write};

        let svc = Service::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        let req = serde_json::to_string(&WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(1000),
        }))
        .unwrap();
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n\"Metrics\"\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let solved: WireResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(solved, WireResponse::Solved(_)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        let metrics: WireResponse = serde_json::from_str(line.trim()).unwrap();
        match metrics {
            WireResponse::Metrics(m) => assert_eq!(m.completed, 1),
            other => panic!("expected Metrics, got {other:?}"),
        }
    }
}
