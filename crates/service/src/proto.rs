//! Newline-delimited-JSON TCP frontend.
//!
//! One request per line, one response per line; connections are handled on
//! a thread each and may pipeline any number of requests. The wire enums
//! are externally tagged, so a solve request looks like
//!
//! ```json
//! {"Solve": {"instance": {...}, "deadline_ms": 250}}
//! ```
//!
//! and `"Metrics"` (a bare string) fetches a
//! [`MetricsSnapshot`](crate::metrics::MetricsSnapshot). Malformed lines
//! get an `"Error"` response; the connection stays up.

use crate::degrade::{Guarantee, Rung};
use crate::metrics::MetricsSnapshot;
use crate::service::{Request, Service};
use krsp::Instance;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireRequest {
    /// Provision paths for an instance.
    Solve(SolveRequest),
    /// Fetch the service counters.
    Metrics,
}

/// Payload of [`WireRequest::Solve`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The kRSP instance.
    pub instance: Instance,
    /// Latency budget in milliseconds; omitted uses the service default.
    pub deadline_ms: Option<u64>,
}

/// A response line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireResponse {
    /// The request was provisioned.
    Solved(SolvedReply),
    /// The request was rejected; the string names the
    /// [`Rejection`](crate::service::Rejection).
    Rejected(String),
    /// Service counters.
    Metrics(MetricsSnapshot),
    /// The line could not be parsed or validated.
    Error(String),
}

/// Payload of [`WireResponse::Solved`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolvedReply {
    /// Total solution cost.
    pub cost: i64,
    /// Total solution delay.
    pub delay: i64,
    /// Edge ids of the path system, ascending.
    pub edges: Vec<u32>,
    /// Ladder rung that answered.
    pub rung: Rung,
    /// The rung's advertised guarantee.
    pub guarantee: Guarantee,
    /// Whether the solution cache answered.
    pub cache_hit: bool,
    /// End-to-end service latency in microseconds.
    pub latency_us: u64,
    /// True when the answer arrived past the deadline.
    pub deadline_missed: bool,
}

/// Evaluates one already-parsed request against the service.
#[must_use]
pub fn dispatch(service: &Service, request: WireRequest) -> WireResponse {
    match request {
        WireRequest::Metrics => WireResponse::Metrics(service.metrics()),
        WireRequest::Solve(solve) => {
            if let Err(e) = solve.instance.validate() {
                return WireResponse::Error(format!("invalid instance: {e}"));
            }
            let out = service.provision(Request {
                instance: solve.instance,
                deadline: solve.deadline_ms.map(Duration::from_millis),
            });
            match out {
                Ok(r) => WireResponse::Solved(SolvedReply {
                    cost: r.solution.cost,
                    delay: r.solution.delay,
                    edges: r.solution.edges.iter().map(|e| e.0).collect(),
                    rung: r.rung,
                    guarantee: r.guarantee,
                    cache_hit: r.cache_hit,
                    latency_us: r.latency.as_micros().min(u128::from(u64::MAX)) as u64,
                    deadline_missed: r.deadline_missed,
                }),
                Err(rejection) => WireResponse::Rejected(rejection.to_string()),
            }
        }
    }
}

/// Evaluates one raw NDJSON line, returning the response line (without the
/// trailing newline).
#[must_use]
pub fn dispatch_line(service: &Service, line: &str) -> String {
    let response = match serde_json::from_str::<WireRequest>(line) {
        Ok(req) => dispatch(service, req),
        Err(e) => WireResponse::Error(format!("bad request: {e}")),
    };
    serde_json::to_string(&response)
        .unwrap_or_else(|e| format!("{{\"Error\":\"serialize failed: {e}\"}}"))
}

fn handle_connection(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatch_line(service, &line);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Binds `addr` and serves NDJSON connections forever (thread per
/// connection). Returns only on a listener error.
pub fn serve<A: ToSocketAddrs>(service: &Service, addr: A) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    serve_on(service, listener)
}

/// Serves on an already-bound listener (lets callers report the chosen
/// port, e.g. when binding port 0).
pub fn serve_on(service: &Service, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let service = service.clone();
        std::thread::spawn(move || {
            let _ = handle_connection(&service, stream);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use krsp_graph::{DiGraph, NodeId};

    fn inst(d: i64) -> Instance {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]);
        Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(250),
        });
        let text = serde_json::to_string(&req).unwrap();
        let back: WireRequest = serde_json::from_str(&text).unwrap();
        match back {
            WireRequest::Solve(s) => {
                assert_eq!(s.deadline_ms, Some(250));
                assert_eq!(s.instance.k, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let metrics: WireRequest = serde_json::from_str("\"Metrics\"").unwrap();
        assert!(matches!(metrics, WireRequest::Metrics));
    }

    #[test]
    fn dispatch_solves_rejects_and_reports() {
        let svc = Service::new(ServiceConfig::default());
        let ok = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(20),
                deadline_ms: None,
            }),
        );
        match ok {
            WireResponse::Solved(r) => {
                assert!(r.delay <= 20);
                assert!(!r.edges.is_empty());
            }
            other => panic!("expected Solved, got {other:?}"),
        }
        let infeasible = dispatch(
            &svc,
            WireRequest::Solve(SolveRequest {
                instance: inst(3),
                deadline_ms: None,
            }),
        );
        assert!(matches!(infeasible, WireResponse::Rejected(_)));
        let metrics = dispatch(&svc, WireRequest::Metrics);
        match metrics {
            WireResponse::Metrics(m) => assert_eq!(m.completed, 1),
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_get_error_replies() {
        let svc = Service::new(ServiceConfig::default());
        let reply = dispatch_line(&svc, "{not json");
        let parsed: WireResponse = serde_json::from_str(&reply).unwrap();
        assert!(matches!(parsed, WireResponse::Error(_)));
    }

    #[test]
    fn tcp_round_trip_on_loopback() {
        use std::io::{BufRead, BufReader, Write};

        let svc = Service::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        let req = serde_json::to_string(&WireRequest::Solve(SolveRequest {
            instance: inst(20),
            deadline_ms: Some(1000),
        }))
        .unwrap();
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n\"Metrics\"\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let solved: WireResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(matches!(solved, WireResponse::Solved(_)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        let metrics: WireResponse = serde_json::from_str(line.trim()).unwrap();
        match metrics {
            WireResponse::Metrics(m) => assert_eq!(m.completed, 1),
            other => panic!("expected Metrics, got {other:?}"),
        }
    }
}
