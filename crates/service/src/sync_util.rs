//! Poison-tolerant locking.
//!
//! A panic while holding a `Mutex` poisons it; the default `lock().expect()`
//! idiom then turns one contained solver panic into a panic cascade across
//! every thread that later touches the same lock. The service's shared state
//! (metrics counters, cache shards, singleflight tables, result slots) is
//! always left in a consistent state between individual mutations, so the
//! right response to poison is to keep going with the inner value.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// `now + d` without the panic `Instant` addition reserves for
/// unrepresentable sums: a pathological duration (`Duration::MAX` grace
/// periods, timeouts parsed from config) clamps to the farthest
/// representable deadline instead of aborting the thread that armed it.
pub(crate) fn saturating_deadline(now: Instant, d: Duration) -> Instant {
    let mut d = d;
    loop {
        if let Some(t) = now.checked_add(d) {
            return t;
        }
        // Halving converges on the largest representable offset quickly
        // (the loop runs at most ~64 times, and only on overflow).
        d /= 2;
    }
}

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recover`].
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait_timeout`] with the same poison recovery as
/// [`lock_recover`]. Callers re-check their predicate and their own
/// deadline on return, so the timed-out flag is not surfaced.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: std::time::Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, _)) => g,
        Err(e) => e.into_inner().0,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn saturating_deadline_clamps_instead_of_panicking() {
        let now = Instant::now();
        assert_eq!(
            saturating_deadline(now, Duration::from_secs(5)),
            now + Duration::from_secs(5)
        );
        // `now + Duration::MAX` would panic; the clamp must not, and must
        // still land in the future.
        let far = saturating_deadline(now, Duration::MAX);
        assert!(far > now + Duration::from_secs(3600));
    }

    #[test]
    fn lock_recover_survives_poison() {
        let m = Mutex::new(7u32);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 8);
    }
}
