//! # krsp-service — production path-provisioning over the kRSP solvers
//!
//! The algorithmic crates answer one instance at a time; this crate wraps
//! them in the shape a network controller actually deploys: a long-running
//! service with **admission control**, a **solution cache**, and
//! **deadline-aware degradation**, fronted by an in-process API
//! ([`Service`]), a newline-delimited-JSON TCP listener ([`proto`]), and a
//! load generator ([`load`], the `krsp-load` binary).
//!
//! * [`service`] — bounded admission queue with backpressure, worker pool
//!   on the shared [`krsp::Executor`], per-request deadlines, debug-build
//!   response auditing.
//! * [`hash`] — canonical 128-bit instance digests (edge-order
//!   insensitive) keying the cache.
//! * [`cache`] — LRU memoization of full ladder answers, sharded across
//!   independently-locked segments, with per-shard hit/miss/eviction
//!   counters.
//! * [`singleflight`] — coalesces concurrent misses for the same key onto
//!   one solver run; duplicates wait on their own threads and share the
//!   leader's answer.
//! * [`degrade`] — the ladder `full → single_probe → lp_rounding →
//!   min_delay`, each rung with an advertised `(cost, delay)` guarantee
//!   recorded on every response.
//! * [`metrics`] — serializable counters and a log-linear latency
//!   histogram.
//!
//! ## Quick start
//!
//! ```
//! use krsp_service::{Request, Service, ServiceConfig};
//! use krsp::Instance;
//! use krsp_graph::{DiGraph, NodeId};
//!
//! let g = DiGraph::from_edges(4, &[
//!     (0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1),
//! ]);
//! let inst = Instance::new(g, NodeId(0), NodeId(3), 2, 20).unwrap();
//! let svc = Service::new(ServiceConfig::default());
//! let first = svc.provision(Request { instance: inst.clone(), deadline: None, kernel: None }).unwrap();
//! let second = svc.provision(Request { instance: inst, deadline: None, kernel: None }).unwrap();
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.solution.cost, second.solution.cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A stray `unwrap()` on shared state is how one contained panic becomes a
// poison cascade; require the justified forms (`expect` with an invariant,
// or `sync_util`'s poison recovery).
#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod degrade;
pub mod disk;
pub mod epoch;
#[cfg(unix)]
mod frontend;
#[cfg(not(unix))]
mod frontend {
    //! Stub for platforms without a poll facility: the caller falls back
    //! to the threaded server.
    use crate::proto::ServeOptions;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub(crate) type FallbackParts = (TcpListener, Arc<AtomicBool>, ServeOptions);

    pub(crate) fn serve_event_driven(
        _service: &crate::Service,
        listener: TcpListener,
        shutdown: Arc<AtomicBool>,
        opts: ServeOptions,
    ) -> Result<(), (std::io::Error, Option<FallbackParts>)> {
        Err((
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no event backend on this platform",
            ),
            Some((listener, shutdown, opts)),
        ))
    }
}
pub mod hash;
pub mod load;
pub mod metrics;
pub mod proto;
pub mod quarantine;
pub mod router;
pub mod service;
pub mod singleflight;
mod sync_util;

pub use cache::{CacheStats, ShardedCache, SolutionCache};
pub use degrade::{
    solve_degraded, solve_degraded_seeded, solve_degraded_with, Degraded, Guarantee, KernelLadder,
    LadderError, LadderPolicy, Rung,
};
pub use disk::{DiskCache, DiskStats};
pub use epoch::{EpochError, EpochRegistry, EpochReport, EpochScope};
pub use hash::{canonical_key, scope_key, structural_key, CacheKey};
pub use load::{
    run_remote, run_rolling, LoadReport, LoadSpec, RemoteSpec, RollingReport, RollingSpec,
    WindowReport,
};
pub use metrics::{FrontendSnapshot, LatencyHistogram, MetricsSnapshot};
pub use proto::{
    decode_response_line, encode_request_with_id, health_reply, serve, serve_on,
    serve_threaded_with_shutdown, serve_with_shutdown, EpochReply, EpochRequest, ErrorKind,
    HealthReply, HealthStatus, RegisterRequest, RegisteredReply, ReplicaStatus, RingReply,
    RungKernel, ServeOptions, SolveRequest, SolvedReply, WireChange, WireError, WireRequest,
    WireResponse, MAX_LINE_BYTES,
};
pub use quarantine::Quarantine;
pub use router::{
    resolve_seed, serve_ring_with_shutdown, RingState, Router, RouterOptions, DEFAULT_SEED,
    SEED_ENV_VAR,
};
pub use service::{Rejection, Request, Response, Service, ServiceConfig};
pub use singleflight::{Join, Leader, Singleflight};
