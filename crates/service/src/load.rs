//! Closed-loop load generator: replays `krsp-gen` workloads against an
//! in-process [`Service`] at a target arrival rate.
//!
//! Each request is assigned a scheduled start time on a fixed-rate arrival
//! clock (`i / qps`); client threads pick requests off a shared index,
//! sleep until their slot, and issue them. Latencies are recorded exactly
//! (client-side, every sample kept), so the reported percentiles are true
//! order statistics rather than histogram reconstructions. The report is
//! serializable — `krsp-load` prints it as JSON for committing under
//! `results/`.
//!
//! [`run_remote`] replays the same workload over the NDJSON wire protocol
//! against a running `krsp-cli serve`, with per-request reconnect and
//! jittered exponential backoff so a restarting or briefly absent server
//! does not fail the replay.

use crate::degrade::Rung;
use crate::metrics::MetricsSnapshot;
use crate::proto::{
    self, BatchQuery, ErrorKind, SolveBatchRequest, SolveRequest, WireRequest, WireResponse,
};
use crate::service::{Rejection, Request, Service};
use crate::sync_util::lock_recover;
use krsp_gen::{Family, Regime, Workload};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What to replay.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Total requests to issue.
    pub requests: usize,
    /// Target arrival rate in requests/second; 0 = open throttle.
    pub qps: f64,
    /// Number of distinct instances cycled round-robin (1 = pure cache-hit
    /// traffic after warmup; `requests` = pure miss traffic).
    pub unique: usize,
    /// Client threads issuing requests.
    pub clients: usize,
    /// Topology family for the generated instances.
    pub family: Family,
    /// Node count per instance.
    pub n: usize,
    /// Disjoint paths per request.
    pub k: usize,
    /// Delay-budget tightness ∈ (0, 1].
    pub tightness: f64,
    /// Base PRNG seed; instance `u` uses `seed + 1000·u`.
    pub seed: u64,
    /// Per-request deadline in milliseconds; `None` uses the service
    /// default.
    pub deadline_ms: Option<u64>,
    /// Requests kept in flight per connection in remote replays. `0`/`1`
    /// is the classic one-at-a-time round trip; `N > 1` pipelines with
    /// per-request ids and matches responses out of order. Ignored by
    /// in-process replays (clients are the concurrency there).
    pub pipeline: usize,
    /// Queries grouped into each `SolveBatch` wire request in remote
    /// replays. `0`/`1` sends classic one-query `Solve` lines; `N > 1`
    /// sends one batch line per `N` claimed requests and matches the
    /// per-query responses by id. Mutually exclusive with `pipeline > 1`;
    /// ignored by in-process replays.
    pub batch: usize,
    /// RSP-kernel override stamped on every issued request; `None` leaves
    /// the server's configured kernel ladder in charge.
    pub kernel: Option<krsp::KernelKind>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            requests: 200,
            qps: 0.0,
            unique: 20,
            clients: 4,
            family: Family::Gnm,
            n: 60,
            k: 2,
            tightness: 0.5,
            seed: 42,
            deadline_ms: None,
            pipeline: 1,
            batch: 1,
            kernel: None,
        }
    }
}

/// Exact latency statistics (µs) over one outcome class.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Mean.
    pub mean_us: f64,
    /// Maximum.
    pub max_us: u64,
}

/// Exact 1-based quantile rank: `ceil(q · count)` clamped to
/// `[1, count]`, computed without going through `f64` multiplication.
/// `(q * count as f64).ceil()` misrounds once `count` exceeds f64's
/// 53-bit mantissa (`count as f64` itself rounds, so e.g. `q = 1.0`
/// could yield a rank below `count` and select the wrong order
/// statistic); instead take `q` in 2⁻³² fixed point — exact for the
/// conversion — and compute `ceil(q_fp · count / 2³²)` in u128. The
/// same rank the metrics histogram uses (`metrics::LatencyHistogram`).
fn quantile_rank(q: f64, count: u64) -> u64 {
    const FP: u128 = 1 << 32;
    let q_fp = (q.clamp(0.0, 1.0) * FP as f64).round() as u128;
    let rank = (q_fp * u128::from(count)).div_ceil(FP);
    u64::try_from(rank.min(u128::from(count)))
        .expect("rank is clamped to count")
        .max(1)
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        // Empty replays (every request rejected) must report zeros, not a
        // 0/0 = NaN mean — NaN is not valid JSON and corrupts the report.
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let pick = |q: f64| {
            let rank = quantile_rank(q, samples.len() as u64) as usize;
            samples[rank - 1]
        };
        LatencySummary {
            count: samples.len() as u64,
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            mean_us: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            max_us: *samples.last().expect("nonempty"),
        }
    }
}

/// One ladder rung's advertised guarantee plus its fresh-solve count in a
/// replay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RungGuarantee {
    /// Rung name (`full`, `single_probe`, `lp_rounding`, `min_delay`).
    pub rung: String,
    /// Fresh solves served at this rung.
    pub requests: u64,
    /// Advertised cost factor vs the LP lower bound; `None` = uncertified.
    pub cost_factor: Option<u32>,
    /// Advertised delay-bound relaxation factor.
    pub delay_factor: u32,
}

/// The replay outcome, serializable for `results/`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests answered with a solution.
    pub completed: u64,
    /// Requests rejected by backpressure.
    pub rejected_queue_full: u64,
    /// Requests rejected by strict deadline enforcement.
    pub rejected_expired: u64,
    /// Requests that proved infeasible.
    pub infeasible: u64,
    /// Answers that arrived past their deadline.
    pub deadline_missed: u64,
    /// Answers served from the cache.
    pub cache_hits: u64,
    /// Answers that piggybacked on a concurrent identical request's solve
    /// (singleflight followers).
    pub coalesced: u64,
    /// Structured error replies: contained solver panics, quarantined
    /// keys, and (remote replay) transport failures that exhausted their
    /// retry budget.
    pub wire_errors: u64,
    /// Reconnect-and-reissue attempts after transport errors (remote
    /// replay only; 0 in-process).
    pub transport_retries: u64,
    /// Requests kept in flight per connection (1 = sequential round
    /// trips). Latencies are measured **per id** — send of a request to
    /// receipt of the response carrying its id — so pipelined numbers are
    /// true per-request latencies, not batch times.
    pub pipeline_depth: u64,
    /// Queries per `SolveBatch` wire request (1 = plain `Solve` lines).
    /// Latencies are per query — send of the batch line to receipt of the
    /// response carrying that query's id.
    pub batch_size: u64,
    /// Responses that arrived before an earlier-submitted request's
    /// response on the same connection (pipelined replays only).
    pub out_of_order_replies: u64,
    /// Deepest observed reordering: the most earlier-submitted requests
    /// still unanswered when a response arrived.
    pub reorder_depth_max: u64,
    /// Wall-clock duration of the replay in seconds.
    pub wall_s: f64,
    /// Achieved throughput (completed / wall).
    pub achieved_qps: f64,
    /// Fresh solves per rung (`[full, single_probe, lp_rounding,
    /// min_delay]`).
    pub per_rung: [u64; 4],
    /// The advertised approximation guarantee of every ladder rung,
    /// alongside how many fresh solves it served — so the report records
    /// which factor bound each answer carries.
    pub rung_guarantees: Vec<RungGuarantee>,
    /// Latency over all answered requests.
    pub latency: LatencySummary,
    /// Latency over cache hits only.
    pub latency_cache_hit: LatencySummary,
    /// Latency over cache misses only.
    pub latency_cache_miss: LatencySummary,
    /// Latency over all answered requests measured from each request's
    /// **last** transmission — the (re)issue that was actually answered —
    /// rather than its first. [`LoadReport::latency`] spans every failed
    /// attempt and the reconnect backoff between them (the caller's
    /// view); this distribution excludes them (the replica's view).
    /// The two are identical when no transport retries occurred.
    pub latency_last_send: LatencySummary,
    /// The service's own counters after the run.
    pub service_metrics: MetricsSnapshot,
}

#[derive(Default)]
struct Tally {
    completed: u64,
    rejected_queue_full: u64,
    rejected_expired: u64,
    infeasible: u64,
    deadline_missed: u64,
    cache_hits: u64,
    coalesced: u64,
    wire_errors: u64,
    out_of_order: u64,
    reorder_depth_max: u64,
    per_rung: [u64; 4],
    hit_latencies: Vec<u64>,
    miss_latencies: Vec<u64>,
    last_send_latencies: Vec<u64>,
}

impl Tally {
    fn record_solved(
        &mut self,
        rung: Rung,
        cache_hit: bool,
        coalesced: bool,
        deadline_missed: bool,
        latency_us: u64,
        latency_last_us: u64,
    ) {
        self.completed += 1;
        self.per_rung[rung.index()] += u64::from(!cache_hit && !coalesced);
        self.deadline_missed += u64::from(deadline_missed);
        self.cache_hits += u64::from(cache_hit);
        self.coalesced += u64::from(coalesced);
        if cache_hit {
            self.hit_latencies.push(latency_us);
        } else {
            self.miss_latencies.push(latency_us);
        }
        self.last_send_latencies.push(latency_last_us);
    }
}

/// Builds the distinct instance pool for `spec`. Public so callers can
/// pre-validate a spec before replaying it.
#[must_use]
pub fn build_pool(spec: &LoadSpec) -> Vec<krsp::Instance> {
    (0..spec.unique.max(1))
        .filter_map(|u| {
            let w = Workload {
                family: spec.family,
                n: spec.n,
                m: spec.n * 4,
                regime: Regime::Anticorrelated,
                k: spec.k,
                tightness: spec.tightness,
                seed: spec.seed.wrapping_add(1000 * u as u64),
            };
            krsp_gen::instantiate_with_retries(w, 50)
        })
        .collect()
}

/// Replays `spec` against `service` and reports.
///
/// # Panics
/// Panics when no feasible instance can be generated from the spec.
#[must_use]
pub fn run(service: &Service, spec: &LoadSpec) -> LoadReport {
    let pool = build_pool(spec);
    assert!(
        !pool.is_empty(),
        "load spec generated no feasible instances"
    );

    let next = AtomicUsize::new(0);
    let tally = Mutex::new(Tally::default());
    let start = Instant::now();
    let interval = if spec.qps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / spec.qps))
    } else {
        None
    };

    std::thread::scope(|s| {
        for _ in 0..spec.clients.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= spec.requests {
                    break;
                }
                if let Some(step) = interval {
                    let slot = start + step * i as u32;
                    let now = Instant::now();
                    if slot > now {
                        std::thread::sleep(slot - now);
                    }
                }
                let out = service.provision(Request {
                    instance: pool[i % pool.len()].clone(),
                    deadline: spec.deadline_ms.map(Duration::from_millis),
                    kernel: spec.kernel,
                });
                let mut t = lock_recover(&tally);
                match out {
                    Ok(r) => {
                        let us = r.latency.as_micros().min(u128::from(u64::MAX)) as u64;
                        // In-process there is no transport, so the first
                        // and last send coincide.
                        t.record_solved(
                            r.rung,
                            r.cache_hit,
                            r.coalesced,
                            r.deadline_missed,
                            us,
                            us,
                        );
                    }
                    Err(Rejection::QueueFull) => t.rejected_queue_full += 1,
                    Err(Rejection::DeadlineExpired) => t.rejected_expired += 1,
                    Err(Rejection::Infeasible | Rejection::ShuttingDown) => t.infeasible += 1,
                    Err(Rejection::SolverPanic(_) | Rejection::Quarantined) => t.wire_errors += 1,
                }
            });
        }
    });

    let wall = start.elapsed();
    let t = tally.into_inner().unwrap_or_else(|e| e.into_inner());
    build_report(spec.requests as u64, wall, t, 0, 1, 1, service.metrics())
}

fn build_report(
    issued: u64,
    wall: Duration,
    t: Tally,
    transport_retries: u64,
    pipeline_depth: u64,
    batch_size: u64,
    service_metrics: MetricsSnapshot,
) -> LoadReport {
    let all: Vec<u64> = t
        .hit_latencies
        .iter()
        .chain(t.miss_latencies.iter())
        .copied()
        .collect();
    LoadReport {
        issued,
        completed: t.completed,
        rejected_queue_full: t.rejected_queue_full,
        rejected_expired: t.rejected_expired,
        infeasible: t.infeasible,
        deadline_missed: t.deadline_missed,
        cache_hits: t.cache_hits,
        coalesced: t.coalesced,
        wire_errors: t.wire_errors,
        transport_retries,
        pipeline_depth,
        batch_size,
        out_of_order_replies: t.out_of_order,
        reorder_depth_max: t.reorder_depth_max,
        wall_s: wall.as_secs_f64(),
        achieved_qps: if wall.as_secs_f64() > 0.0 {
            t.completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        per_rung: t.per_rung,
        rung_guarantees: Rung::LADDER
            .iter()
            .map(|&rg| {
                let g = rg.guarantee();
                RungGuarantee {
                    rung: rg.to_string(),
                    requests: t.per_rung[rg.index()],
                    cost_factor: g.cost_factor,
                    delay_factor: g.delay_factor,
                }
            })
            .collect(),
        latency: LatencySummary::from_samples(all),
        latency_cache_hit: LatencySummary::from_samples(t.hit_latencies),
        latency_cache_miss: LatencySummary::from_samples(t.miss_latencies),
        latency_last_send: LatencySummary::from_samples(t.last_send_latencies),
        service_metrics,
    }
}

/// Where and how [`run_remote`] replays over the wire.
#[derive(Clone, Debug)]
pub struct RemoteSpec {
    /// Server address (`host:port`), or a comma-separated list of
    /// addresses. With a list, clients spread their initial connections
    /// across the targets and rotate to the next one on each reconnect,
    /// so a replay keeps going while any listed replica answers.
    pub addr: String,
    /// Reconnect-and-reissue attempts per request after a transport
    /// error, with jittered exponential backoff between attempts.
    pub retries: u32,
}

impl RemoteSpec {
    /// The individual target addresses in [`RemoteSpec::addr`]. Never
    /// empty: a list with no usable entries falls back to the raw string
    /// so the connection error surfaces where it is acted on.
    #[must_use]
    pub fn addrs(&self) -> Vec<&str> {
        let list: Vec<&str> = self
            .addr
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .collect();
        if list.is_empty() {
            vec![self.addr.as_str()]
        } else {
            list
        }
    }
}

/// Deterministic jittered exponential backoff: base 10 ms doubling per
/// attempt, capped at 500 ms, with the top half of the window jittered by
/// an LCG step so concurrent clients do not reconnect in lockstep.
fn backoff_delay(attempt: u32, salt: u64) -> Duration {
    let cap = 10u64.saturating_mul(1 << attempt.min(6)).min(500);
    let j = salt
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        >> 33;
    Duration::from_millis(cap / 2 + j % (cap / 2 + 1))
}

/// One client's connection to the server, lazily (re)established. With a
/// comma-separated address list the client starts on a salt-determined
/// target (spreading concurrent clients across replicas) and rotates to
/// the next target on every reconnect.
struct WireClient {
    addrs: Vec<String>,
    target: usize,
    retries: u32,
    salt: u64,
    conn: Option<BufReader<TcpStream>>,
}

impl WireClient {
    fn new(addr: &str, retries: u32, salt: u64) -> Self {
        let mut addrs: Vec<String> = addr
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if addrs.is_empty() {
            addrs.push(addr.to_string());
        }
        let target = salt as usize % addrs.len();
        WireClient {
            addrs,
            target,
            retries,
            salt,
            conn: None,
        }
    }

    /// Drops the current connection and moves to the next target address.
    fn rotate(&mut self) {
        self.conn = None;
        self.target = self.target.wrapping_add(1) % self.addrs.len();
    }

    /// Sends one request line and reads one reply line, reconnecting and
    /// reissuing (the protocol is stateless per line, so a reissue is
    /// safe) up to the retry budget. Returns the instant the answered
    /// attempt was written alongside the reply, so callers can report
    /// replica latency separately from retry/backoff time.
    fn roundtrip(
        &mut self,
        line: &str,
        retries_made: &AtomicU64,
    ) -> std::io::Result<(Instant, String)> {
        let (sent, mut replies) = self.roundtrip_many(line, 1, retries_made)?;
        Ok((sent, replies.remove(0).1))
    }

    /// Sends one request line and reads `replies` reply lines — the
    /// multi-response shape of a `SolveBatch` line — with the same
    /// reconnect-and-reissue policy as [`WireClient::roundtrip`]. The
    /// returned instant is when the answered attempt's line was written;
    /// each reply carries its receipt instant so per-query latency can
    /// span only until *that* response arrived, not until the whole
    /// batch drained.
    fn roundtrip_many(
        &mut self,
        line: &str,
        replies: usize,
        retries_made: &AtomicU64,
    ) -> std::io::Result<(Instant, Vec<(Instant, String)>)> {
        let mut attempt = 0u32;
        loop {
            match self.try_roundtrip_many(line, replies) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    self.rotate();
                    if attempt >= self.retries {
                        return Err(e);
                    }
                    retries_made.fetch_add(1, Ordering::Relaxed);
                    self.salt = self.salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    std::thread::sleep(backoff_delay(attempt, self.salt));
                    attempt += 1;
                }
            }
        }
    }

    fn try_roundtrip_many(
        &mut self,
        line: &str,
        replies: usize,
    ) -> std::io::Result<(Instant, Vec<(Instant, String)>)> {
        if self.conn.is_none() {
            let addr = &self.addrs[self.target % self.addrs.len()];
            self.conn = Some(BufReader::new(TcpStream::connect(addr)?));
        }
        let reader = self.conn.as_mut().expect("connected above");
        let sent = Instant::now();
        reader.get_mut().write_all(line.as_bytes())?;
        reader.get_mut().write_all(b"\n")?;
        let mut out = Vec::with_capacity(replies);
        for _ in 0..replies {
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            out.push((Instant::now(), reply));
        }
        Ok((sent, out))
    }
}

/// Classifies one wire response (or its absence) into the tally.
/// `latency_us` spans from the request's first send (includes retries and
/// backoff); `latency_last_us` from its last (the attempt that was
/// answered).
fn tally_response(
    t: &mut Tally,
    response: Option<WireResponse>,
    latency_us: u64,
    latency_last_us: u64,
) {
    match response {
        Some(WireResponse::Solved(r)) => {
            t.record_solved(
                r.rung,
                r.cache_hit,
                r.coalesced,
                r.deadline_missed,
                latency_us,
                latency_last_us,
            );
        }
        Some(WireResponse::Rejected(_)) => t.infeasible += 1,
        Some(WireResponse::Error(e)) => match e.kind {
            ErrorKind::Shed => t.rejected_queue_full += 1,
            ErrorKind::Timeout => t.rejected_expired += 1,
            _ => t.wire_errors += 1,
        },
        // Transport failure past the retry budget, or a reply that did
        // not parse (including an unexpected `Metrics` payload).
        _ => t.wire_errors += 1,
    }
}

/// Splices a numeric id into an already-serialized map-shaped request
/// line: `{"Solve":...}` → `{"id":7,"Solve":...}`. Equivalent to
/// [`proto::encode_request_with_id`] without re-serializing the instance.
fn line_with_id(line: &str, id: u64) -> String {
    debug_assert!(line.starts_with('{'), "request line must be a JSON map");
    format!("{{\"id\":{id},{}", &line[1..])
}

/// A request written to a pipelined connection and not yet answered.
struct Pending {
    /// The full request line, kept for reissue after a connection death.
    line: String,
    /// When it was first sent; first-send latency spans reconnects,
    /// matching the sequential client's retries-inclusive measurement.
    first_send: Instant,
    /// When it was last (re)issued; last-send latency excludes the dead
    /// attempts and the reconnect backoff between them.
    last_send: Instant,
}

/// One pipelined client: keeps up to `depth` ids in flight on a single
/// connection, matches responses by id in whatever order they return,
/// and on a connection death reconnects (with the same backoff budget as
/// the sequential client) and reissues every outstanding id.
#[allow(clippy::too_many_arguments)]
fn run_pipelined_client(
    remote: &RemoteSpec,
    depth: usize,
    mut salt: u64,
    spec: &LoadSpec,
    lines: &[String],
    next: &AtomicUsize,
    retries_made: &AtomicU64,
    tally: &Mutex<Tally>,
    start: Instant,
    interval: Option<Duration>,
) {
    let addrs = remote.addrs();
    let mut conn: Option<BufReader<TcpStream>> = None;
    let mut target = salt as usize % addrs.len();
    let mut outstanding: HashMap<u64, Pending> = HashMap::new();
    let mut order: VecDeque<u64> = VecDeque::new();
    let mut exhausted = false;
    let mut attempt = 0u32;
    loop {
        // (Re)establish the connection, reissuing everything outstanding
        // oldest-first (the protocol is stateless per line, so a reissue
        // is safe). Each reissue restamps `last_send`, so the last-send
        // latency measures only the attempt that gets answered.
        if conn.is_none() {
            let established = TcpStream::connect(addrs[target % addrs.len()])
                .ok()
                .and_then(|s| {
                    let mut reader = BufReader::new(s);
                    for id in &order {
                        let pending = outstanding.get_mut(id).expect("order tracks outstanding");
                        pending.last_send = Instant::now();
                        reader.get_mut().write_all(pending.line.as_bytes()).ok()?;
                        reader.get_mut().write_all(b"\n").ok()?;
                    }
                    Some(reader)
                });
            match established {
                Some(reader) => conn = Some(reader),
                None => {
                    target = target.wrapping_add(1) % addrs.len();
                    if attempt >= remote.retries {
                        // Budget exhausted: fail the whole window like the
                        // sequential client fails its one request, then
                        // start fresh on the remainder.
                        let mut t = lock_recover(tally);
                        t.wire_errors += outstanding.len() as u64;
                        drop(t);
                        outstanding.clear();
                        order.clear();
                        attempt = 0;
                        if exhausted {
                            return;
                        }
                        continue;
                    }
                    retries_made.fetch_add(1, Ordering::Relaxed);
                    salt = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    std::thread::sleep(backoff_delay(attempt, salt));
                    attempt += 1;
                    continue;
                }
            }
        }
        // Fill the window, writing each request as it is claimed.
        while !exhausted && outstanding.len() < depth {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= spec.requests {
                exhausted = true;
                break;
            }
            if let Some(step) = interval {
                let slot = start + step * i as u32;
                let now = Instant::now();
                if slot > now {
                    std::thread::sleep(slot - now);
                }
            }
            let id = i as u64;
            let line = line_with_id(&lines[i % lines.len()], id);
            let wrote = conn.as_mut().is_some_and(|reader| {
                reader.get_mut().write_all(line.as_bytes()).is_ok()
                    && reader.get_mut().write_all(b"\n").is_ok()
            });
            let now = Instant::now();
            outstanding.insert(
                id,
                Pending {
                    line,
                    first_send: now,
                    last_send: now,
                },
            );
            order.push_back(id);
            if !wrote {
                conn = None;
                target = target.wrapping_add(1) % addrs.len();
                break;
            }
        }
        if conn.is_none() {
            continue;
        }
        if outstanding.is_empty() {
            return; // exhausted and fully answered
        }
        // Read one reply and match it to its id.
        let mut reply = String::new();
        let read = conn
            .as_mut()
            .map(|reader| reader.read_line(&mut reply))
            .expect("connection established above");
        match read {
            Ok(n) if n > 0 => {
                attempt = 0;
                match proto::decode_response_line(reply.trim()) {
                    Ok((Some(id), response)) if outstanding.contains_key(&id) => {
                        let pos = order
                            .iter()
                            .position(|&x| x == id)
                            .expect("outstanding ids are ordered");
                        order.remove(pos);
                        let pending = outstanding.remove(&id).expect("checked above");
                        let us = pending
                            .first_send
                            .elapsed()
                            .as_micros()
                            .min(u128::from(u64::MAX)) as u64;
                        let us_last = pending
                            .last_send
                            .elapsed()
                            .as_micros()
                            .min(u128::from(u64::MAX)) as u64;
                        let mut t = lock_recover(tally);
                        if pos > 0 {
                            t.out_of_order += 1;
                            t.reorder_depth_max = t.reorder_depth_max.max(pos as u64);
                        }
                        tally_response(&mut t, Some(response), us, us_last);
                    }
                    other => {
                        // An id-less line (e.g. a shed error written at
                        // accept) or an unknown id: charge it to the
                        // oldest outstanding request.
                        if let Some(id) = order.pop_front() {
                            let pending =
                                outstanding.remove(&id).expect("order tracks outstanding");
                            let us = pending
                                .first_send
                                .elapsed()
                                .as_micros()
                                .min(u128::from(u64::MAX))
                                as u64;
                            let us_last = pending
                                .last_send
                                .elapsed()
                                .as_micros()
                                .min(u128::from(u64::MAX))
                                as u64;
                            let response = other.ok().map(|(_, r)| r);
                            tally_response(&mut lock_recover(tally), response, us, us_last);
                        }
                    }
                }
            }
            _ => {
                // EOF or transport error with a window in flight.
                conn = None;
                target = target.wrapping_add(1) % addrs.len();
                if attempt >= remote.retries {
                    let mut t = lock_recover(tally);
                    t.wire_errors += outstanding.len() as u64;
                    drop(t);
                    outstanding.clear();
                    order.clear();
                    attempt = 0;
                    if exhausted {
                        return;
                    }
                    continue;
                }
                retries_made.fetch_add(1, Ordering::Relaxed);
                salt = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
                std::thread::sleep(backoff_delay(attempt, salt));
                attempt += 1;
            }
        }
    }
}

/// One batched client: claims `batch` request indices per window, sends
/// them as a single `SolveBatch` line (ids = request indices), and reads
/// the per-query responses back, matching them by id. A transport error
/// reissues the whole line (the protocol is stateless per line); a
/// window that exhausts its retry budget is charged to `wire_errors`
/// query by query, like the sequential client's single request.
#[allow(clippy::too_many_arguments)]
fn run_batched_client(
    remote: &RemoteSpec,
    batch: usize,
    salt: u64,
    spec: &LoadSpec,
    pool: &[krsp::Instance],
    next: &AtomicUsize,
    retries_made: &AtomicU64,
    tally: &Mutex<Tally>,
    start: Instant,
    interval: Option<Duration>,
) {
    let mut client = WireClient::new(&remote.addr, remote.retries, salt);
    loop {
        let base = next.fetch_add(batch, Ordering::Relaxed);
        if base >= spec.requests {
            return;
        }
        let count = batch.min(spec.requests - base);
        if let Some(step) = interval {
            // The whole window departs on its first query's arrival slot:
            // batching trades per-query pacing for amortization.
            let slot = start + step * base as u32;
            let now = Instant::now();
            if slot > now {
                std::thread::sleep(slot - now);
            }
        }
        let queries: Vec<BatchQuery> = (0..count)
            .map(|j| BatchQuery {
                id: (base + j) as u64,
                instance: pool[(base + j) % pool.len()].clone(),
                deadline_ms: spec.deadline_ms,
                kernel: spec.kernel,
            })
            .collect();
        let line =
            match serde_json::to_string(&WireRequest::SolveBatch(SolveBatchRequest { queries })) {
                Ok(line) => line,
                Err(_) => {
                    // Unreachable in practice: the pool pre-serialized.
                    lock_recover(tally).wire_errors += count as u64;
                    continue;
                }
            };
        let first_send = Instant::now();
        match client.roundtrip_many(&line, count, retries_made) {
            Ok((last_send, replies)) => {
                let mut expected: VecDeque<u64> = (base as u64..(base + count) as u64).collect();
                for (received, reply) in replies {
                    let us = received
                        .duration_since(first_send)
                        .as_micros()
                        .min(u128::from(u64::MAX)) as u64;
                    let us_last = received
                        .duration_since(last_send)
                        .as_micros()
                        .min(u128::from(u64::MAX)) as u64;
                    match proto::decode_response_line(reply.trim()) {
                        Ok((Some(id), response)) if expected.contains(&id) => {
                            let pos = expected
                                .iter()
                                .position(|&x| x == id)
                                .expect("checked contains above");
                            expected.remove(pos);
                            let mut t = lock_recover(tally);
                            if pos > 0 {
                                t.out_of_order += 1;
                                t.reorder_depth_max = t.reorder_depth_max.max(pos as u64);
                            }
                            tally_response(&mut t, Some(response), us, us_last);
                        }
                        other => {
                            // An id-less or unknown-id line: charge it to
                            // the oldest unanswered query in the window.
                            if expected.pop_front().is_some() {
                                let response = other.ok().map(|(_, r)| r);
                                tally_response(&mut lock_recover(tally), response, us, us_last);
                            }
                        }
                    }
                }
            }
            Err(_) => lock_recover(tally).wire_errors += count as u64,
        }
    }
}

/// Replays `spec` over the NDJSON wire protocol against the server (or
/// comma-separated servers) at `remote.addr`, one TCP connection per
/// client thread. With multiple targets, clients spread their initial
/// connections across the list and rotate to the next target on each
/// reconnect.
///
/// Transport errors reconnect and reissue with backoff; a request that
/// exhausts its retry budget is tallied under `wire_errors` rather than
/// failing the replay. Answered requests contribute to two latency
/// distributions: [`LoadReport::latency`] from the first send (spans
/// retries and backoff) and [`LoadReport::latency_last_send`] from the
/// answered attempt's send. The final metrics snapshot is fetched over a
/// fresh connection (left at its default if the server is already gone).
///
/// With [`LoadSpec::pipeline`] > 1 each client keeps that many requests
/// in flight per connection, tagging them with ids and matching the
/// responses in completion order; the report then carries the observed
/// reordering (`out_of_order_replies`, `reorder_depth_max`) and per-id
/// latencies. A connection that dies mid-window reissues every
/// outstanding id on the replacement connection.
///
/// With [`LoadSpec::batch`] > 1 each client instead groups that many
/// claimed requests into a single `SolveBatch` line per round trip and
/// matches the per-query responses by id; per-query latency spans from
/// the batch line's send to the receipt of the response carrying that
/// query's id.
///
/// # Errors
/// Returns an error when a request line cannot be serialized or when
/// `pipeline` and `batch` are both above 1 (they prescribe conflicting
/// framings for the same connection) — transport failures are absorbed
/// into the report instead.
///
/// # Panics
/// Panics when no feasible instance can be generated from the spec.
pub fn run_remote(spec: &LoadSpec, remote: &RemoteSpec) -> std::io::Result<LoadReport> {
    let pool = build_pool(spec);
    assert!(
        !pool.is_empty(),
        "load spec generated no feasible instances"
    );
    let lines: Vec<String> = pool
        .iter()
        .map(|inst| {
            serde_json::to_string(&WireRequest::Solve(SolveRequest {
                instance: inst.clone(),
                deadline_ms: spec.deadline_ms,
                kernel: spec.kernel,
            }))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect::<std::io::Result<_>>()?;

    let next = AtomicUsize::new(0);
    let retries_made = AtomicU64::new(0);
    let tally = Mutex::new(Tally::default());
    let start = Instant::now();
    let interval = if spec.qps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / spec.qps))
    } else {
        None
    };

    let depth = spec.pipeline.max(1);
    let batch = spec.batch.max(1);
    if depth > 1 && batch > 1 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "pipeline and batch are mutually exclusive",
        ));
    }
    std::thread::scope(|s| {
        for c in 0..spec.clients.max(1) {
            let (next, retries_made, tally, lines, pool) =
                (&next, &retries_made, &tally, &lines, &pool);
            let salt = spec.seed ^ (c as u64 + 1);
            if batch > 1 {
                s.spawn(move || {
                    run_batched_client(
                        remote,
                        batch,
                        salt,
                        spec,
                        pool,
                        next,
                        retries_made,
                        tally,
                        start,
                        interval,
                    );
                });
                continue;
            }
            if depth > 1 {
                s.spawn(move || {
                    run_pipelined_client(
                        remote,
                        depth,
                        salt,
                        spec,
                        lines,
                        next,
                        retries_made,
                        tally,
                        start,
                        interval,
                    );
                });
                continue;
            }
            let mut client = WireClient::new(&remote.addr, remote.retries, salt);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= spec.requests {
                    break;
                }
                if let Some(step) = interval {
                    let slot = start + step * i as u32;
                    let now = Instant::now();
                    if slot > now {
                        std::thread::sleep(slot - now);
                    }
                }
                let first_send = Instant::now();
                let reply = client.roundtrip(&lines[i % lines.len()], retries_made);
                let received = Instant::now();
                let (last_send, response) = match reply {
                    Ok((sent, r)) => (sent, serde_json::from_str::<WireResponse>(r.trim()).ok()),
                    Err(_) => (first_send, None),
                };
                let us = received
                    .duration_since(first_send)
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64;
                let us_last = received
                    .duration_since(last_send)
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64;
                tally_response(&mut lock_recover(tally), response, us, us_last);
            });
        }
    });

    let wall = start.elapsed();
    let t = tally.into_inner().unwrap_or_else(|e| e.into_inner());
    let metrics_line =
        serde_json::to_string(&WireRequest::Metrics).unwrap_or_else(|_| "\"Metrics\"".to_string());
    let service_metrics = WireClient::new(&remote.addr, remote.retries, spec.seed)
        .roundtrip(&metrics_line, &retries_made)
        .ok()
        .and_then(|(_, r)| serde_json::from_str::<WireResponse>(r.trim()).ok())
        .and_then(|r| match r {
            WireResponse::Metrics(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    Ok(build_report(
        spec.requests as u64,
        wall,
        t,
        retries_made.load(Ordering::Relaxed),
        depth as u64,
        batch as u64,
        service_metrics,
    ))
}

/// Shape of a rolling-update replay: windows of repeat traffic separated
/// by epoch advances that ramp a few edge costs, exercising the
/// epoch-aware cache (retention + warm starts) instead of the cold path a
/// plain replay with mutated weights would take.
#[derive(Clone, Debug)]
pub struct RollingSpec {
    /// Replay windows. The first runs against the freshly registered
    /// lineages at epoch 0; each later window runs after one epoch
    /// advance per lineage.
    pub windows: usize,
    /// Edges whose cost is ramped in each advance (per lineage).
    pub ramp_edges: usize,
    /// Cost scale numerator: each picked edge's cost becomes
    /// `ceil(cost · num / den)`. `num ≥ den` keeps the delta
    /// non-decreasing, which is what lets untouched entries survive.
    pub ramp_num: i64,
    /// Cost scale denominator.
    pub ramp_den: i64,
}

impl Default for RollingSpec {
    fn default() -> Self {
        RollingSpec {
            windows: 3,
            ramp_edges: 1,
            ramp_num: 11,
            ramp_den: 10,
        }
    }
}

/// One window of a rolling replay: its traffic outcome plus what the
/// epoch advance that *preceded* it did to the cache (zeros for the
/// first window — nothing precedes it).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window index (0-based).
    pub window: u64,
    /// Requests issued in this window.
    pub issued: u64,
    /// Requests answered with a solution.
    pub completed: u64,
    /// Answers served from the cache (memory or disk tier).
    pub cache_hits: u64,
    /// Structured error replies and exhausted-retry transport failures.
    pub wire_errors: u64,
    /// Warm-started fresh solves during this window (server-side counter
    /// delta across the window).
    pub warm_starts: u64,
    /// Disk-tier hits during this window (server-side counter delta).
    pub disk_hits: u64,
    /// Cached entries the preceding advance rekeyed into the new epoch.
    pub advance_retained: u64,
    /// Cached entries the preceding advance evicted.
    pub advance_evicted: u64,
    /// Warm-start seeds the preceding advance left waiting.
    pub advance_seeds: u64,
    /// Latency over all answered requests in this window.
    pub latency: LatencySummary,
    /// Latency over this window's cache hits only.
    pub latency_cache_hit: LatencySummary,
    /// Latency over this window's cache misses only.
    pub latency_cache_miss: LatencySummary,
}

/// The outcome of a rolling-update replay, serializable for `results/`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RollingReport {
    /// Topology lineages registered (one per distinct instance).
    pub lineages: u64,
    /// Replay windows in order.
    pub windows: Vec<WindowReport>,
    /// Reconnect-and-reissue attempts across the whole replay.
    pub transport_retries: u64,
    /// The server's counters after the final window.
    pub service_metrics: MetricsSnapshot,
}

/// Fetches the server's metrics snapshot over `client`; a server that
/// cannot answer yields the default (all-zero) snapshot, mirroring
/// [`run_remote`]'s final fetch.
fn fetch_metrics(client: &mut WireClient, retries_made: &AtomicU64) -> MetricsSnapshot {
    let line =
        serde_json::to_string(&WireRequest::Metrics).unwrap_or_else(|_| "\"Metrics\"".to_string());
    client
        .roundtrip(&line, retries_made)
        .ok()
        .and_then(|(_, r)| serde_json::from_str::<WireResponse>(r.trim()).ok())
        .and_then(|r| match r {
            WireResponse::Metrics(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default()
}

/// Replays a rolling-update scenario over the wire: registers every pool
/// instance's topology as a lineage, then alternates traffic windows with
/// epoch advances whose cost ramps are mirrored onto the client-side
/// instances (so each window's requests match the lineage's *current*
/// weights and land in the epoch-scoped cache lane rather than missing
/// into canonical keys).
///
/// Each window's report carries both client-side outcomes (completion,
/// hits, exact latency order statistics) and server-side counter deltas
/// (`warm_starts`, `disk_hits`) captured from metrics snapshots bracketing
/// the window, plus what the preceding advance retained/evicted/seeded.
///
/// # Errors
/// Returns an error when registration fails (transport or a non-
/// `Registered` reply), when a request line cannot be serialized, or when
/// a ramped instance no longer validates — transport failures *during* a
/// window are absorbed into that window's `wire_errors` instead.
///
/// # Panics
/// Panics when no feasible instance can be generated from the spec.
pub fn run_rolling(
    spec: &LoadSpec,
    rolling: &RollingSpec,
    remote: &RemoteSpec,
) -> std::io::Result<RollingReport> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut pool = build_pool(spec);
    assert!(
        !pool.is_empty(),
        "load spec generated no feasible instances"
    );

    let retries_made = AtomicU64::new(0);
    let mut client = WireClient::new(&remote.addr, remote.retries, spec.seed);

    // Register every instance's topology; the handle (a hex structural
    // digest) names the lineage in later Epoch advances.
    let mut topos: Vec<String> = Vec::with_capacity(pool.len());
    for inst in &pool {
        let line = serde_json::to_string(&WireRequest::Register(proto::RegisterRequest {
            graph: inst.graph.clone(),
        }))
        .map_err(|e| invalid(e.to_string()))?;
        let (_, reply) = client.roundtrip(&line, &retries_made)?;
        match serde_json::from_str::<WireResponse>(reply.trim()) {
            Ok(WireResponse::Registered(r)) => topos.push(r.topo),
            other => {
                return Err(invalid(format!(
                    "registration got a non-Registered reply: {other:?}"
                )))
            }
        }
    }

    let mut windows = Vec::with_capacity(rolling.windows.max(1));
    let mut last_metrics = MetricsSnapshot::default();
    for w in 0..rolling.windows.max(1) {
        // Between windows: one epoch advance per lineage, mirrored onto
        // the client-side instance so its weights keep matching.
        let (mut retained, mut evicted, mut seeds) = (0u64, 0u64, 0u64);
        if w > 0 {
            for (i, inst) in pool.iter_mut().enumerate() {
                let changes = krsp_gen::cost_ramp(
                    &inst.graph,
                    rolling.ramp_edges,
                    rolling.ramp_num,
                    rolling.ramp_den,
                    spec.seed
                        .wrapping_add(7919 * w as u64)
                        .wrapping_add(i as u64),
                );
                let wire: Vec<proto::WireChange> = changes
                    .iter()
                    .map(|c| proto::WireChange {
                        edge: c.edge.0,
                        cost: c.cost,
                        delay: c.delay,
                    })
                    .collect();
                let line = serde_json::to_string(&WireRequest::Epoch(proto::EpochRequest {
                    topo: topos[i].clone(),
                    changes: wire,
                }))
                .map_err(|e| invalid(e.to_string()))?;
                let (_, reply) = client.roundtrip(&line, &retries_made)?;
                match serde_json::from_str::<WireResponse>(reply.trim()) {
                    Ok(WireResponse::Epoch(r)) => {
                        retained += r.retained;
                        evicted += r.evicted;
                        seeds += r.seeds;
                    }
                    other => {
                        return Err(invalid(format!(
                            "epoch advance got a non-Epoch reply: {other:?}"
                        )))
                    }
                }
                let graph = krsp_gen::apply_changes(&inst.graph, &changes);
                *inst = krsp::Instance::new(graph, inst.s, inst.t, inst.k, inst.delay_bound)
                    .map_err(|e| invalid(format!("ramped instance no longer validates: {e}")))?;
            }
        }

        let lines: Vec<String> = pool
            .iter()
            .map(|inst| {
                serde_json::to_string(&WireRequest::Solve(SolveRequest {
                    instance: inst.clone(),
                    deadline_ms: spec.deadline_ms,
                    kernel: spec.kernel,
                }))
                .map_err(|e| invalid(e.to_string()))
            })
            .collect::<std::io::Result<_>>()?;

        let before = fetch_metrics(&mut client, &retries_made);
        let mut t = Tally::default();
        for i in 0..spec.requests {
            let first_send = Instant::now();
            let reply = client.roundtrip(&lines[i % lines.len()], &retries_made);
            let received = Instant::now();
            let (last_send, response) = match reply {
                Ok((sent, r)) => (sent, serde_json::from_str::<WireResponse>(r.trim()).ok()),
                Err(_) => (first_send, None),
            };
            let us = received
                .duration_since(first_send)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let us_last = received
                .duration_since(last_send)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            tally_response(&mut t, response, us, us_last);
        }
        let after = fetch_metrics(&mut client, &retries_made);

        let all: Vec<u64> = t
            .hit_latencies
            .iter()
            .chain(t.miss_latencies.iter())
            .copied()
            .collect();
        windows.push(WindowReport {
            window: w as u64,
            issued: spec.requests as u64,
            completed: t.completed,
            cache_hits: t.cache_hits,
            wire_errors: t.wire_errors,
            warm_starts: after.warm_starts.saturating_sub(before.warm_starts),
            disk_hits: after.disk_hits.saturating_sub(before.disk_hits),
            advance_retained: retained,
            advance_evicted: evicted,
            advance_seeds: seeds,
            latency: LatencySummary::from_samples(all),
            latency_cache_hit: LatencySummary::from_samples(t.hit_latencies),
            latency_cache_miss: LatencySummary::from_samples(t.miss_latencies),
        });
        last_metrics = after;
    }

    Ok(RollingReport {
        lineages: pool.len() as u64,
        windows,
        transport_retries: retries_made.load(Ordering::Relaxed),
        service_metrics: last_metrics,
    })
}

/// Formats a human-readable one-screen summary of a rolling replay: one
/// line per window.
#[must_use]
pub fn render_rolling(report: &RollingReport) -> String {
    let mut out = format!("lineages {}  windows:", report.lineages);
    for w in &report.windows {
        out.push_str(&format!(
            "\n  w{}: completed {}/{}  hits {}  warm {}  disk {}  \
             advance(retained/evicted/seeds) {}/{}/{}  p50 {} µs (hit {} | miss {})",
            w.window,
            w.completed,
            w.issued,
            w.cache_hits,
            w.warm_starts,
            w.disk_hits,
            w.advance_retained,
            w.advance_evicted,
            w.advance_seeds,
            w.latency.p50_us,
            w.latency_cache_hit.p50_us,
            w.latency_cache_miss.p50_us,
        ));
    }
    out
}

/// Formats a human-readable one-screen summary of a report.
#[must_use]
pub fn render(report: &LoadReport) -> String {
    let r = report;
    let rung_line = Rung::LADDER
        .iter()
        .map(|rg| format!("{rg}={}{}", r.per_rung[rg.index()], rg.guarantee()))
        .collect::<Vec<_>>()
        .join(" ");
    let pipeline_line = if r.pipeline_depth > 1 {
        format!(
            "\npipeline: depth {}  out-of-order {}  (max reorder depth {})",
            r.pipeline_depth, r.out_of_order_replies, r.reorder_depth_max
        )
    } else if r.batch_size > 1 {
        format!(
            "\nbatch: size {}  out-of-order {}  (max reorder depth {})",
            r.batch_size, r.out_of_order_replies, r.reorder_depth_max
        )
    } else {
        String::new()
    };
    let retry_line = if r.transport_retries > 0 {
        format!(
            "\nlast-send µs: p50 {}  p99 {}  max {}  (excludes reconnect backoff)",
            r.latency_last_send.p50_us, r.latency_last_send.p99_us, r.latency_last_send.max_us
        )
    } else {
        String::new()
    };
    format!(
        "issued {}  completed {}  rejected(queue/deadline) {}/{}  infeasible {}  errors {}  retries {}\n\
         wall {:.3}s  throughput {:.1} req/s  deadline-missed {}\n\
         latency µs: p50 {}  p95 {}  p99 {}  mean {:.0}  max {}{retry_line}\n\
         cache: hits {}  coalesced {}  (hit p50 {} µs | miss p50 {} µs)\n\
         rungs: {rung_line}{pipeline_line}",
        r.issued,
        r.completed,
        r.rejected_queue_full,
        r.rejected_expired,
        r.infeasible,
        r.wire_errors,
        r.transport_retries,
        r.wall_s,
        r.achieved_qps,
        r.deadline_missed,
        r.latency.p50_us,
        r.latency.p95_us,
        r.latency.p99_us,
        r.latency.mean_us,
        r.latency.max_us,
        r.cache_hits,
        r.coalesced,
        r.latency_cache_hit.p50_us,
        r.latency_cache_miss.p50_us,
    )
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn replay_reaches_the_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let spec = LoadSpec {
            requests: 24,
            unique: 3,
            clients: 2,
            n: 24,
            ..LoadSpec::default()
        };
        let report = run(&svc, &spec);
        assert_eq!(report.issued, 24);
        assert_eq!(
            report.completed + report.infeasible + report.rejected_queue_full,
            24
        );
        assert!(report.cache_hits > 0, "no cache hits in cycled replay");
        assert!(report.latency.count >= report.cache_hits);
        let text = serde_json::to_string(&report).unwrap();
        let back: LoadReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.completed, report.completed);
        assert!(!render(&report).is_empty());
    }

    #[test]
    fn spliced_id_matches_the_canonical_encoder() {
        let spec = LoadSpec {
            unique: 1,
            n: 24,
            ..LoadSpec::default()
        };
        let inst = build_pool(&spec).remove(0);
        let req = WireRequest::Solve(SolveRequest {
            instance: inst,
            deadline_ms: Some(250),
            kernel: None,
        });
        let plain = serde_json::to_string(&req).unwrap();
        assert_eq!(
            line_with_id(&plain, 7),
            proto::encode_request_with_id(7, &req)
        );
    }

    #[test]
    fn latency_summary_is_exact() {
        let s = LatencySummary::from_samples((1..=100).collect());
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn quantile_rank_is_exact_past_f64_mantissa() {
        // `count as f64` rounds once count exceeds the 53-bit mantissa, so
        // the old `(q * count as f64).ceil()` rank loses the top sample
        // even at q = 1.0. The fixed-point rank must not.
        let count = (1u64 << 53) + 1;
        assert_eq!(quantile_rank(1.0, count), count);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        let old = (1.0f64 * count as f64).ceil() as u64;
        assert!(
            old < count,
            "the f64 formula must misround here or this regression is vacuous"
        );
        // In the exactly-representable range the two ranks agree.
        for count in [1u64, 2, 3, 7, 100, 1000] {
            for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
                let old = ((q * count as f64).ceil() as u64).clamp(1, count);
                assert_eq!(quantile_rank(q, count), old, "q={q} count={count}");
            }
        }
    }

    #[test]
    fn empty_samples_summarize_to_zeros_not_nan() {
        let s = LatencySummary::from_samples(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.max_us, 0);
        assert!(
            s.mean_us == 0.0 && s.mean_us.is_finite(),
            "empty replay must report a zero mean, not 0/0 = NaN"
        );
        // NaN would serialize as `null` and fail to deserialize back into
        // an f64 — the report must survive a JSON round trip.
        let text = serde_json::to_string(&s).unwrap();
        assert!(!text.contains("null"), "NaN leaked into the JSON: {text}");
        let back: LatencySummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back.count, 0);
    }

    #[test]
    fn batched_replay_round_trips_over_the_wire() {
        use crate::proto::serve_on;
        use std::net::TcpListener;

        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }
        let spec = LoadSpec {
            requests: 24,
            unique: 2,
            clients: 2,
            batch: 4,
            n: 24,
            ..LoadSpec::default()
        };
        let remote = RemoteSpec {
            addr: addr.to_string(),
            retries: 2,
        };
        let report = run_remote(&spec, &remote).unwrap();
        assert_eq!(report.issued, 24);
        assert_eq!(report.batch_size, 4);
        assert_eq!(report.wire_errors, 0, "batched replay hit wire errors");
        assert_eq!(
            report.completed + report.infeasible + report.rejected_queue_full,
            24,
            "every batched query must be answered exactly once"
        );
        assert!(report.latency.count > 0);
        assert!(render(&report).contains("batch: size 4"));

        // pipeline and batch together is an input error, not a replay.
        let bad = LoadSpec {
            pipeline: 2,
            batch: 2,
            ..spec
        };
        assert!(run_remote(&bad, &remote).is_err());
    }

    #[test]
    fn remote_spec_splits_and_never_yields_an_empty_list() {
        let spec = RemoteSpec {
            addr: "a:1, b:2 ,,c:3".to_string(),
            retries: 0,
        };
        assert_eq!(spec.addrs(), vec!["a:1", "b:2", "c:3"]);
        let empty = RemoteSpec {
            addr: String::new(),
            retries: 0,
        };
        assert_eq!(empty.addrs(), vec![""]);
    }

    #[test]
    fn retried_requests_rotate_targets_and_report_both_latency_views() {
        use crate::proto::serve_on;
        use std::net::TcpListener;

        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        // A dead target (bound then dropped, so connects are refused) in
        // front of a live one: the client must start on the dead target,
        // burn one retry with backoff, rotate, and complete everything.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }
        // One client: salt = seed ^ 1 must be even so the initial target
        // (salt % 2) is the dead address.
        let spec = LoadSpec {
            requests: 8,
            unique: 2,
            clients: 1,
            seed: 43, // 43 ^ 1 == 42
            n: 24,
            ..LoadSpec::default()
        };
        let remote = RemoteSpec {
            addr: format!("{dead},{live}"),
            retries: 2,
        };
        let report = run_remote(&spec, &remote).unwrap();
        assert_eq!(
            report.wire_errors, 0,
            "rotation did not reach the live target"
        );
        assert_eq!(report.completed + report.infeasible, 8);
        assert!(
            report.transport_retries >= 1,
            "the dead target must have cost at least one retry"
        );
        // Both distributions cover every answered request; the first-send
        // view additionally carries the reconnect backoff (≥ 5 ms for the
        // first attempt), the last-send view must not.
        assert_eq!(report.latency_last_send.count, report.latency.count);
        assert!(
            report.latency.max_us >= 5_000,
            "first-send latency should include the backoff: {:?}",
            report.latency
        );
        assert!(
            report.latency.max_us >= report.latency_last_send.max_us,
            "last-send latency exceeded first-send: {:?} vs {:?}",
            report.latency_last_send,
            report.latency
        );
        assert!(render(&report).contains("last-send"));
    }

    #[test]
    fn rolling_replay_advances_epochs_between_windows() {
        use crate::proto::serve_on;
        use std::net::TcpListener;

        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let _ = serve_on(&svc, listener);
            });
        }
        let spec = LoadSpec {
            requests: 8,
            unique: 2,
            clients: 1,
            n: 24,
            ..LoadSpec::default()
        };
        let rolling = RollingSpec {
            windows: 3,
            ramp_edges: 1,
            ramp_num: 11,
            ramp_den: 10,
        };
        let remote = RemoteSpec {
            addr: addr.to_string(),
            retries: 2,
        };
        let report = run_rolling(&spec, &rolling, &remote).unwrap();
        assert_eq!(report.lineages, 2);
        assert_eq!(report.windows.len(), 3);
        for w in &report.windows {
            assert_eq!(w.issued, 8);
            assert_eq!(w.wire_errors, 0, "window {} hit wire errors", w.window);
            assert_eq!(w.completed, 8, "window {} lost answers", w.window);
        }
        // Cycling 2 instances through 8 requests repeats each 4× — the
        // repeats must hit the (epoch-scoped) cache in every window.
        assert!(
            report.windows.iter().all(|w| w.cache_hits >= 4),
            "epoch-scoped keys missed the cache: {report:?}"
        );
        // The first window has no preceding advance; every later one
        // swept each lineage's cache and accounted every entry.
        assert_eq!(report.windows[0].advance_retained, 0);
        assert_eq!(report.windows[0].advance_evicted, 0);
        for w in &report.windows[1..] {
            assert!(
                w.advance_retained + w.advance_evicted > 0,
                "advance before window {} touched no entries: {report:?}",
                w.window
            );
        }
        assert!(report.service_metrics.epoch_advances >= 4);
        let text = serde_json::to_string(&report).unwrap();
        let back: RollingReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.windows.len(), 3);
        assert!(render_rolling(&report).contains("w2:"));
    }
}
