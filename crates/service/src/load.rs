//! Closed-loop load generator: replays `krsp-gen` workloads against an
//! in-process [`Service`] at a target arrival rate.
//!
//! Each request is assigned a scheduled start time on a fixed-rate arrival
//! clock (`i / qps`); client threads pick requests off a shared index,
//! sleep until their slot, and issue them. Latencies are recorded exactly
//! (client-side, every sample kept), so the reported percentiles are true
//! order statistics rather than histogram reconstructions. The report is
//! serializable — `krsp-load` prints it as JSON for committing under
//! `results/`.

use crate::degrade::Rung;
use crate::metrics::MetricsSnapshot;
use crate::service::{Rejection, Request, Service};
use krsp_gen::{Family, Regime, Workload};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What to replay.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Total requests to issue.
    pub requests: usize,
    /// Target arrival rate in requests/second; 0 = open throttle.
    pub qps: f64,
    /// Number of distinct instances cycled round-robin (1 = pure cache-hit
    /// traffic after warmup; `requests` = pure miss traffic).
    pub unique: usize,
    /// Client threads issuing requests.
    pub clients: usize,
    /// Topology family for the generated instances.
    pub family: Family,
    /// Node count per instance.
    pub n: usize,
    /// Disjoint paths per request.
    pub k: usize,
    /// Delay-budget tightness ∈ (0, 1].
    pub tightness: f64,
    /// Base PRNG seed; instance `u` uses `seed + 1000·u`.
    pub seed: u64,
    /// Per-request deadline in milliseconds; `None` uses the service
    /// default.
    pub deadline_ms: Option<u64>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            requests: 200,
            qps: 0.0,
            unique: 20,
            clients: 4,
            family: Family::Gnm,
            n: 60,
            k: 2,
            tightness: 0.5,
            seed: 42,
            deadline_ms: None,
        }
    }
}

/// Exact latency statistics (µs) over one outcome class.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Mean.
    pub mean_us: f64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        LatencySummary {
            count: samples.len() as u64,
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            mean_us: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            max_us: *samples.last().expect("nonempty"),
        }
    }
}

/// One ladder rung's advertised guarantee plus its fresh-solve count in a
/// replay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RungGuarantee {
    /// Rung name (`full`, `single_probe`, `lp_rounding`, `min_delay`).
    pub rung: String,
    /// Fresh solves served at this rung.
    pub requests: u64,
    /// Advertised cost factor vs the LP lower bound; `None` = uncertified.
    pub cost_factor: Option<u32>,
    /// Advertised delay-bound relaxation factor.
    pub delay_factor: u32,
}

/// The replay outcome, serializable for `results/`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests answered with a solution.
    pub completed: u64,
    /// Requests rejected by backpressure.
    pub rejected_queue_full: u64,
    /// Requests rejected by strict deadline enforcement.
    pub rejected_expired: u64,
    /// Requests that proved infeasible.
    pub infeasible: u64,
    /// Answers that arrived past their deadline.
    pub deadline_missed: u64,
    /// Answers served from the cache.
    pub cache_hits: u64,
    /// Answers that piggybacked on a concurrent identical request's solve
    /// (singleflight followers).
    pub coalesced: u64,
    /// Wall-clock duration of the replay in seconds.
    pub wall_s: f64,
    /// Achieved throughput (completed / wall).
    pub achieved_qps: f64,
    /// Fresh solves per rung (`[full, single_probe, lp_rounding,
    /// min_delay]`).
    pub per_rung: [u64; 4],
    /// The advertised approximation guarantee of every ladder rung,
    /// alongside how many fresh solves it served — so the report records
    /// which factor bound each answer carries.
    pub rung_guarantees: Vec<RungGuarantee>,
    /// Latency over all answered requests.
    pub latency: LatencySummary,
    /// Latency over cache hits only.
    pub latency_cache_hit: LatencySummary,
    /// Latency over cache misses only.
    pub latency_cache_miss: LatencySummary,
    /// The service's own counters after the run.
    pub service_metrics: MetricsSnapshot,
}

#[derive(Default)]
struct Tally {
    completed: u64,
    rejected_queue_full: u64,
    rejected_expired: u64,
    infeasible: u64,
    deadline_missed: u64,
    cache_hits: u64,
    coalesced: u64,
    per_rung: [u64; 4],
    hit_latencies: Vec<u64>,
    miss_latencies: Vec<u64>,
}

/// Builds the distinct instance pool for `spec`. Public so callers can
/// pre-validate a spec before replaying it.
#[must_use]
pub fn build_pool(spec: &LoadSpec) -> Vec<krsp::Instance> {
    (0..spec.unique.max(1))
        .filter_map(|u| {
            let w = Workload {
                family: spec.family,
                n: spec.n,
                m: spec.n * 4,
                regime: Regime::Anticorrelated,
                k: spec.k,
                tightness: spec.tightness,
                seed: spec.seed.wrapping_add(1000 * u as u64),
            };
            krsp_gen::instantiate_with_retries(w, 50)
        })
        .collect()
}

/// Replays `spec` against `service` and reports.
///
/// # Panics
/// Panics when no feasible instance can be generated from the spec.
#[must_use]
pub fn run(service: &Service, spec: &LoadSpec) -> LoadReport {
    let pool = build_pool(spec);
    assert!(
        !pool.is_empty(),
        "load spec generated no feasible instances"
    );

    let next = AtomicUsize::new(0);
    let tally = Mutex::new(Tally::default());
    let start = Instant::now();
    let interval = if spec.qps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / spec.qps))
    } else {
        None
    };

    std::thread::scope(|s| {
        for _ in 0..spec.clients.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= spec.requests {
                    break;
                }
                if let Some(step) = interval {
                    let slot = start + step * i as u32;
                    let now = Instant::now();
                    if slot > now {
                        std::thread::sleep(slot - now);
                    }
                }
                let out = service.provision(Request {
                    instance: pool[i % pool.len()].clone(),
                    deadline: spec.deadline_ms.map(Duration::from_millis),
                });
                let mut t = tally.lock().expect("tally poisoned");
                match out {
                    Ok(r) => {
                        t.completed += 1;
                        t.per_rung[r.rung.index()] += u64::from(!r.cache_hit && !r.coalesced);
                        t.deadline_missed += u64::from(r.deadline_missed);
                        t.cache_hits += u64::from(r.cache_hit);
                        t.coalesced += u64::from(r.coalesced);
                        let us = r.latency.as_micros().min(u128::from(u64::MAX)) as u64;
                        if r.cache_hit {
                            t.hit_latencies.push(us);
                        } else {
                            t.miss_latencies.push(us);
                        }
                    }
                    Err(Rejection::QueueFull) => t.rejected_queue_full += 1,
                    Err(Rejection::DeadlineExpired) => t.rejected_expired += 1,
                    Err(Rejection::Infeasible | Rejection::ShuttingDown) => t.infeasible += 1,
                }
            });
        }
    });

    let wall = start.elapsed();
    let t = tally.into_inner().expect("tally poisoned");
    let all: Vec<u64> = t
        .hit_latencies
        .iter()
        .chain(t.miss_latencies.iter())
        .copied()
        .collect();
    LoadReport {
        issued: spec.requests as u64,
        completed: t.completed,
        rejected_queue_full: t.rejected_queue_full,
        rejected_expired: t.rejected_expired,
        infeasible: t.infeasible,
        deadline_missed: t.deadline_missed,
        cache_hits: t.cache_hits,
        coalesced: t.coalesced,
        wall_s: wall.as_secs_f64(),
        achieved_qps: if wall.as_secs_f64() > 0.0 {
            t.completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        per_rung: t.per_rung,
        rung_guarantees: Rung::LADDER
            .iter()
            .map(|&rg| {
                let g = rg.guarantee();
                RungGuarantee {
                    rung: rg.to_string(),
                    requests: t.per_rung[rg.index()],
                    cost_factor: g.cost_factor,
                    delay_factor: g.delay_factor,
                }
            })
            .collect(),
        latency: LatencySummary::from_samples(all),
        latency_cache_hit: LatencySummary::from_samples(t.hit_latencies),
        latency_cache_miss: LatencySummary::from_samples(t.miss_latencies),
        service_metrics: service.metrics(),
    }
}

/// Formats a human-readable one-screen summary of a report.
#[must_use]
pub fn render(report: &LoadReport) -> String {
    let r = report;
    let rung_line = Rung::LADDER
        .iter()
        .map(|rg| format!("{rg}={}{}", r.per_rung[rg.index()], rg.guarantee()))
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "issued {}  completed {}  rejected(queue/deadline) {}/{}  infeasible {}\n\
         wall {:.3}s  throughput {:.1} req/s  deadline-missed {}\n\
         latency µs: p50 {}  p95 {}  p99 {}  mean {:.0}  max {}\n\
         cache: hits {}  coalesced {}  (hit p50 {} µs | miss p50 {} µs)\n\
         rungs: {rung_line}",
        r.issued,
        r.completed,
        r.rejected_queue_full,
        r.rejected_expired,
        r.infeasible,
        r.wall_s,
        r.achieved_qps,
        r.deadline_missed,
        r.latency.p50_us,
        r.latency.p95_us,
        r.latency.p99_us,
        r.latency.mean_us,
        r.latency.max_us,
        r.cache_hits,
        r.coalesced,
        r.latency_cache_hit.p50_us,
        r.latency_cache_miss.p50_us,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn replay_reaches_the_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let spec = LoadSpec {
            requests: 24,
            unique: 3,
            clients: 2,
            n: 24,
            ..LoadSpec::default()
        };
        let report = run(&svc, &spec);
        assert_eq!(report.issued, 24);
        assert_eq!(
            report.completed + report.infeasible + report.rejected_queue_full,
            24
        );
        assert!(report.cache_hits > 0, "no cache hits in cycled replay");
        assert!(report.latency.count >= report.cache_hits);
        let text = serde_json::to_string(&report).unwrap();
        let back: LoadReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.completed, report.completed);
        assert!(!render(&report).is_empty());
    }

    #[test]
    fn latency_summary_is_exact() {
        let s = LatencySummary::from_samples((1..=100).collect());
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.count, 100);
    }
}
