//! Request coalescing: one solver run per in-flight instance.
//!
//! Cache misses for the *same* canonical key routinely arrive together — a
//! failure storm re-requests one flow from many controllers at once, and
//! every copy missing the cache would otherwise pay for its own full
//! ladder solve. The singleflight table elects the first requester as the
//! **leader**; everyone else joining while the solve is in flight becomes a
//! **follower** and blocks on the leader's flight entry instead of solving.
//! When the leader publishes, all followers receive a clone of the result.
//!
//! Two properties the service relies on:
//!
//! * **Followers wait off-worker.** The wait happens on the requesting
//!   client's thread (inside `Service::provision`), never on a resident
//!   pool worker — parking workers behind a job that itself needs a worker
//!   would deadlock the pool (see `Executor::on_worker_thread`).
//! * **Leaders cannot strand followers.** The leader handle publishes on
//!   drop if the owner forgot (or panicked past) `complete`; followers
//!   observing an aborted flight retry from scratch rather than hanging.
//!
//! The table is sharded like the cache, so coalescing adds no global lock.

use crate::hash::CacheKey;
use crate::sync_util::{lock_recover, wait_recover};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Flight<T> {
    /// `None` = still flying; `Some(None)` = leader aborted;
    /// `Some(Some(v))` = published.
    result: Mutex<Option<Option<T>>>,
    done: Condvar,
    waiters: AtomicUsize,
}

/// A sharded map from in-flight keys to their flight entries.
pub struct Singleflight<T> {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<Flight<T>>>>>,
}

/// What [`Singleflight::join`] made of the caller.
pub enum Join<'a, T: Clone> {
    /// First requester for the key: solve, then [`Leader::complete`].
    Leader(Leader<'a, T>),
    /// A solve was already in flight; this is its published result, or
    /// `None` if the leader aborted (retry in that case).
    Follower(Option<T>),
}

/// The leader's obligation to publish. Dropping without
/// [`Leader::complete`] publishes an abort so followers never hang.
pub struct Leader<'a, T: Clone> {
    table: &'a Singleflight<T>,
    key: CacheKey,
    flight: Arc<Flight<T>>,
    published: bool,
}

impl<T: Clone> Singleflight<T> {
    /// A table with `shards` shards (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Singleflight {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<HashMap<CacheKey, Arc<Flight<T>>>> {
        &self.shards[((key.0 >> 64) % self.shards.len() as u128) as usize]
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// every concurrent caller blocks until the leader publishes and gets
    /// the result. **Blocks follower callers** — never call from a thread
    /// that the leader's solve needs to make progress.
    #[must_use]
    pub fn join(&self, key: CacheKey) -> Join<'_, T> {
        krsp_failpoint::fail_point!("singleflight.join");
        let flight = {
            let mut map = lock_recover(self.shard(key));
            match map.get(&key) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                        waiters: AtomicUsize::new(0),
                    });
                    map.insert(key, Arc::clone(&f));
                    return Join::Leader(Leader {
                        table: self,
                        key,
                        flight: f,
                        published: false,
                    });
                }
            }
        };
        flight.waiters.fetch_add(1, Ordering::AcqRel);
        let mut guard = lock_recover(&flight.result);
        while guard.is_none() {
            guard = wait_recover(&flight.done, guard);
        }
        Join::Follower(guard.clone().expect("checked above"))
    }

    /// Followers currently blocked on `key`'s flight (0 when none exists).
    /// Test/diagnostic surface — the count is racy by nature.
    #[must_use]
    pub fn waiters(&self, key: CacheKey) -> usize {
        let map = lock_recover(self.shard(key));
        map.get(&key)
            .map_or(0, |f| f.waiters.load(Ordering::Acquire))
    }
}

impl<T: Clone> Leader<'_, T> {
    /// Publishes `value` to every follower and retires the flight.
    pub fn complete(mut self, value: T) {
        self.publish(Some(value));
    }

    fn publish(&mut self, value: Option<T>) {
        self.published = true;
        // Retire the key first so late arrivals start a fresh flight (the
        // cache was already populated by the caller on success), then wake
        // the followers already holding the entry.
        lock_recover(self.table.shard(self.key)).remove(&self.key);
        *lock_recover(&self.flight.result) = Some(value);
        self.flight.done.notify_all();
    }
}

impl<T: Clone> Drop for Leader<'_, T> {
    fn drop(&mut self) {
        if !self.published {
            self.publish(None);
        }
    }
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn key(v: u128) -> CacheKey {
        CacheKey(v << 64 | v) // vary the shard-selecting upper half
    }

    #[test]
    fn leader_publishes_to_all_followers() {
        let sf: Arc<Singleflight<u64>> = Arc::new(Singleflight::new(4));
        let solves = AtomicU64::new(0);
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match sf.join(key(7)) {
                    Join::Leader(leader) => {
                        // Hold the flight open until everyone else piled in.
                        while sf.waiters(key(7)) < 7 {
                            std::thread::yield_now();
                        }
                        solves.fetch_add(1, Ordering::SeqCst);
                        leader.complete(42);
                    }
                    Join::Follower(v) => {
                        assert_eq!(v, Some(42));
                        got.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        assert_eq!(got.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf: Singleflight<u64> = Singleflight::new(4);
        let a = sf.join(key(1));
        let b = sf.join(key(2));
        match (a, b) {
            (Join::Leader(la), Join::Leader(lb)) => {
                la.complete(1);
                lb.complete(2);
            }
            _ => panic!("distinct keys must both lead"),
        }
        // Both flights retired: joining again leads anew.
        assert!(matches!(sf.join(key(1)), Join::Leader(_)));
    }

    #[test]
    fn dropped_leader_aborts_instead_of_hanging() {
        let sf: Arc<Singleflight<u64>> = Arc::new(Singleflight::new(1));
        let k = key(3);
        let leader = match sf.join(k) {
            Join::Leader(l) => l,
            Join::Follower(_) => unreachable!(),
        };
        let waiter = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || match sf.join(k) {
                Join::Follower(v) => v,
                Join::Leader(_) => panic!("flight already exists"),
            })
        };
        while sf.waiters(k) < 1 {
            std::thread::yield_now();
        }
        drop(leader); // no complete() — must publish the abort
        assert_eq!(waiter.join().unwrap(), None);
        // The key is free again.
        assert!(matches!(sf.join(k), Join::Leader(_)));
    }
}
