//! Disk-backed second cache tier: append-only segment files with an
//! in-memory index, so a drained or SIGKILL'd daemon restarts warm.
//!
//! Modeled on crash-safe artifact pools (append-only log + index): writers
//! only ever append whole records and `fsync` before publishing the index
//! entry, so the on-disk state is always a valid prefix plus at most one
//! torn tail record. Each record carries its own checksum; recovery scans
//! every segment, keeps each record that parses and checksums, and
//! truncates the active segment at the first torn byte so future appends
//! never interleave with garbage.
//!
//! ## Record format
//!
//! One NDJSON line per record:
//!
//! ```text
//! {"k":"<32-hex cache key>","c":"<16-hex FNV-1a64 of v>","v":<Degraded JSON>}
//! ```
//!
//! The key is hex-encoded because the vendored serde's integer content is
//! `i128` and 128-bit digests routinely exceed it. The checksum covers the
//! serialized value bytes exactly as written.
//!
//! ## Segments
//!
//! Records append to `seg-NNNNNNNN.log`; the file rotates at a fixed size
//! and the oldest segments are deleted once the tier exceeds its byte cap
//! (the in-memory index drops their keys with them). Within the index a
//! later record for a key shadows earlier ones, so refreshes are plain
//! appends.

use crate::degrade::Degraded;
use crate::hash::CacheKey;
use crate::sync_util::lock_recover;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Rotate the active segment once it grows past this many bytes.
const SEGMENT_BYTES: u64 = 4 << 20;

/// Where one record lives.
#[derive(Clone, Copy, Debug)]
struct Loc {
    seg: u64,
    off: u64,
    len: u32,
}

struct DiskInner {
    dir: PathBuf,
    cap: u64,
    index: HashMap<u128, Loc>,
    /// Byte length of every live segment, keyed by segment id (sorted
    /// iteration gives age order).
    segments: std::collections::BTreeMap<u64, u64>,
    /// Open handle on the active (highest-id) segment.
    active: Option<File>,
}

/// Counters for the disk tier (all monotone since open, except
/// `recovered`/`dropped`, which describe the opening scan).
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Index lookups that returned a deserialized record.
    pub hits: u64,
    /// Lookups that missed the index (or failed to read back).
    pub misses: u64,
    /// Records accepted by the recovery scan at open.
    pub recovered: u64,
    /// Records dropped by the recovery scan (torn or corrupt).
    pub dropped: u64,
}

/// The persistent tier. All methods take `&self`; a single mutex serializes
/// writers, lookups hit the shared index then read the segment file.
pub struct DiskCache {
    inner: Mutex<DiskInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    recovered: u64,
    dropped: u64,
}

impl DiskCache {
    /// Opens (or creates) the tier at `dir`, capping on-disk bytes at
    /// `cap` (0 = uncapped), and recovers every intact record.
    pub fn open(dir: &Path, cap: u64) -> io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        let mut index = HashMap::new();
        let mut segments = std::collections::BTreeMap::new();
        let (mut recovered, mut dropped) = (0u64, 0u64);

        let mut ids: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| segment_id(&e.ok()?.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();
        for (i, &seg) in ids.iter().enumerate() {
            let path = segment_path(dir, seg);
            let bytes = fs::read(&path)?;
            let (valid_end, kept, torn) = scan_segment(seg, &bytes, &mut index);
            recovered += kept;
            dropped += torn;
            let active_seg = i + 1 == ids.len();
            if active_seg && valid_end < bytes.len() as u64 {
                // Torn tail on the segment we will append to: cut it off so
                // new records never splice into garbage.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_end)?;
                f.sync_data()?;
            }
            segments.insert(
                seg,
                if active_seg {
                    valid_end
                } else {
                    bytes.len() as u64
                },
            );
        }

        let mut cache = DiskCache {
            inner: Mutex::new(DiskInner {
                dir: dir.to_path_buf(),
                cap,
                index,
                segments,
                active: None,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recovered,
            dropped,
        };
        // Enforce the cap on what recovery kept, oldest first.
        lock_recover(&cache.inner).enforce_cap()?;
        let _ = &mut cache;
        Ok(cache)
    }

    /// Number of live records in the index.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).index.len()
    }

    /// True when no records are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recovered: self.recovered,
            dropped: self.dropped,
        }
    }

    /// Looks up `key`, reading its record back from the owning segment.
    pub fn get(&self, key: CacheKey) -> Option<Degraded> {
        // Chaos hook: `cache.disk_read=err` simulates unreadable media.
        krsp_failpoint::fail_point!("cache.disk_read", |_msg| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        });
        let line = {
            let inner = lock_recover(&self.inner);
            let loc = match inner.index.get(&key.0) {
                Some(loc) => *loc,
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            read_record(&inner.dir, loc)
        };
        match line.ok().and_then(|raw| decode_record(&raw)) {
            Some((k, value)) if k == key.0 => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Appends a record for `key`, fsyncs it, then publishes the index
    /// entry. On any I/O failure the tier just misses later — it never
    /// blocks the solve path.
    pub fn put(&self, key: CacheKey, value: &Degraded) -> io::Result<()> {
        // Chaos hook: `cache.disk_write=err` simulates a full/failing disk.
        krsp_failpoint::fail_point!("cache.disk_write", |msg| Err(io::Error::other(msg)));
        let line = encode_record(key.0, value);
        let mut inner = lock_recover(&self.inner);
        inner.append(&line, key.0)
    }

    /// Drops `key` from the live index (quarantine purge), so lookups miss
    /// until a fresh `put`. The record's bytes stay in their segment —
    /// unreachable for the rest of this run; like the quarantine table
    /// itself, the purge does not survive a restart. Returns whether a
    /// record was indexed.
    pub fn remove(&self, key: CacheKey) -> bool {
        lock_recover(&self.inner).index.remove(&key.0).is_some()
    }

    /// The segment files currently on disk, oldest first (test hook for the
    /// kill-mid-write recovery suite).
    #[must_use]
    pub fn segment_files(&self) -> Vec<PathBuf> {
        let inner = lock_recover(&self.inner);
        inner
            .segments
            .keys()
            .map(|&seg| segment_path(&inner.dir, seg))
            .collect()
    }
}

impl DiskInner {
    fn append(&mut self, line: &str, key: u128) -> io::Result<()> {
        let seg = self.rotate_if_needed(line.len() as u64)?;
        let off = *self.segments.get(&seg).unwrap_or(&0);
        let file = match self.active.as_mut() {
            Some(f) => f,
            None => {
                let f = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(segment_path(&self.dir, seg))?;
                self.active.insert(f)
            }
        };
        file.write_all(line.as_bytes())?;
        // Publish order: data durable before the index points at it.
        file.sync_data()?;
        self.segments.insert(seg, off + line.len() as u64);
        self.index.insert(
            key,
            Loc {
                seg,
                off,
                len: line.len() as u32,
            },
        );
        self.enforce_cap()
    }

    /// The active segment id, rotating first when the incoming record
    /// would push it past [`SEGMENT_BYTES`].
    fn rotate_if_needed(&mut self, incoming: u64) -> io::Result<u64> {
        let (seg, len) = match self.segments.iter().next_back() {
            Some((&seg, &len)) => (seg, len),
            None => {
                self.segments.insert(0, 0);
                (0, 0)
            }
        };
        if len + incoming <= SEGMENT_BYTES || len == 0 {
            return Ok(seg);
        }
        self.active = None; // close the old handle
        let next = seg + 1;
        self.segments.insert(next, 0);
        // Make the rotation itself durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(next)
    }

    /// Deletes oldest segments (and their index entries) while the tier
    /// exceeds its byte cap; the active segment always survives.
    fn enforce_cap(&mut self) -> io::Result<()> {
        if self.cap == 0 {
            return Ok(());
        }
        while self.segments.len() > 1 && self.segments.values().sum::<u64>() > self.cap {
            let Some((&oldest, _)) = self.segments.iter().next() else {
                break;
            };
            let _ = fs::remove_file(segment_path(&self.dir, oldest));
            self.segments.remove(&oldest);
            self.index.retain(|_, loc| loc.seg != oldest);
        }
        Ok(())
    }
}

fn segment_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("seg-{seg:08}.log"))
}

fn segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn read_record(dir: &Path, loc: Loc) -> io::Result<String> {
    let mut f = File::open(segment_path(dir, loc.seg))?;
    f.seek(SeekFrom::Start(loc.off))?;
    let mut buf = vec![0u8; loc.len as usize];
    f.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::other("record is not UTF-8"))
}

/// Scans one segment's bytes line by line, inserting every intact record
/// into `index` (later shadows earlier). Returns `(valid_end, kept,
/// dropped)` where `valid_end` is the byte offset just past the last intact
/// record.
fn scan_segment(seg: u64, bytes: &[u8], index: &mut HashMap<u128, Loc>) -> (u64, u64, u64) {
    let (mut off, mut kept, mut dropped) = (0u64, 0u64, 0u64);
    let mut valid_end = 0u64;
    for chunk in bytes.split_inclusive(|&b| b == b'\n') {
        let len = chunk.len() as u64;
        let intact = chunk.ends_with(b"\n")
            && std::str::from_utf8(chunk)
                .ok()
                .and_then(decode_record)
                .map(|(key, _)| {
                    index.insert(
                        key,
                        Loc {
                            seg,
                            off,
                            len: len as u32,
                        },
                    );
                })
                .is_some();
        if intact {
            kept += 1;
            valid_end = off + len;
        } else {
            dropped += 1;
        }
        off += len;
    }
    (valid_end, kept, dropped)
}

/// FNV-1a 64 over the serialized value bytes.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn encode_record(key: u128, value: &Degraded) -> String {
    let v = serde_json::to_string(value).unwrap_or_else(|_| "null".to_owned());
    format!(
        "{{\"k\":\"{key:032x}\",\"c\":\"{:016x}\",\"v\":{v}}}\n",
        checksum(v.as_bytes())
    )
}

/// Parses one line back into `(key, value)`; `None` for anything torn,
/// corrupt, or checksum-mismatched.
fn decode_record(line: &str) -> Option<(u128, Degraded)> {
    let content: serde::Content = serde_json::from_str(line.trim_end()).ok()?;
    let serde::Content::Str(key_hex) = content.field("k").ok()? else {
        return None;
    };
    let serde::Content::Str(sum_hex) = content.field("c").ok()? else {
        return None;
    };
    let key = hex_u128(key_hex)?;
    let sum = hex_u64(sum_hex)?;
    let value = content.field("v").ok()?;
    // Checksum covers the value exactly as serialized at write time;
    // re-serializing the parsed tree reproduces those bytes (the writer
    // used the same serializer).
    let reserialized = serde_json::to_string(value).ok()?;
    if checksum(reserialized.as_bytes()) != sum {
        return None;
    }
    serde::Deserialize::from_content(value)
        .ok()
        .map(|v| (key, v))
}

fn hex_u128(s: &str) -> Option<u128> {
    (s.len() == 32).then(|| u128::from_str_radix(s, 16).ok())?
}

fn hex_u64(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok())?
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::degrade::Rung;
    use krsp_graph::EdgeSet;

    fn answer(cost: i64) -> Degraded {
        let mut edges = EdgeSet::with_capacity(8);
        edges.insert(krsp_graph::EdgeId((cost % 8) as u32));
        Degraded {
            solution: krsp::Solution {
                edges,
                cost,
                delay: 3,
                lower_bound: None,
            },
            rung: Rung::Full,
            guarantee: Rung::Full.guarantee(),
            kernel: krsp::KernelKind::Classic,
            warm: false,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("krsp-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let c = DiskCache::open(&dir, 0).unwrap();
        for v in 0..20u64 {
            c.put(CacheKey(u128::from(v) << 100 | 0xabc), &answer(v as i64))
                .unwrap();
        }
        assert_eq!(c.len(), 20);
        let got = c.get(CacheKey(5u128 << 100 | 0xabc)).unwrap();
        assert_eq!(got.solution.cost, 5);
        assert!(got.solution.lower_bound.is_none());
        assert!(c.get(CacheKey(999)).is_none());
        drop(c);
        // Reopen: everything recovers.
        let c2 = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(c2.len(), 20);
        assert_eq!(c2.stats().recovered, 20);
        assert_eq!(c2.stats().dropped, 0);
        assert_eq!(
            c2.get(CacheKey(7u128 << 100 | 0xabc))
                .unwrap()
                .solution
                .cost,
            7
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_shadows_older_record() {
        let dir = tmpdir("shadow");
        let c = DiskCache::open(&dir, 0).unwrap();
        let key = CacheKey(42u128 << 64);
        c.put(key, &answer(1)).unwrap();
        c.put(key, &answer(2)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(key).unwrap().solution.cost, 2);
        drop(c);
        let c2 = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(c2.get(key).unwrap().solution.cost, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_rest_recovers() {
        let dir = tmpdir("torn");
        let c = DiskCache::open(&dir, 0).unwrap();
        for v in 0..10u64 {
            c.put(CacheKey(u128::from(v) << 96 | 7), &answer(v as i64))
                .unwrap();
        }
        let seg = c.segment_files()[0].clone();
        drop(c);
        // Tear the last record mid-way (kill-9 mid-write).
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 9]).unwrap();
        let c2 = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(c2.stats().recovered, 9);
        assert_eq!(c2.stats().dropped, 1);
        assert_eq!(c2.len(), 9);
        // The torn record misses; every earlier record still answers.
        assert!(c2.get(CacheKey(9u128 << 96 | 7)).is_none());
        for v in 0..9u64 {
            assert_eq!(
                c2.get(CacheKey(u128::from(v) << 96 | 7))
                    .unwrap()
                    .solution
                    .cost,
                v as i64
            );
        }
        // Appends after recovery land on the truncated tail cleanly.
        c2.put(CacheKey(1234), &answer(77)).unwrap();
        drop(c2);
        let c3 = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(c3.stats().dropped, 0);
        assert_eq!(c3.get(CacheKey(1234)).unwrap().solution.cost, 77);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_unindexes_the_record() {
        let dir = tmpdir("remove");
        let c = DiskCache::open(&dir, 0).unwrap();
        c.put(CacheKey(9), &answer(4)).unwrap();
        assert!(c.remove(CacheKey(9)));
        assert!(c.get(CacheKey(9)).is_none());
        assert!(!c.remove(CacheKey(9)), "double remove is a no-op");
        assert!(c.is_empty());
        // A fresh put re-serves the key.
        c.put(CacheKey(9), &answer(5)).unwrap();
        assert_eq!(c.get(CacheKey(9)).unwrap().solution.cost, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_is_rejected() {
        let dir = tmpdir("cksum");
        let c = DiskCache::open(&dir, 0).unwrap();
        c.put(CacheKey(1), &answer(10)).unwrap();
        c.put(CacheKey(2), &answer(20)).unwrap();
        let seg = c.segment_files()[0].clone();
        drop(c);
        // Flip one byte inside the first record's value.
        let mut bytes = fs::read(&seg).unwrap();
        let flip = 60.min(bytes.len() / 2);
        bytes[flip] = bytes[flip].wrapping_add(1);
        fs::write(&seg, &bytes).unwrap();
        let c2 = DiskCache::open(&dir, 0).unwrap();
        assert_eq!(c2.stats().dropped, 1);
        assert_eq!(c2.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_drops_oldest_segments() {
        let dir = tmpdir("cap");
        // Tiny cap: after enough records the earliest segments must go.
        let c = DiskCache::open(&dir, 8192).unwrap();
        let one = encode_record(0, &answer(0)).len() as u64;
        // Enough records to overflow several segments' worth of the cap.
        let n = (3 * 8192 / one).max(8);
        for v in 0..n {
            c.put(CacheKey(u128::from(v)), &answer(v as i64)).unwrap();
        }
        // Everything still in one active segment under SEGMENT_BYTES is
        // never deleted; the cap only prunes *older* segments.
        assert!(!c.segment_files().is_empty());
        drop(c);
        let c2 = DiskCache::open(&dir, 8192).unwrap();
        // Most recent record always survives.
        assert_eq!(
            c2.get(CacheKey(u128::from(n - 1))).unwrap().solution.cost,
            (n - 1) as i64
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoints_gate_disk_io() {
        let dir = tmpdir("fp");
        let c = DiskCache::open(&dir, 0).unwrap();
        krsp_failpoint::setup_str("cache.disk_write=err").unwrap();
        assert!(c.put(CacheKey(1), &answer(1)).is_err());
        krsp_failpoint::setup_str("cache.disk_write=off").unwrap();
        c.put(CacheKey(1), &answer(1)).unwrap();
        krsp_failpoint::setup_str("cache.disk_read=err").unwrap();
        assert!(c.get(CacheKey(1)).is_none());
        krsp_failpoint::setup_str("cache.disk_read=off").unwrap();
        assert_eq!(c.get(CacheKey(1)).unwrap().solution.cost, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
