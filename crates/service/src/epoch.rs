//! Topology epochs: registered graph lineages whose weight updates
//! invalidate the solution cache *selectively* instead of wholesale.
//!
//! A network controller re-provisions against the same topology thousands
//! of times while link costs drift. Under plain [`canonical_key`]
//! (weights included) every cost update orphans the whole cache — a 100%
//! miss storm per update. The registry fixes that:
//!
//! * [`EpochRegistry::register`] pins a topology lineage by its
//!   weight-free [`structural_key`](crate::hash::structural_key) at
//!   **epoch 0** and remembers its exact weights.
//! * A request whose graph matches the registered weights is keyed by
//!   [`query_key`](crate::hash::query_key) (structure + `s,t,k,D`, no
//!   weights) scoped with the current epoch — see
//!   [`scope_key`](crate::hash::scope_key).
//! * [`EpochRegistry::advance`] applies a weight delta, bumps the epoch,
//!   and sweeps the cache: entries whose solution **avoids every changed
//!   edge** are *rekeyed* into the new epoch (their cost, delay, and —
//!   for non-decreasing deltas — their `cost ≤ 2·C_LP` certificate are
//!   all unchanged, since the LP bound only grows); entries touching a
//!   changed edge are evicted, but their path systems are kept as
//!   **warm-start seeds** for the next solve of the same query
//!   (`krsp::solve_warm_with` re-verifies them against the new weights).
//!
//! Any decrease in a cost or delay invalidates the retained-entry
//! argument (the LP bound can drop below half the cached cost), so a
//! non-monotone delta evicts every tracked entry — all of them still
//! become seeds.
//!
//! [`canonical_key`]: crate::hash::canonical_key

use crate::cache::{ShardedCache, Sweep};
use crate::degrade::Degraded;
use crate::hash::{self, CacheKey};
use crate::sync_util::lock_recover;
use krsp::Instance;
use krsp_gen::WeightChange;
use krsp_graph::{DiGraph, EdgeSet};
use std::collections::HashMap;
use std::sync::Mutex;

/// Seeds kept per topology; beyond this the oldest-epoch seeds are
/// dropped first (they are only a latency optimization).
const MAX_SEEDS: usize = 4096;

/// How a request resolves against the registry: the weight-free base key
/// and the epoch to scope it with.
#[derive(Clone, Copy, Debug)]
pub struct EpochScope {
    /// The topology's structural digest (the registry handle).
    pub structural: u128,
    /// Weight-free query key (structure + `s, t, k, D`).
    pub base: CacheKey,
    /// Current epoch of the lineage.
    pub epoch: u64,
}

/// Outcome of one [`EpochRegistry::advance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochReport {
    /// The epoch the lineage is now at.
    pub epoch: u64,
    /// Tracked entries rekeyed into the new epoch (still served).
    pub retained: u64,
    /// Tracked entries evicted (their solutions touched changed edges, or
    /// the delta was not non-decreasing).
    pub evicted: u64,
    /// Warm-start seeds now waiting for the new epoch's solves (evicted
    /// entries plus unconsumed seeds carried forward).
    pub seeds: u64,
}

/// Why an [`EpochRegistry::advance`] was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochError {
    /// No topology with this structural digest is registered.
    UnknownTopology,
    /// A change names an edge id outside the registered graph.
    EdgeOutOfRange(u32),
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::UnknownTopology => f.write_str("topology not registered"),
            EpochError::EdgeOutOfRange(e) => {
                write!(f, "edge id {e} out of range for the registered topology")
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// What the registry remembers about one cache entry it issued: enough to
/// recompute the entry's key under any future epoch.
#[derive(Clone, Copy, Debug)]
struct Issued {
    base: CacheKey,
    kernel_tag: u32,
}

struct Seed {
    issued: Issued,
    edges: EdgeSet,
    /// Epoch the seed was minted at (oldest dropped first at capacity).
    born: u64,
}

struct TopoState {
    /// The lineage's graph at the current epoch.
    graph: DiGraph,
    /// `weights_key(graph)` — the exact weight assignment requests must
    /// match to ride this lineage.
    weights: u128,
    epoch: u64,
    /// Epoch-scoped cache keys this registry issued, so `advance` can
    /// tell its entries from unrelated ones and rekey them.
    issued: HashMap<CacheKey, Issued>,
    /// Warm-start seeds keyed by the *current-epoch* scoped key.
    seeds: HashMap<CacheKey, Seed>,
}

/// Registered topology lineages, keyed by structural digest.
#[derive(Default)]
pub struct EpochRegistry {
    inner: Mutex<HashMap<u128, TopoState>>,
}

impl EpochRegistry {
    /// Registers (or re-affirms) `graph` as a lineage at its current
    /// weights. First registration starts at epoch 0; re-registering an
    /// existing lineage is idempotent and returns its current epoch —
    /// weight changes go through [`EpochRegistry::advance`] so the cache
    /// sweep runs.
    pub fn register(&self, graph: &DiGraph) -> (u128, u64) {
        let structural = hash::structural_key(graph);
        let mut map = lock_recover(&self.inner);
        let state = map.entry(structural).or_insert_with(|| TopoState {
            graph: graph.clone(),
            weights: hash::weights_key(graph),
            epoch: 0,
            issued: HashMap::new(),
            seeds: HashMap::new(),
        });
        (structural, state.epoch)
    }

    /// Resolves a request against the registry: `Some` iff the instance's
    /// graph matches a registered lineage *at its current weights* (a
    /// stale or foreign weight assignment falls back to canonical keying).
    pub fn lookup(&self, inst: &Instance) -> Option<EpochScope> {
        let structural = hash::structural_key(&inst.graph);
        let map = lock_recover(&self.inner);
        let state = map.get(&structural)?;
        if hash::weights_key(&inst.graph) != state.weights {
            return None;
        }
        Some(EpochScope {
            structural,
            base: hash::query_key(structural, inst.s.0, inst.t.0, inst.k, inst.delay_bound),
            epoch: state.epoch,
        })
    }

    /// Records that the cache now holds `scoped` for this lineage, so a
    /// future `advance` can rekey or reseed it.
    ///
    /// A record whose scope is not the lineage's *current* epoch is
    /// dropped: a solve that raced an advance computed its answer under
    /// the pre-advance weights, and tracking it would let the next
    /// advance — which tests entries against its own delta only — rekey
    /// that stale answer into the current epoch with full guarantees.
    /// (The entry may still sit in the LRU under its old-epoch key, but
    /// no lookup ever computes that key again.)
    pub fn record_issued(&self, scope: &EpochScope, scoped: CacheKey, kernel_tag: u32) {
        let mut map = lock_recover(&self.inner);
        if let Some(state) = map.get_mut(&scope.structural) {
            if scope.epoch != state.epoch {
                return;
            }
            state.issued.insert(
                scoped,
                Issued {
                    base: scope.base,
                    kernel_tag,
                },
            );
        }
    }

    /// Takes (consumes) the warm-start seed for `scoped`, if one waits.
    pub fn take_seed(&self, scope: &EpochScope, scoped: CacheKey) -> Option<EdgeSet> {
        let mut map = lock_recover(&self.inner);
        map.get_mut(&scope.structural)?
            .seeds
            .remove(&scoped)
            .map(|s| s.edges)
    }

    /// The registered lineage's current `(epoch, graph)` — test and
    /// tooling hook.
    pub fn current(&self, structural: u128) -> Option<(u64, DiGraph)> {
        let map = lock_recover(&self.inner);
        map.get(&structural).map(|s| (s.epoch, s.graph.clone()))
    }

    /// Number of registered topology lineages.
    pub fn lineage_count(&self) -> u64 {
        lock_recover(&self.inner).len() as u64
    }

    /// Highest epoch across registered lineages (0 when none).
    pub fn max_epoch(&self) -> u64 {
        lock_recover(&self.inner)
            .values()
            .map(|s| s.epoch)
            .max()
            .unwrap_or(0)
    }

    /// Applies `changes` to the registered lineage, bumping its epoch and
    /// sweeping `cache`: untouched entries rekey into the new epoch,
    /// touched ones are evicted into warm-start seeds.
    ///
    /// # Errors
    /// [`EpochError::UnknownTopology`] when `structural` is not
    /// registered; [`EpochError::EdgeOutOfRange`] when a change names a
    /// nonexistent edge (the lineage is left untouched).
    pub fn advance(
        &self,
        cache: &ShardedCache,
        structural: u128,
        changes: &[WeightChange],
    ) -> Result<EpochReport, EpochError> {
        let mut map = lock_recover(&self.inner);
        let state = map
            .get_mut(&structural)
            .ok_or(EpochError::UnknownTopology)?;
        let m = state.graph.edge_count();
        if let Some(bad) = changes.iter().find(|c| c.edge.0 as usize >= m) {
            return Err(EpochError::EdgeOutOfRange(bad.edge.0));
        }

        // Retained entries keep their `cost ≤ 2·C_LP` certificate only
        // when the LP lower bound cannot shrink — i.e. no weight
        // decreased anywhere. Otherwise everything tracked is evicted
        // (and reseeded).
        let non_decreasing = changes.iter().all(|c| c.is_non_decreasing(&state.graph));
        let mut changed = EdgeSet::with_capacity(m);
        for c in changes {
            changed.insert(c.edge);
        }

        let new_epoch = state.epoch + 1;
        let issued = std::mem::take(&mut state.issued);
        let mut new_issued: HashMap<CacheKey, Issued> = HashMap::new();
        let mut new_seeds: HashMap<CacheKey, Seed> = HashMap::new();
        let (mut retained, mut evicted) = (0u64, 0u64);

        cache.sweep(|key, value: &Degraded| {
            let Some(entry) = issued.get(key) else {
                return Sweep::Keep; // not ours (canonical or other lineage)
            };
            let fresh = hash::scope_key(entry.base, entry.kernel_tag, new_epoch);
            let untouched = value.solution.edges.iter().all(|e| !changed.contains(e));
            if non_decreasing && untouched {
                retained += 1;
                new_issued.insert(fresh, *entry);
                Sweep::Rekey(fresh)
            } else {
                evicted += 1;
                new_seeds.insert(
                    fresh,
                    Seed {
                        issued: *entry,
                        edges: value.solution.edges.clone(),
                        born: new_epoch,
                    },
                );
                Sweep::Evict
            }
        });

        // Unconsumed seeds stay useful across epochs: remap them to the
        // new epoch's keys (an evicted entry's fresh seed wins a tie).
        for (_, seed) in std::mem::take(&mut state.seeds) {
            let fresh = hash::scope_key(seed.issued.base, seed.issued.kernel_tag, new_epoch);
            new_seeds.entry(fresh).or_insert(seed);
        }
        if new_seeds.len() > MAX_SEEDS {
            let mut by_age: Vec<(CacheKey, u64)> =
                new_seeds.iter().map(|(k, s)| (*k, s.born)).collect();
            by_age.sort_unstable_by_key(|&(_, born)| born);
            for (key, _) in by_age.into_iter().take(new_seeds.len() - MAX_SEEDS) {
                new_seeds.remove(&key);
            }
        }

        state.graph = krsp_gen::apply_changes(&state.graph, changes);
        state.weights = hash::weights_key(&state.graph);
        state.epoch = new_epoch;
        state.issued = new_issued;
        let seeds = new_seeds.len() as u64;
        state.seeds = new_seeds;

        Ok(EpochReport {
            epoch: new_epoch,
            retained,
            evicted,
            seeds,
        })
    }
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::degrade::Rung;
    use krsp_graph::{EdgeId, NodeId};

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)])
    }

    fn inst(g: &DiGraph, d: i64) -> Instance {
        Instance::new(g.clone(), NodeId(0), NodeId(3), 2, d).unwrap()
    }

    fn answer(graph: &DiGraph, edge_ids: &[u32]) -> Degraded {
        let mut edges = EdgeSet::new(graph);
        for &e in edge_ids {
            edges.insert(EdgeId(e));
        }
        Degraded {
            solution: krsp::Solution {
                cost: edges.total_cost(graph),
                delay: edges.total_delay(graph),
                edges,
                lower_bound: None,
            },
            rung: Rung::Full,
            guarantee: Rung::Full.guarantee(),
            kernel: krsp::KernelKind::Classic,
            warm: false,
        }
    }

    #[test]
    fn lookup_requires_matching_weights() {
        let reg = EpochRegistry::default();
        let g = diamond();
        let (structural, epoch) = reg.register(&g);
        assert_eq!(epoch, 0);
        // Idempotent re-register.
        assert_eq!(reg.register(&g), (structural, 0));

        let scope = reg.lookup(&inst(&g, 20)).unwrap();
        assert_eq!(scope.structural, structural);
        assert_eq!(scope.epoch, 0);

        // Same structure, different weights: no scope (canonical path).
        let drifted = g.with_updates(&[(EdgeId(0), 2, 5)]);
        assert!(reg.lookup(&inst(&drifted, 20)).is_none());
        // Unregistered structure: no scope.
        let other = DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
        assert!(reg
            .lookup(&Instance::new(other, NodeId(0), NodeId(2), 1, 5).unwrap())
            .is_none());
    }

    #[test]
    fn advance_retains_untouched_and_reseeds_touched() {
        let reg = EpochRegistry::default();
        let cache = ShardedCache::new(64, 2);
        let g = diamond();
        let (structural, _) = reg.register(&g);

        // Two issued entries: one on the cheap path (edges 0,1), one on
        // the fast path (edges 2,3).
        let scope = reg.lookup(&inst(&g, 20)).unwrap();
        let cheap = hash::scope_key(scope.base, 0, 0);
        let fast_base = hash::query_key(structural, 0, 3, 2, 3);
        let fast = hash::scope_key(fast_base, 0, 0);
        cache.put(cheap, answer(&g, &[0, 1]));
        cache.put(fast, answer(&g, &[2, 3]));
        reg.record_issued(&scope, cheap, 0);
        reg.record_issued(
            &EpochScope {
                structural,
                base: fast_base,
                epoch: 0,
            },
            fast,
            0,
        );

        // Bump edge 2's cost (touches only the fast answer).
        let report = reg
            .advance(
                &cache,
                structural,
                &[WeightChange {
                    edge: EdgeId(2),
                    cost: 6,
                    delay: 1,
                }],
            )
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.retained, 1);
        assert_eq!(report.evicted, 1);
        assert_eq!(report.seeds, 1);

        // The untouched entry answers at its rekeyed epoch-1 key.
        let cheap1 = hash::scope_key(scope.base, 0, 1);
        assert_eq!(cache.get(cheap1).unwrap().solution.cost, 2);
        assert!(cache.get(cheap).is_none(), "old-epoch key is gone");
        // The touched entry is gone but left a seed at the new key.
        let fast1 = hash::scope_key(fast_base, 0, 1);
        assert!(cache.get(fast1).is_none());
        let (epoch, now) = reg.current(structural).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(now.edges()[2].cost, 6);
        let seed = reg
            .take_seed(
                &EpochScope {
                    structural,
                    base: fast_base,
                    epoch: 1,
                },
                fast1,
            )
            .unwrap();
        assert!(seed.contains(EdgeId(2)) && seed.contains(EdgeId(3)));
        // Seeds are consumed once.
        assert!(reg
            .take_seed(
                &EpochScope {
                    structural,
                    base: fast_base,
                    epoch: 1,
                },
                fast1,
            )
            .is_none());

        // Lookups now require the *new* weights.
        assert!(reg.lookup(&inst(&g, 20)).is_none());
        let g1 = g.with_updates(&[(EdgeId(2), 6, 1)]);
        assert_eq!(reg.lookup(&inst(&g1, 20)).unwrap().epoch, 1);
    }

    #[test]
    fn decreasing_delta_evicts_everything_tracked() {
        let reg = EpochRegistry::default();
        let cache = ShardedCache::new(64, 2);
        let g = diamond();
        let (structural, _) = reg.register(&g);
        let scope = reg.lookup(&inst(&g, 20)).unwrap();
        let key = hash::scope_key(scope.base, 0, 0);
        cache.put(key, answer(&g, &[0, 1]));
        reg.record_issued(&scope, key, 0);

        // Edge 2 gets *cheaper*: even the untouched cheap-path entry loses
        // its certificate (the LP bound may drop), so it is evicted.
        let report = reg
            .advance(
                &cache,
                structural,
                &[WeightChange {
                    edge: EdgeId(2),
                    cost: 1,
                    delay: 1,
                }],
            )
            .unwrap();
        assert_eq!(report.retained, 0);
        assert_eq!(report.evicted, 1);
        assert_eq!(report.seeds, 1);
        assert!(cache.get(hash::scope_key(scope.base, 0, 1)).is_none());
    }

    #[test]
    fn stale_epoch_records_are_never_tracked_or_rekeyed() {
        let reg = EpochRegistry::default();
        let cache = ShardedCache::new(64, 2);
        let g = diamond();
        let (structural, _) = reg.register(&g);
        let scope0 = reg.lookup(&inst(&g, 20)).unwrap();
        // A weight re-assert is a valid non-decreasing delta touching
        // nothing: the epoch advances while a solve for `scope0` is still
        // in flight.
        let noop = [WeightChange {
            edge: EdgeId(2),
            cost: 4,
            delay: 1,
        }];
        reg.advance(&cache, structural, &noop).unwrap();
        // The straggler lands with its old-epoch scope. It may enter the
        // LRU (its key is never looked up again), but the registry must
        // refuse to track it.
        let stale = hash::scope_key(scope0.base, 0, 0);
        cache.put(stale, answer(&g, &[0, 1]));
        reg.record_issued(&scope0, stale, 0);
        // The next advance finds nothing to rekey: the answer computed two
        // epochs back never reappears under a current-epoch key.
        let report = reg.advance(&cache, structural, &noop).unwrap();
        assert_eq!((report.retained, report.evicted), (0, 0));
        assert!(cache.get(hash::scope_key(scope0.base, 0, 1)).is_none());
        assert!(cache.get(hash::scope_key(scope0.base, 0, 2)).is_none());
    }

    #[test]
    fn foreign_entries_survive_the_sweep() {
        let reg = EpochRegistry::default();
        let cache = ShardedCache::new(64, 2);
        let g = diamond();
        let (structural, _) = reg.register(&g);
        // A canonical-keyed entry the registry never issued.
        let foreign = CacheKey(0xdead_beef);
        cache.put(foreign, answer(&g, &[0, 1]));
        let report = reg
            .advance(
                &cache,
                structural,
                &[WeightChange {
                    edge: EdgeId(0),
                    cost: 9,
                    delay: 5,
                }],
            )
            .unwrap();
        assert_eq!(report.retained + report.evicted, 0);
        assert!(cache.get(foreign).is_some());
    }

    #[test]
    fn advance_rejects_bad_input() {
        let reg = EpochRegistry::default();
        let cache = ShardedCache::new(16, 1);
        assert_eq!(
            reg.advance(&cache, 42, &[]),
            Err(EpochError::UnknownTopology)
        );
        let (structural, _) = reg.register(&diamond());
        assert_eq!(
            reg.advance(
                &cache,
                structural,
                &[WeightChange {
                    edge: EdgeId(99),
                    cost: 1,
                    delay: 1,
                }],
            ),
            Err(EpochError::EdgeOutOfRange(99))
        );
        // The failed advance left the epoch alone.
        assert_eq!(reg.current(structural).unwrap().0, 0);
    }
}
