//! Replica ring: a consistent-hash router over N `serve` replicas
//! (DESIGN.md §4.18).
//!
//! One `krsp-cli serve` process is a single point of failure and a single
//! cache. The router fronts a fixed replica set with a consistent-hash
//! ring keyed on the **canonical instance digest** — the same 128-bit key
//! the cache/singleflight stack uses — so every digest lands on one
//! replica and that replica's L1/disk/warm caches stay hot, while
//! duplicate traffic still coalesces per replica.
//!
//! Robustness model:
//!
//! * **Health state machine** per replica: `Up → Degraded → Draining →
//!   Down`, driven by an active `Health` prober and passive
//!   forward-error signals. Draining and Down replicas are skipped at
//!   *lookup* time — the ring itself never rebuilds, so keys mapped to
//!   live replicas keep their assignment and only the dead replica's
//!   keys spill to their ring successors (no full cache flush).
//! * **Deadline-propagating retries**: every forwarded `Solve` carries
//!   the client's *remaining* budget, and a transport failure or `shed`
//!   answer fails over to the next live ring node after a jittered,
//!   deterministic backoff — never past the budget. A request whose
//!   replica already admitted it is retried only when the connection
//!   died; a stalled-but-alive connection waits out the budget instead
//!   (the replica may still answer in-guarantee).
//! * **Hedged sends** (opt-in): once enough latency samples exist, the
//!   first attempt arms a timer at a configurable latency quantile; if
//!   the primary has not answered by then, the same request is fired at
//!   the next live replica and the first answer wins. The loser is
//!   cancelled by shutting its socket down, and its connection never
//!   returns to the pool.
//! * **Graceful handoff**: a replica entering drain advertises it via
//!   the extended `Health` reply (`accepting: false`); the prober flips
//!   it to `Draining`, new sends stop, and any in-flight request either
//!   completes on the draining replica or — when the connection dies —
//!   reissues elsewhere through the normal retry path, so its in-flight
//!   window hands off with zero dropped ids.
//!
//! Failpoints `router.dial`, `router.forward`, and `router.probe` let the
//! chaos suite (tests/ring.rs) inject torn dials, forward failures, and
//! probe blackouts deterministically. All jitter derives from
//! [`RouterOptions::seed`] (see [`resolve_seed`]), so two identical chaos
//! replays produce identical retry traces ([`Router::take_trace`]).
//!
//! The router serves the same NDJSON wire protocol as a single replica,
//! thread-per-connection with blocking I/O: the scaling frontier is the
//! replica fleet behind it, not the router's own connection count.

use crate::hash::canonical_key;
use crate::metrics::LatencyHistogram;
use crate::proto::{
    decode_request_line, decode_response_line, encode_response_line, read_line_capped, wire_error,
    BlockAction, EpochReply, ErrorKind, HealthReply, HealthStatus, LineRead, RegisteredReply,
    ReplicaStatus, RingReply, SolveRequest, WireRequest, WireResponse, MAX_LINE_BYTES,
};
use crate::sync_util::{lock_recover, saturating_deadline};
use serde::Content;
use std::io::{BufReader, ErrorKind as IoErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable consulted by [`resolve_seed`] when no explicit
/// seed flag is given.
pub const SEED_ENV_VAR: &str = "KRSP_SEED";

/// Default jitter seed when neither a flag nor [`SEED_ENV_VAR`] names one
/// (`0x6b727370` = `"krsp"`).
pub const DEFAULT_SEED: u64 = 0x6b72_7370;

/// Read-poll tick while waiting on a replica reply; bounds how late the
/// deadline check inside a blocked read can run.
const READ_TICK: Duration = Duration::from_millis(5);

/// Hard cap on retained retry-trace entries, so a long-lived router's
/// diagnostics cannot grow without bound.
const TRACE_CAP: usize = 65_536;

/// Resolves the deterministic jitter seed: an explicit flag wins, then a
/// parseable [`SEED_ENV_VAR`], then [`DEFAULT_SEED`]. A malformed env
/// value is reported to stderr and ignored rather than silently zeroed.
#[must_use]
pub fn resolve_seed(flag: Option<u64>) -> u64 {
    seed_from(flag, std::env::var(SEED_ENV_VAR).ok())
}

/// [`resolve_seed`] with the environment injected, so the precedence is
/// testable without mutating process-global state.
fn seed_from(flag: Option<u64>, env: Option<String>) -> u64 {
    if let Some(seed) = flag {
        return seed;
    }
    if let Some(text) = env {
        match text.trim().parse() {
            Ok(seed) => return seed,
            Err(_) => eprintln!("warning: ignoring non-integer {SEED_ENV_VAR}={text:?}"),
        }
    }
    DEFAULT_SEED
}

/// SplitMix64: the ring-point and jitter mixer. Pure, so every derived
/// quantity (vnode placement, backoff jitter) is a function of its inputs
/// alone — independent of thread interleaving.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds the 128-bit canonical digest onto the ring's 64-bit point space.
fn ring_hash(key: u128) -> u64 {
    splitmix64((key as u64) ^ ((key >> 64) as u64))
}

/// Health state of one replica in the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingState {
    /// Serving normally; first choice for its ring arcs.
    Up,
    /// Under suspicion (consecutive failures short of the down
    /// threshold); still eligible for sends, so a transient blip does not
    /// flush its keys.
    Degraded,
    /// Announced a drain via `Health` (`accepting: false`): no new sends;
    /// in-flight work finishes or fails over when the connection dies.
    Draining,
    /// Considered dead (failure threshold crossed); skipped at lookup
    /// until probes see it ready again.
    Down,
}

impl RingState {
    /// The wire string (`"up"`, `"degraded"`, `"draining"`, `"down"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RingState::Up => "up",
            RingState::Degraded => "degraded",
            RingState::Draining => "draining",
            RingState::Down => "down",
        }
    }

    /// Whether the ring hands this replica new requests.
    #[must_use]
    pub fn is_live(self) -> bool {
        matches!(self, RingState::Up | RingState::Degraded)
    }
}

/// Knobs for a [`Router`]. `Default` is a serviceable single-box setup
/// except for `replicas`, which must be non-empty.
#[derive(Clone, Debug)]
pub struct RouterOptions {
    /// Replica listen addresses; index order is the ring's replica-id
    /// space (retry traces name replicas by index, so traces reproduce
    /// across runs even though ports differ).
    pub replicas: Vec<String>,
    /// Virtual nodes per replica on the hash ring; more vnodes smooth the
    /// key distribution at O(replicas × vnodes log ·) lookup cost.
    pub vnodes: usize,
    /// Active `Health` probe cadence.
    pub probe_interval: Duration,
    /// Per-probe dial+reply budget.
    pub probe_timeout: Duration,
    /// TCP connect budget per forward dial (also capped by the request's
    /// remaining deadline).
    pub dial_timeout: Duration,
    /// Consecutive failures that demote `Up` to `Degraded`.
    pub degrade_after: u32,
    /// Consecutive failures that demote any state to `Down`.
    pub down_after: u32,
    /// Consecutive successes that promote a non-`Up` replica back to
    /// `Up`.
    pub revive_after: u32,
    /// Deadline budget for requests that carry none of their own — the
    /// router always propagates *some* budget so a dead replica cannot
    /// hang a client forever.
    pub default_deadline: Duration,
    /// First-retry backoff base (doubles per attempt).
    pub backoff_base: Duration,
    /// Backoff growth cap.
    pub backoff_cap: Duration,
    /// Enables hedged sends.
    pub hedge: bool,
    /// Latency quantile (of router-observed solve latencies) that arms
    /// the hedge timer.
    pub hedge_quantile: f64,
    /// Floor on the hedge trigger delay, so a cold histogram cannot hedge
    /// every request.
    pub hedge_min: Duration,
    /// Minimum latency samples before hedging activates.
    pub hedge_warmup: u64,
    /// Deterministic jitter seed (see [`resolve_seed`]).
    pub seed: u64,
    /// Idle pooled connections kept per replica.
    pub pool_cap: usize,
    /// Client-connection cap; connections past it are shed at accept.
    pub max_conns: usize,
    /// Accept-loop and client-read poll tick.
    pub poll: Duration,
    /// Budget for a mid-line client read stall before the connection is
    /// dropped.
    pub read_timeout: Duration,
    /// Socket write timeout towards clients.
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight client connections.
    pub grace: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            replicas: Vec::new(),
            vnodes: 64,
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_secs(1),
            dial_timeout: Duration::from_secs(1),
            degrade_after: 2,
            down_after: 4,
            revive_after: 2,
            default_deadline: Duration::from_secs(2),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            hedge: false,
            hedge_quantile: 0.99,
            hedge_min: Duration::from_millis(20),
            hedge_warmup: 32,
            seed: DEFAULT_SEED,
            pool_cap: 8,
            max_conns: 1024,
            poll: Duration::from_millis(50),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            grace: Duration::from_secs(5),
        }
    }
}

/// The consistent-hash ring: sorted vnode points, each owned by a replica
/// index. Built once — liveness is filtered at lookup, not by rebuilding.
struct Ring {
    points: Vec<(u64, u32)>,
}

impl Ring {
    fn new(replicas: usize, vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas * vnodes);
        for r in 0..replicas {
            let base = splitmix64(r as u64 + 1);
            for v in 0..vnodes {
                points.push((splitmix64(base ^ (v as u64) << 1), r as u32));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// Every replica index in clockwise order from `key`'s ring position:
    /// the first entry owns the key, the rest are its failover chain.
    fn order_for(&self, key: u128, replicas: usize) -> Vec<usize> {
        let h = ring_hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut seen = vec![false; replicas];
        let mut order = Vec::with_capacity(replicas);
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            let r = r as usize;
            if !seen[r] {
                seen[r] = true;
                order.push(r);
                if order.len() == replicas {
                    break;
                }
            }
        }
        order
    }
}

/// Mutable health view of one replica.
struct HealthView {
    state: RingState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Replica-reported drain age (ms) at the last probe.
    draining_for_ms: u64,
}

struct Replica {
    addr: String,
    health: Mutex<HealthView>,
    pool: Mutex<Vec<TcpStream>>,
    in_flight: AtomicU64,
}

impl Replica {
    fn new(addr: String) -> Replica {
        Replica {
            addr,
            health: Mutex::new(HealthView {
                state: RingState::Up,
                consecutive_failures: 0,
                consecutive_successes: 0,
                draining_for_ms: 0,
            }),
            pool: Mutex::new(Vec::new()),
            in_flight: AtomicU64::new(0),
        }
    }

    fn state(&self) -> RingState {
        lock_recover(&self.health).state
    }

    /// Passive failure signal (failed dial/forward, or a failed probe).
    fn note_failure(&self, opts: &RouterOptions) {
        let mut h = lock_recover(&self.health);
        h.consecutive_successes = 0;
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        if h.consecutive_failures >= opts.down_after {
            h.state = RingState::Down;
        } else if h.state == RingState::Up && h.consecutive_failures >= opts.degrade_after {
            h.state = RingState::Degraded;
        }
    }

    /// Passive success signal (a forward completed). Revives `Degraded`
    /// and `Down`, but never clears `Draining` — only a probe that sees
    /// the replica ready again does that (in-flight answers during a
    /// drain are expected and do not mean it accepts new work).
    fn note_success(&self, opts: &RouterOptions) {
        let mut h = lock_recover(&self.health);
        h.consecutive_failures = 0;
        h.consecutive_successes = h.consecutive_successes.saturating_add(1);
        if matches!(h.state, RingState::Degraded | RingState::Down)
            && h.consecutive_successes >= opts.revive_after
        {
            h.state = RingState::Up;
        }
    }

    /// Probe observed the replica serving and accepting: the only signal
    /// that clears `Draining` (a restarted process on the same address).
    fn probe_ready(&self, opts: &RouterOptions) {
        let mut h = lock_recover(&self.health);
        h.consecutive_failures = 0;
        h.consecutive_successes = h.consecutive_successes.saturating_add(1);
        if h.state != RingState::Up && h.consecutive_successes >= opts.revive_after {
            h.state = RingState::Up;
            h.draining_for_ms = 0;
        }
    }

    /// Probe observed a drain announcement.
    fn mark_draining(&self, reported_ms: u64) {
        let mut h = lock_recover(&self.health);
        h.state = RingState::Draining;
        h.draining_for_ms = reported_ms;
        h.consecutive_successes = 0;
    }

    fn status(&self) -> ReplicaStatus {
        let h = lock_recover(&self.health);
        ReplicaStatus {
            addr: self.addr.clone(),
            state: h.state.as_str().to_string(),
            consecutive_failures: u64::from(h.consecutive_failures),
            draining_since_ms: if h.state == RingState::Draining {
                h.draining_for_ms
            } else {
                0
            },
            in_flight: self.in_flight.load(Ordering::Acquire),
        }
    }
}

/// Decrements a replica's in-flight gauge on scope exit, so early returns
/// and panics cannot leak the count.
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    fn new(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::AcqRel);
        InFlightGuard(counter)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    retries: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    rejected: AtomicU64,
}

struct Inner {
    opts: RouterOptions,
    replicas: Vec<Replica>,
    ring: Ring,
    latencies: Mutex<LatencyHistogram>,
    stats: Stats,
    trace: Mutex<Vec<String>>,
}

/// How one forward attempt failed.
enum ForwardFail {
    /// Could not connect (or an injected `router.dial` error).
    Dial(std::io::Error),
    /// The connection died mid-exchange — retrying elsewhere is safe even
    /// for an admitted request.
    Died(std::io::Error),
    /// The read stalled to the request's deadline on a *live* connection;
    /// the replica may have admitted the request, so this is final (no
    /// failover), answered as a structured timeout.
    DeadlineStall,
}

impl ForwardFail {
    fn event(&self) -> &'static str {
        match self {
            ForwardFail::Dial(_) => "dial_fail",
            ForwardFail::Died(_) => "conn_died",
            ForwardFail::DeadlineStall => "deadline_stall",
        }
    }

    /// Human-readable detail for the client-facing error message (never
    /// for traces — transport errors carry nondeterministic detail like
    /// ports).
    fn detail(&self) -> String {
        match self {
            ForwardFail::Dial(e) => format!("dial failed: {e}"),
            ForwardFail::Died(e) => format!("connection died: {e}"),
            ForwardFail::DeadlineStall => "read stalled to the deadline".to_string(),
        }
    }
}

/// What one hedged leg reports back: which replica it raced, and either
/// the raw reply line with its observed latency or the failure that ended
/// the leg.
type LegOutcome = (usize, Result<(String, Duration), ForwardFail>);

/// Cancellation handle for one hedged leg: the losing leg's socket is
/// shut down (unblocking its read), and the flag stops the loser from
/// counting its induced error as a replica failure.
#[derive(Default)]
struct LegCtl {
    conn: Mutex<Option<TcpStream>>,
    cancelled: AtomicBool,
}

impl LegCtl {
    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
        if let Some(conn) = lock_recover(&self.conn).as_ref() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The consistent-hash replica router. Cheap to clone (shared state);
/// every clone routes over the same ring, health views, and pools.
#[derive(Clone)]
pub struct Router {
    inner: Arc<Inner>,
}

impl Router {
    /// Builds a router over `opts.replicas`.
    ///
    /// # Panics
    /// When the replica list is empty — an unroutable configuration.
    #[must_use]
    pub fn new(opts: RouterOptions) -> Router {
        assert!(
            !opts.replicas.is_empty(),
            "router needs at least one replica address"
        );
        let ring = Ring::new(opts.replicas.len(), opts.vnodes);
        let replicas = opts.replicas.iter().cloned().map(Replica::new).collect();
        Router {
            inner: Arc::new(Inner {
                opts,
                replicas,
                ring,
                latencies: Mutex::new(LatencyHistogram::default()),
                stats: Stats::default(),
                trace: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The configuration this router was built with.
    #[must_use]
    pub fn options(&self) -> &RouterOptions {
        &self.inner.opts
    }

    /// Current health state of every replica, in configured order.
    #[must_use]
    pub fn replica_states(&self) -> Vec<RingState> {
        self.inner.replicas.iter().map(Replica::state).collect()
    }

    /// Drains and returns the retry trace accumulated so far. Entries are
    /// pure functions of (seed, request keys, failure script), so two
    /// identical chaos replays yield identical traces when requests are
    /// issued sequentially.
    #[must_use]
    pub fn take_trace(&self) -> Vec<String> {
        std::mem::take(&mut *lock_recover(&self.inner.trace))
    }

    /// The router's replica-set view and counters (the `Health` answer).
    #[must_use]
    pub fn ring_reply(&self) -> RingReply {
        RingReply {
            replicas: self.inner.replicas.iter().map(Replica::status).collect(),
            requests: self.inner.stats.requests.load(Ordering::Acquire),
            retries: self.inner.stats.retries.load(Ordering::Acquire),
            hedges_fired: self.inner.stats.hedges_fired.load(Ordering::Acquire),
            hedges_won: self.inner.stats.hedges_won.load(Ordering::Acquire),
            rejected: self.inner.stats.rejected.load(Ordering::Acquire),
        }
    }

    /// Evaluates one raw NDJSON request line against the ring, returning
    /// the response line(s) without the trailing newline (a `SolveBatch`
    /// yields one `\n`-joined line per query). The router-side equivalent
    /// of [`crate::proto::dispatch_line`].
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        let decoded = decode_request_line(line);
        let id = decoded.id;
        match decoded.request {
            Err(msg) => encode_response_line(id.as_ref(), &wire_error(ErrorKind::Parse, msg)),
            Ok(WireRequest::SolveBatch(batch)) => {
                if batch.queries.is_empty() {
                    return encode_response_line(
                        id.as_ref(),
                        &wire_error(ErrorKind::Parse, "empty SolveBatch: no queries"),
                    );
                }
                // Each query routes by its own digest — a batch fans out
                // across the ring rather than pinning to one replica.
                batch
                    .queries
                    .into_iter()
                    .map(|q| {
                        let response = self.route_solve(&SolveRequest {
                            instance: q.instance,
                            deadline_ms: q.deadline_ms,
                            kernel: q.kernel,
                        });
                        encode_response_line(Some(&Content::Int(i128::from(q.id))), &response)
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            Ok(WireRequest::Solve(solve)) => {
                encode_response_line(id.as_ref(), &self.route_solve(&solve))
            }
            Ok(WireRequest::Health) => {
                encode_response_line(id.as_ref(), &WireResponse::Ring(self.ring_reply()))
            }
            Ok(WireRequest::Metrics) => encode_response_line(id.as_ref(), &self.forward_metrics()),
            Ok(req @ (WireRequest::Register(_) | WireRequest::Epoch(_))) => {
                encode_response_line(id.as_ref(), &self.broadcast(&req))
            }
        }
    }

    /// Routes one solve across the ring with failover, backoff, and
    /// (optionally) hedging. Always returns *something*: a relayed
    /// replica answer, or a structured router-side error — never hangs
    /// past the deadline budget and never silently drops.
    pub fn route_solve(&self, solve: &SolveRequest) -> WireResponse {
        self.inner.stats.requests.fetch_add(1, Ordering::AcqRel);
        let key = canonical_key(&solve.instance).0;
        let budget = solve
            .deadline_ms
            .map_or(self.inner.opts.default_deadline, Duration::from_millis);
        let deadline = saturating_deadline(Instant::now(), budget);
        let order = self.inner.ring.order_for(key, self.inner.replicas.len());
        let candidates = self.live_or_all(&order);
        let mut attempts: u32 = 0;
        let mut last_fail: Option<String> = None;
        for (slot, &idx) in candidates.iter().enumerate() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let attempt = slot as u32;
            attempts = attempt + 1;
            if slot > 0 {
                self.inner.stats.retries.fetch_add(1, Ordering::AcqRel);
            }
            let line = self.encode_forward(solve, deadline.saturating_duration_since(now));
            // Hedge only the first attempt; a retry is already a second
            // send.
            let hedge_with = if slot == 0 {
                candidates.get(1).copied()
            } else {
                None
            };
            match self.attempt(idx, hedge_with, key, attempt, &line, deadline) {
                Ok((winner, raw)) => match decode_response_line(&raw) {
                    Ok((_, WireResponse::Error(e))) if e.kind == ErrorKind::Shed => {
                        // Shed means *not admitted*: safe and correct to
                        // fail over.
                        self.trace(key, attempt, winner, "shed", Duration::ZERO);
                    }
                    Ok((_, response)) => {
                        self.trace(key, attempt, winner, "ok", Duration::ZERO);
                        return response;
                    }
                    Err(_) => {
                        // Garbage reply: treat like a torn connection.
                        self.inner.replicas[winner].note_failure(&self.inner.opts);
                        self.trace(key, attempt, winner, "bad_reply", Duration::ZERO);
                    }
                },
                Err(ForwardFail::DeadlineStall) => {
                    self.trace(key, attempt, idx, "deadline_stall", Duration::ZERO);
                    self.inner.stats.rejected.fetch_add(1, Ordering::AcqRel);
                    return wire_error(
                        ErrorKind::Timeout,
                        format!(
                            "deadline budget ({} ms) exhausted waiting on replica {idx}",
                            budget.as_millis()
                        ),
                    );
                }
                Err(fail) => {
                    let backoff = self.backoff(key, attempt, deadline);
                    self.trace(key, attempt, idx, fail.event(), backoff);
                    last_fail = Some(format!("replica {idx}: {}", fail.detail()));
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        self.inner.stats.rejected.fetch_add(1, Ordering::AcqRel);
        if attempts == 0 {
            wire_error(
                ErrorKind::Timeout,
                format!(
                    "deadline budget ({} ms) exhausted before any replica could be tried",
                    budget.as_millis()
                ),
            )
        } else {
            let detail = last_fail.map_or_else(String::new, |d| format!("; last failure: {d}"));
            wire_error(
                ErrorKind::Timeout,
                format!(
                    "deadline budget ({} ms) exhausted after {attempts} attempt(s){detail}",
                    budget.as_millis()
                ),
            )
        }
    }

    /// The failover order filtered to live replicas — or, when the whole
    /// ring looks dark, the unfiltered order as a last-ditch pass (probes
    /// may simply not have seen a recovery yet).
    fn live_or_all(&self, order: &[usize]) -> Vec<usize> {
        let live: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| self.inner.replicas[i].state().is_live())
            .collect();
        if live.is_empty() {
            order.to_vec()
        } else {
            live
        }
    }

    /// Re-encodes a solve with the *remaining* deadline budget, so every
    /// hop sees how much time is actually left.
    fn encode_forward(&self, solve: &SolveRequest, remaining: Duration) -> String {
        let forwarded = WireRequest::Solve(SolveRequest {
            instance: solve.instance.clone(),
            deadline_ms: Some((remaining.as_millis() as u64).max(1)),
            kernel: solve.kernel,
        });
        serde_json::to_string(&forwarded).unwrap_or_else(|e| {
            format!("{{\"Error\":{{\"kind\":\"internal\",\"message\":\"encode failed: {e}\"}}}}")
        })
    }

    /// Jittered exponential backoff for retry `attempt` of `key`: a pure
    /// function of (seed, key, attempt), clamped to the remaining budget.
    fn backoff(&self, key: u128, attempt: u32, deadline: Instant) -> Duration {
        let opts = &self.inner.opts;
        let base = opts
            .backoff_base
            .saturating_mul(1u32 << attempt.min(6))
            .min(opts.backoff_cap);
        let mix = splitmix64(
            opts.seed
                ^ (key as u64)
                ^ ((key >> 64) as u64)
                ^ u64::from(attempt).wrapping_mul(0x9e37_79b9),
        );
        let base_us = base.as_micros() as u64;
        // Jitter in [base/2, base): exact integer arithmetic, no floats.
        let jittered = base_us / 2 + (base_us / 2).saturating_mul(mix % 1024) / 1024;
        Duration::from_micros(jittered).min(deadline.saturating_duration_since(Instant::now()))
    }

    fn trace(&self, key: u128, attempt: u32, replica: usize, event: &str, backoff: Duration) {
        let mut trace = lock_recover(&self.inner.trace);
        if trace.len() >= TRACE_CAP {
            return;
        }
        trace.push(format!(
            "key={key:032x} attempt={attempt} replica={replica} event={event} backoff_us={}",
            backoff.as_micros()
        ));
    }

    /// One attempt slot: a plain forward, or — when `hedge_with` names a
    /// second live replica and the histogram is warm — a hedged pair.
    fn attempt(
        &self,
        primary: usize,
        hedge_with: Option<usize>,
        key: u128,
        attempt: u32,
        line: &str,
        deadline: Instant,
    ) -> Result<(usize, String), ForwardFail> {
        if let (Some(secondary), Some(delay)) = (hedge_with, self.hedge_delay()) {
            return self.attempt_hedged(primary, secondary, key, attempt, line, delay, deadline);
        }
        let started = Instant::now();
        match self.forward_once(primary, line, deadline) {
            Ok(raw) => {
                self.inner.replicas[primary].note_success(&self.inner.opts);
                self.record_latency(started.elapsed());
                Ok((primary, raw))
            }
            Err(fail) => {
                if !matches!(fail, ForwardFail::DeadlineStall) {
                    self.inner.replicas[primary].note_failure(&self.inner.opts);
                }
                Err(fail)
            }
        }
    }

    /// The hedge trigger delay, or `None` while hedging is disabled or
    /// the latency histogram is still cold.
    fn hedge_delay(&self) -> Option<Duration> {
        let opts = &self.inner.opts;
        if !opts.hedge {
            return None;
        }
        let histogram = lock_recover(&self.inner.latencies);
        if histogram.count < opts.hedge_warmup {
            return None;
        }
        Some(Duration::from_micros(histogram.quantile(opts.hedge_quantile)).max(opts.hedge_min))
    }

    fn record_latency(&self, latency: Duration) {
        lock_recover(&self.inner.latencies)
            .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Hedged pair: primary fires immediately; if it has not answered
    /// within `delay`, the same line goes to `secondary` and the first
    /// answer wins. The loser is cancelled (socket shutdown) and its
    /// connection never pools.
    #[allow(clippy::too_many_arguments)]
    fn attempt_hedged(
        &self,
        primary: usize,
        secondary: usize,
        key: u128,
        attempt: u32,
        line: &str,
        delay: Duration,
        deadline: Instant,
    ) -> Result<(usize, String), ForwardFail> {
        let (tx, rx) = mpsc::channel();
        let primary_ctl = Arc::new(LegCtl::default());
        let secondary_ctl = Arc::new(LegCtl::default());
        self.spawn_leg(primary, line, deadline, &primary_ctl, &tx);
        let first =
            match rx.recv_timeout(delay.min(deadline.saturating_duration_since(Instant::now()))) {
                Ok(arrival) => Some(arrival),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ForwardFail::Died(std::io::Error::other("hedge leg lost")))
                }
            };
        if let Some((idx, result)) = first {
            // Primary settled before the hedge timer: no second send.
            return match result {
                Ok((raw, latency)) => {
                    self.record_latency(latency);
                    Ok((idx, raw))
                }
                Err(fail) => Err(fail),
            };
        }
        // Hedge fires.
        self.inner.stats.hedges_fired.fetch_add(1, Ordering::AcqRel);
        self.trace(key, attempt, secondary, "hedge_fire", Duration::ZERO);
        self.spawn_leg(secondary, line, deadline, &secondary_ctl, &tx);
        let mut pending = 2u32;
        let mut first_fail: Option<ForwardFail> = None;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                primary_ctl.cancel();
                secondary_ctl.cancel();
                return Err(ForwardFail::DeadlineStall);
            }
            match rx.recv_timeout(remaining) {
                Ok((idx, Ok((raw, latency)))) => {
                    self.record_latency(latency);
                    if idx == secondary {
                        self.inner.stats.hedges_won.fetch_add(1, Ordering::AcqRel);
                        primary_ctl.cancel();
                    } else {
                        secondary_ctl.cancel();
                    }
                    return Ok((idx, raw));
                }
                Ok((_, Err(fail))) => {
                    pending -= 1;
                    if pending == 0 {
                        return Err(first_fail.unwrap_or(fail));
                    }
                    first_fail.get_or_insert(fail);
                }
                Err(_) => {
                    primary_ctl.cancel();
                    secondary_ctl.cancel();
                    return Err(ForwardFail::DeadlineStall);
                }
            }
        }
    }

    /// Fires one hedged leg on its own thread: always a fresh dial (so
    /// the cancel handle owns the only pooled-state-free socket), result
    /// delivered over `tx`.
    fn spawn_leg(
        &self,
        idx: usize,
        line: &str,
        deadline: Instant,
        ctl: &Arc<LegCtl>,
        tx: &mpsc::Sender<LegOutcome>,
    ) {
        let router = self.clone();
        let line = line.to_string();
        let ctl = Arc::clone(ctl);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let result = router.leg_forward(idx, &line, deadline, &ctl);
            let _ = tx.send((idx, result));
        });
    }

    fn leg_forward(
        &self,
        idx: usize,
        line: &str,
        deadline: Instant,
        ctl: &LegCtl,
    ) -> Result<(String, Duration), ForwardFail> {
        let replica = &self.inner.replicas[idx];
        let _guard = InFlightGuard::new(&replica.in_flight);
        let started = Instant::now();
        let conn = self.dial(idx, deadline).map_err(ForwardFail::Dial)?;
        *lock_recover(&ctl.conn) = conn.try_clone().ok();
        let mut conn = conn;
        match self.send_recv(&mut conn, line, deadline) {
            Ok(raw) => {
                replica.note_success(&self.inner.opts);
                if !ctl.cancelled.load(Ordering::Acquire) {
                    self.checkin(idx, conn);
                }
                Ok((raw, started.elapsed()))
            }
            Err(e) => {
                if ctl.cancelled.load(Ordering::Acquire) {
                    // Our own shutdown, not the replica's fault.
                    return Err(ForwardFail::Died(e));
                }
                let fail = Self::classify(e, deadline);
                if !matches!(fail, ForwardFail::DeadlineStall) {
                    replica.note_failure(&self.inner.opts);
                }
                Err(fail)
            }
        }
    }

    /// One complete request/response exchange with a replica, preferring
    /// a pooled connection. A pooled connection that *died* (the replica
    /// closed it while idle) rolls over to a fresh dial; a pooled read
    /// that merely stalled does not — the request may be admitted, and
    /// resending it over a new connection would double-solve it.
    fn forward_once(
        &self,
        idx: usize,
        line: &str,
        deadline: Instant,
    ) -> Result<String, ForwardFail> {
        let replica = &self.inner.replicas[idx];
        let _guard = InFlightGuard::new(&replica.in_flight);
        // The pop must not borrow the pool across the exchange: an `if
        // let` scrutinee's temporary guard lives to the end of the block,
        // and `checkin` relocks the same (non-reentrant) pool mutex.
        let pooled = lock_recover(&replica.pool).pop();
        if let Some(mut pooled) = pooled {
            match self.send_recv(&mut pooled, line, deadline) {
                Ok(raw) => {
                    self.checkin(idx, pooled);
                    return Ok(raw);
                }
                Err(e) if e.kind() == IoErrorKind::TimedOut => {
                    return Err(Self::classify(e, deadline));
                }
                Err(_) => {} // stale pooled conn: fall through to a fresh dial
            }
        }
        let mut conn = self.dial(idx, deadline).map_err(|e| {
            if Instant::now() >= deadline {
                ForwardFail::DeadlineStall
            } else {
                ForwardFail::Dial(e)
            }
        })?;
        match self.send_recv(&mut conn, line, deadline) {
            Ok(raw) => {
                self.checkin(idx, conn);
                Ok(raw)
            }
            Err(e) => Err(Self::classify(e, deadline)),
        }
    }

    fn classify(e: std::io::Error, deadline: Instant) -> ForwardFail {
        if e.kind() == IoErrorKind::TimedOut && Instant::now() >= deadline {
            ForwardFail::DeadlineStall
        } else {
            ForwardFail::Died(e)
        }
    }

    fn dial(&self, idx: usize, deadline: Instant) -> std::io::Result<TcpStream> {
        krsp_failpoint::fail_point!("router.dial", |msg| Err(std::io::Error::other(msg)));
        let replica = &self.inner.replicas[idx];
        let addr: SocketAddr =
            replica.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::other(format!("{} resolves nowhere", replica.addr))
            })?;
        let timeout = self
            .inner
            .opts
            .dial_timeout
            .min(deadline.saturating_duration_since(Instant::now()))
            .max(Duration::from_millis(1));
        let conn = TcpStream::connect_timeout(&addr, timeout)?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    /// Writes `line` and reads exactly one reply line, bounded by
    /// `deadline`. A stall surfaces as `TimedOut` (see [`ForwardFail`]).
    fn send_recv(
        &self,
        conn: &mut TcpStream,
        line: &str,
        deadline: Instant,
    ) -> std::io::Result<String> {
        krsp_failpoint::fail_point!("router.forward", |msg| Err(std::io::Error::other(msg)));
        let remaining = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        conn.set_write_timeout(Some(remaining))?;
        conn.write_all(line.as_bytes())?;
        conn.write_all(b"\n")?;
        conn.flush()?;
        conn.set_read_timeout(Some(READ_TICK))?;
        let mut reader = BufReader::new(&mut *conn);
        match read_line_capped(&mut reader, MAX_LINE_BYTES, &mut |_partial| {
            if Instant::now() >= deadline {
                BlockAction::Fail
            } else {
                BlockAction::Retry
            }
        })? {
            LineRead::Line(raw) => String::from_utf8(raw)
                .map_err(|_| std::io::Error::other("replica sent a non-UTF-8 reply")),
            LineRead::TooLong => Err(std::io::Error::other("replica reply exceeds the line cap")),
            LineRead::Eof => Err(std::io::Error::new(
                IoErrorKind::UnexpectedEof,
                "replica closed the connection mid-request",
            )),
        }
    }

    /// Returns a healthy connection to the replica's pool (bounded).
    fn checkin(&self, idx: usize, conn: TcpStream) {
        let mut pool = lock_recover(&self.inner.replicas[idx].pool);
        if pool.len() < self.inner.opts.pool_cap {
            pool.push(conn);
        }
    }

    /// Forwards a `Metrics` request to the first live replica (the ring
    /// has no aggregate metrics; per-replica counters are what exist).
    fn forward_metrics(&self) -> WireResponse {
        let deadline = saturating_deadline(Instant::now(), self.inner.opts.default_deadline);
        let all: Vec<usize> = (0..self.inner.replicas.len()).collect();
        for idx in self.live_or_all(&all) {
            if let Ok(raw) = self.forward_once(idx, "\"Metrics\"", deadline) {
                if let Ok((_, response)) = decode_response_line(&raw) {
                    return response;
                }
            }
        }
        wire_error(ErrorKind::Internal, "no replica answered Metrics")
    }

    /// Broadcasts a `Register`/`Epoch` request to every non-`Down`
    /// replica, so each one's epoch-scoped caches track the lineage, and
    /// merges the replies (`Register`: the first digest, which is
    /// content-addressed and therefore identical everywhere; `Epoch`:
    /// max epoch, summed sweep counters).
    fn broadcast(&self, request: &WireRequest) -> WireResponse {
        let line = match serde_json::to_string(request) {
            Ok(line) => line,
            Err(e) => return wire_error(ErrorKind::Internal, format!("encode failed: {e}")),
        };
        let deadline = saturating_deadline(Instant::now(), self.inner.opts.default_deadline);
        let mut registered: Option<RegisteredReply> = None;
        let mut epoch: Option<EpochReply> = None;
        let mut last_error: Option<WireResponse> = None;
        let mut reached = 0u32;
        for (idx, replica) in self.inner.replicas.iter().enumerate() {
            if replica.state() == RingState::Down {
                continue;
            }
            match self.forward_once(idx, &line, deadline) {
                Ok(raw) => match decode_response_line(&raw) {
                    Ok((_, WireResponse::Registered(r))) => {
                        reached += 1;
                        registered.get_or_insert(r);
                    }
                    Ok((_, WireResponse::Epoch(e))) => {
                        reached += 1;
                        match &mut epoch {
                            None => epoch = Some(e),
                            Some(merged) => {
                                merged.epoch = merged.epoch.max(e.epoch);
                                merged.retained += e.retained;
                                merged.evicted += e.evicted;
                                merged.seeds += e.seeds;
                            }
                        }
                    }
                    Ok((_, other)) => {
                        last_error = Some(other);
                    }
                    Err(_) => replica.note_failure(&self.inner.opts),
                },
                Err(ForwardFail::DeadlineStall) => {}
                Err(_) => replica.note_failure(&self.inner.opts),
            }
        }
        if let Some(r) = registered {
            WireResponse::Registered(r)
        } else if let Some(e) = epoch {
            WireResponse::Epoch(e)
        } else if let Some(err) = last_error {
            err
        } else {
            wire_error(
                ErrorKind::Internal,
                format!("broadcast reached {reached} replicas, none answered"),
            )
        }
    }

    /// One active-probe sweep over every replica, applying state
    /// transitions. Called by the prober thread; exposed so tests can
    /// drive the state machine without timing races.
    pub fn probe_all_once(&self) {
        for idx in 0..self.inner.replicas.len() {
            let replica = &self.inner.replicas[idx];
            match self.probe_health(idx) {
                Ok(health) => {
                    let draining =
                        health.status == HealthStatus::Draining || health.accepting == Some(false);
                    if draining {
                        replica.mark_draining(health.draining_since_ms.unwrap_or(0));
                    } else {
                        replica.probe_ready(&self.inner.opts);
                    }
                }
                Err(_) => replica.note_failure(&self.inner.opts),
            }
        }
    }

    /// One `Health` probe round-trip on a dedicated connection. Dials
    /// directly (not through `router.dial`) so chaos scripts can fail
    /// forwards and probes independently.
    fn probe_health(&self, idx: usize) -> std::io::Result<HealthReply> {
        krsp_failpoint::fail_point!("router.probe", |msg| Err(std::io::Error::other(msg)));
        let opts = &self.inner.opts;
        let deadline = saturating_deadline(Instant::now(), opts.probe_timeout);
        let replica = &self.inner.replicas[idx];
        let addr: SocketAddr =
            replica.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::other(format!("{} resolves nowhere", replica.addr))
            })?;
        let mut conn = TcpStream::connect_timeout(&addr, opts.probe_timeout)?;
        conn.set_write_timeout(Some(opts.probe_timeout))?;
        conn.write_all(b"\"Health\"\n")?;
        conn.flush()?;
        conn.set_read_timeout(Some(READ_TICK))?;
        let mut reader = BufReader::new(&mut conn);
        let raw = match read_line_capped(&mut reader, MAX_LINE_BYTES, &mut |_partial| {
            if Instant::now() >= deadline {
                BlockAction::Fail
            } else {
                BlockAction::Retry
            }
        })? {
            LineRead::Line(raw) => raw,
            LineRead::TooLong | LineRead::Eof => {
                return Err(std::io::Error::other("probe got no reply line"))
            }
        };
        let text = String::from_utf8(raw).map_err(|_| std::io::Error::other("non-UTF-8 probe"))?;
        match decode_response_line(&text) {
            Ok((_, WireResponse::Health(health))) => Ok(health),
            Ok((_, other)) => Err(std::io::Error::other(format!(
                "probe expected Health, got {other:?}"
            ))),
            Err(e) => Err(std::io::Error::other(e)),
        }
    }

    /// Spawns the active-probe loop; it sweeps every
    /// [`RouterOptions::probe_interval`] until `shutdown` flips.
    pub fn spawn_prober(&self, shutdown: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
        let router = self.clone();
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::Acquire) {
                router.probe_all_once();
                // Sleep in small ticks so shutdown stays prompt.
                let mut slept = Duration::ZERO;
                let interval = router.inner.opts.probe_interval;
                while slept < interval && !shutdown.load(Ordering::Acquire) {
                    let tick = Duration::from_millis(20).min(interval - slept);
                    std::thread::sleep(tick);
                    slept += tick;
                }
            }
        })
    }
}

/// Serves the router on `listener` until `shutdown` flips: thread per
/// client connection, blocking reads with the same stall policy as the
/// threaded replica server, plus the active prober. On shutdown the
/// listener closes, in-flight client connections get
/// [`RouterOptions::grace`] to finish, and the prober joins.
pub fn serve_ring_with_shutdown(
    router: &Router,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let opts = router.options().clone();
    let prober = router.spawn_prober(Arc::clone(&shutdown));
    let conns = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                if conns.load(Ordering::Acquire) >= opts.max_conns {
                    crate::proto::shed_at_accept(stream, "router connection limit reached");
                    continue;
                }
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                let conns = Arc::clone(&conns);
                conns.fetch_add(1, Ordering::AcqRel);
                std::thread::spawn(move || {
                    let _ = handle_client(&router, stream, &shutdown);
                    conns.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => std::thread::sleep(opts.poll),
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    drop(listener);
    let deadline = saturating_deadline(Instant::now(), opts.grace);
    while conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(opts.poll.min(Duration::from_millis(10)));
    }
    let _ = prober.join();
    Ok(())
}

/// One client connection: read request lines, answer each through the
/// ring. Mirrors the threaded replica server's stall policy (idle
/// connections close on drain; a half-sent line gets bounded patience).
fn handle_client(router: &Router, stream: TcpStream, shutdown: &AtomicBool) -> std::io::Result<()> {
    let opts = router.options();
    let tick = opts.poll.max(Duration::from_millis(1));
    stream.set_read_timeout(Some(tick))?;
    stream.set_write_timeout(Some(opts.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut stalled = Duration::ZERO;
        let mut on_block = |partial: bool| {
            if partial {
                stalled += tick;
                if stalled >= opts.read_timeout {
                    BlockAction::Fail
                } else {
                    BlockAction::Retry
                }
            } else if shutdown.load(Ordering::Acquire) {
                BlockAction::Close
            } else {
                BlockAction::Retry
            }
        };
        let reply = match read_line_capped(&mut reader, MAX_LINE_BYTES, &mut on_block)? {
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => {
                let msg = format!("request line exceeds {MAX_LINE_BYTES} bytes");
                encode_response_line(None, &wire_error(ErrorKind::OversizeLine, msg))
            }
            LineRead::Line(raw) => {
                let line = String::from_utf8_lossy(&raw);
                if line.trim().is_empty() {
                    continue;
                }
                router.handle_line(&line)
            }
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn opts(n: usize) -> RouterOptions {
        RouterOptions {
            replicas: (0..n).map(|i| format!("127.0.0.1:{}", 49000 + i)).collect(),
            ..RouterOptions::default()
        }
    }

    #[test]
    fn ring_order_is_deterministic_and_complete() {
        let ring = Ring::new(5, 64);
        for key in [0u128, 1, 42, u128::MAX, 0xdead_beef] {
            let a = ring.order_for(key, 5);
            let b = ring.order_for(key, 5);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "order {a:?} must cover all");
        }
    }

    #[test]
    fn ring_spreads_keys_across_replicas() {
        let ring = Ring::new(4, 64);
        let mut owners: HashMap<usize, usize> = HashMap::new();
        for i in 0u128..4096 {
            let key = u128::from(splitmix64(i as u64)) << 64 | u128::from(splitmix64(!(i as u64)));
            *owners.entry(ring.order_for(key, 4)[0]).or_default() += 1;
        }
        // With 64 vnodes each replica should own a meaningful share; the
        // bound is loose on purpose (hash distribution, not balance).
        for idx in 0..4 {
            let share = owners.get(&idx).copied().unwrap_or(0);
            assert!(share > 4096 / 16, "replica {idx} owns only {share}/4096");
        }
    }

    #[test]
    fn dead_primary_spills_only_its_keys() {
        // Consistent hashing's contract: removing one replica from
        // eligibility must not move keys whose owner is still live.
        let ring = Ring::new(4, 64);
        for i in 0u128..512 {
            let key = u128::from(splitmix64(i as u64));
            let order = ring.order_for(key, 4);
            let survivors: Vec<usize> = order.iter().copied().filter(|&r| r != 3).collect();
            if order[0] != 3 {
                assert_eq!(order[0], survivors[0], "live key {i} must not move");
            } else {
                assert_eq!(order[1], survivors[0], "dead key {i} goes to its successor");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let router = Router::new(opts(2));
        let far = saturating_deadline(Instant::now(), Duration::from_secs(3600));
        let key = 0x1234_5678_9abc_def0_u128;
        let a = router.backoff(key, 0, far);
        let b = router.backoff(key, 0, far);
        assert_eq!(a, b, "same (seed, key, attempt) must give the same jitter");
        let base = router.options().backoff_base;
        assert!(
            a >= base / 2 && a < base,
            "attempt 0 jitter in [base/2, base)"
        );
        let late = router.backoff(key, 6, far);
        assert!(late <= router.options().backoff_cap);
        assert!(late >= router.options().backoff_cap / 2);
        // Different keys jitter differently (with overwhelming odds).
        let c = router.backoff(key ^ 1, 0, far);
        assert!(a != c || router.backoff(key ^ 2, 0, far) != a);
    }

    #[test]
    fn backoff_respects_the_deadline() {
        let router = Router::new(opts(1));
        let near = saturating_deadline(Instant::now(), Duration::from_micros(100));
        assert!(router.backoff(7, 5, near) <= Duration::from_micros(100));
    }

    #[test]
    fn seed_precedence_flag_env_default() {
        assert_eq!(seed_from(Some(9), Some("4".into())), 9);
        assert_eq!(seed_from(None, Some("4".into())), 4);
        assert_eq!(seed_from(None, Some(" 17 ".into())), 17);
        assert_eq!(seed_from(None, Some("nope".into())), DEFAULT_SEED);
        assert_eq!(seed_from(None, None), DEFAULT_SEED);
    }

    #[test]
    fn state_machine_degrades_downs_and_revives() {
        let o = opts(1);
        let replica = Replica::new("127.0.0.1:1".into());
        assert_eq!(replica.state(), RingState::Up);
        replica.note_failure(&o);
        assert_eq!(replica.state(), RingState::Up);
        replica.note_failure(&o);
        assert_eq!(replica.state(), RingState::Degraded);
        replica.note_failure(&o);
        replica.note_failure(&o);
        assert_eq!(replica.state(), RingState::Down);
        replica.note_success(&o);
        assert_eq!(replica.state(), RingState::Down);
        replica.note_success(&o);
        assert_eq!(replica.state(), RingState::Up);
    }

    #[test]
    fn draining_clears_only_via_probe() {
        let o = opts(1);
        let replica = Replica::new("127.0.0.1:1".into());
        replica.mark_draining(1500);
        assert_eq!(replica.state(), RingState::Draining);
        assert_eq!(replica.status().draining_since_ms, 1500);
        // Passive successes (in-flight answers during the drain) must not
        // resurrect it for new sends.
        for _ in 0..8 {
            replica.note_success(&o);
        }
        assert_eq!(replica.state(), RingState::Draining);
        // A probe that sees it ready (restarted process) revives it.
        replica.probe_ready(&o);
        replica.probe_ready(&o);
        assert_eq!(replica.state(), RingState::Up);
        assert_eq!(replica.status().draining_since_ms, 0);
    }

    #[test]
    fn draining_replica_goes_down_when_it_stops_answering() {
        let o = opts(1);
        let replica = Replica::new("127.0.0.1:1".into());
        replica.mark_draining(10);
        for _ in 0..o.down_after {
            replica.note_failure(&o);
        }
        assert_eq!(replica.state(), RingState::Down);
    }
}
