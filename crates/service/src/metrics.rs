//! Service metrics: counters plus a log-linear latency histogram.
//!
//! The histogram uses power-of-two major buckets subdivided into 8 linear
//! minor buckets (an HDR-histogram-lite), so quantile reconstruction is
//! accurate to within 12.5% across the full microsecond-to-minutes range
//! with a fixed 320-slot footprint. [`MetricsSnapshot`] is the serializable
//! view shipped over the wire by the `metrics` request and printed by
//! `krsp-load`.

use crate::cache::CacheStats;
use crate::degrade::Rung;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

const MAJORS: usize = 40;
const MINORS: usize = 8;

/// A fixed-footprint latency histogram over microsecond samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (µs).
    pub total_us: u64,
    /// Smallest sample (µs); 0 when empty.
    pub min_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; MAJORS * MINORS],
            count: 0,
            total_us: 0,
            min_us: 0,
            max_us: 0,
        }
    }
}

fn bucket_index(us: u64) -> usize {
    if us < MINORS as u64 {
        return us as usize; // exact for 0..8 µs
    }
    let major = 63 - us.leading_zeros() as usize;
    let major = major.min(MAJORS - 1);
    let minor = ((us >> (major - 3)) & 7) as usize;
    major * MINORS + minor
}

fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < MINORS {
        return idx as u64;
    }
    let (major, minor) = (idx / MINORS, idx % MINORS);
    // Shift in u128 and saturate: at MAJORS = 40 the top shift (36) still
    // fits u64, but a wider histogram would silently wrap `u64 <<` for the
    // top buckets (16 << 60 loses the high bit) — saturating keeps the
    // bound monotone instead.
    let bound = u128::from((MINORS + minor + 1) as u64) << (major - 3);
    u64::try_from(bound).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        if self.count == 0 || us < self.min_us {
            self.min_us = us;
        }
        self.max_us = self.max_us.max(us);
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
    }

    /// Approximate `q`-quantile in µs (`q ∈ [0, 1]`); 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Exact integer rank. `(q * count as f64).ceil()` misrounds once
        // `count` exceeds f64's 53-bit mantissa (`count as f64` itself
        // rounds, so e.g. q = 1.0 could yield rank < count and return the
        // wrong bucket); instead take q in 2⁻³² fixed point — exact for
        // the conversion — and compute ceil(q_fp · count / 2³²) in u128.
        const FP: u128 = 1 << 32;
        let q_fp = (q.clamp(0.0, 1.0) * FP as f64).round() as u128;
        let rank_u128 = (q_fp * u128::from(self.count)).div_ceil(FP);
        let rank = u64::try_from(rank_u128.min(u128::from(self.count)))
            .expect("rank is clamped to count")
            .max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(idx).min(self.max_us).max(self.min_us);
            }
        }
        self.max_us
    }

    /// Mean latency in µs; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Live counters for the TCP frontend, updated lock-free from the reactor
/// thread and the solver-completion callbacks. The serializable view is
/// [`FrontendSnapshot`]; [`crate::Service::attach_frontend_stats`] folds it
/// into every [`MetricsSnapshot`].
#[derive(Debug, Default)]
pub struct FrontendStats {
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    conns_peak: AtomicU64,
    shed_total_cap: AtomicU64,
    shed_per_client: AtomicU64,
    rate_limited: AtomicU64,
    read_timeouts: AtomicU64,
    pipelined_peak: AtomicU64,
    health_probes: AtomicU64,
    batches: AtomicU64,
    batch_queries: AtomicU64,
}

impl FrontendStats {
    /// Records an accepted connection, tracking the open-connection peak.
    pub fn conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let open = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(open, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a connection shed at accept because the total cap was hit.
    pub fn shed_total_cap(&self) {
        self.shed_total_cap.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed at accept because its client address had
    /// too many connections open already.
    pub fn shed_per_client(&self) {
        self.shed_per_client.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused by the token-bucket rate limiter.
    pub fn rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection dropped for stalling mid-line past the read
    /// timeout (the slow-loris defense).
    pub fn read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Tracks the peak number of in-flight pipelined solves observed on a
    /// single connection.
    pub fn observe_pipeline_depth(&self, depth: u64) {
        self.pipelined_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a served `Health` probe.
    pub fn health_probe(&self) {
        self.health_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `SolveBatch` request carrying `queries` queries.
    pub fn batch(&self, queries: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_queries.fetch_add(queries, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> FrontendSnapshot {
        FrontendSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_peak: self.conns_peak.load(Ordering::Relaxed),
            shed_total_cap: self.shed_total_cap.load(Ordering::Relaxed),
            shed_per_client: self.shed_per_client.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            pipelined_peak: self.pipelined_peak.load(Ordering::Relaxed),
            health_probes: self.health_probes.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
        }
    }
}

/// Serializable view of [`FrontendStats`], nested in [`MetricsSnapshot`].
/// All-zero when the service runs without a TCP frontend (library use).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendSnapshot {
    /// Connections accepted over the frontend's lifetime.
    pub conns_accepted: u64,
    /// Connections currently open.
    pub conns_open: u64,
    /// Peak simultaneous open connections.
    pub conns_peak: u64,
    /// Connections shed at accept by the total-connection cap.
    pub shed_total_cap: u64,
    /// Connections shed at accept by the per-client cap.
    pub shed_per_client: u64,
    /// Requests refused by the per-client token-bucket rate limiter.
    pub rate_limited: u64,
    /// Connections dropped for stalling mid-line past the read timeout.
    pub read_timeouts: u64,
    /// Peak in-flight pipelined solves observed on one connection.
    pub pipelined_peak: u64,
    /// `Health` probes served.
    pub health_probes: u64,
    /// `SolveBatch` requests served.
    pub batches: u64,
    /// Queries carried by those `SolveBatch` requests.
    pub batch_queries: u64,
}

/// A point-in-time, serializable view of the service counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full (backpressure).
    pub rejected_queue_full: u64,
    /// Requests whose deadline had already expired at admission.
    pub rejected_expired: u64,
    /// Requests answered (any rung, cached or fresh).
    pub completed: u64,
    /// Requests that proved infeasible.
    pub infeasible: u64,
    /// Answers served from the solution cache.
    pub cache_hits: u64,
    /// Answers that required a solver run.
    pub cache_misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Cache entries removed deliberately (epoch invalidation or
    /// quarantine purge), as opposed to capacity eviction.
    pub cache_invalidations: u64,
    /// Answers served from the disk tier (promoted into the LRU on hit).
    pub disk_hits: u64,
    /// Disk-tier lookups that missed (no record, or unreadable).
    pub disk_misses: u64,
    /// Records recovered from disk segments when the tier opened — the
    /// restart-warmth measure.
    pub disk_recovered: u64,
    /// Records dropped by the disk recovery scan (torn or corrupt).
    pub disk_dropped: u64,
    /// Fresh solves that accepted or resumed from a warm-start seed.
    pub warm_starts: u64,
    /// Topology-epoch advances applied.
    pub epoch_advances: u64,
    /// Cache entries rekeyed (retained) across epoch advances.
    pub epoch_retained: u64,
    /// Cache entries evicted (reseeded) by epoch advances.
    pub epoch_evicted: u64,
    /// Highest epoch across registered topology lineages.
    pub epoch: u64,
    /// Requests answered by piggybacking on another request's in-flight
    /// solve (singleflight followers).
    pub coalesced: u64,
    /// Cache counters broken out per shard (hits/misses/evictions each);
    /// the aggregate fields above are their sum.
    pub per_shard: Vec<CacheStats>,
    /// Answers whose deadline had lapsed by completion time.
    pub deadline_missed: u64,
    /// Fresh solves per ladder rung, indexed by [`Rung::index`]
    /// (`[full, single_probe, lp_rounding, min_delay]`).
    pub per_rung: [u64; 4],
    /// Solver panics contained at the provisioning boundary.
    pub solver_panics: u64,
    /// Keys newly quarantined after repeated solver panics (transitions,
    /// not fast-fail hits).
    pub quarantined: u64,
    /// Requests refused because the service was shutting down.
    pub rejected_shutdown: u64,
    /// End-to-end latency of completed requests.
    pub latency: LatencyHistogram,
    /// TCP-frontend counters (all-zero without an attached frontend).
    pub frontend: FrontendSnapshot,
}

impl MetricsSnapshot {
    /// Increments the fresh-solve counter for `rung`.
    pub fn count_rung(&mut self, rung: Rung) {
        self.per_rung[rung.index()] += 1;
    }
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(us);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.min_us, 1);
        assert_eq!(h.max_us, 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Log-linear buckets: within 12.5% of the true order statistic.
        assert!((440..=570).contains(&p50), "p50 = {p50}");
        assert!((870..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut h = LatencyHistogram::default();
        for us in [3u64, 3, 5] {
            h.record(us);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn quantile_rank_is_exact_past_f64_mantissa() {
        // 2⁵⁴ samples in one bucket plus a single sample at the max: with
        // the old float rank, `count as f64` rounds 2⁵⁴ + 1 down to 2⁵⁴,
        // so quantile(1.0) landed in the big bucket instead of the max.
        let mut h = LatencyHistogram::default();
        let big = 1u64 << 54;
        h.buckets[bucket_index(100)] = big;
        h.buckets[bucket_index(5000)] = 1;
        h.count = big + 1;
        h.min_us = 100;
        h.max_us = 5000;
        assert_eq!(h.quantile(1.0), 5000);
        // Interior quantiles still resolve to the big bucket.
        assert!(h.quantile(0.5) < 5000);
    }

    #[test]
    fn bucket_upper_bounds_bracket_samples_and_stay_monotone() {
        // Sweep the representable range (the histogram caps at major 39 ≈
        // 2⁴⁰ µs): every sample must land in a bucket whose upper bound
        // brackets it, and bounds must be monotone in the bucket index.
        let (mut prev_idx, mut prev_bound) = (0usize, 0u64);
        let mut us = 1u64;
        while us < (1 << 39) {
            let idx = bucket_index(us);
            let bound = bucket_upper_bound(idx);
            assert!(bound >= us, "bound {bound} < sample {us}");
            assert!(idx >= prev_idx, "bucket index regressed at {us}");
            assert!(bound >= prev_bound, "bound regressed at {us}");
            (prev_idx, prev_bound) = (idx, bound);
            us += (us / 3).max(1);
        }
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut m = MetricsSnapshot {
            admitted: 7,
            coalesced: 3,
            per_shard: vec![CacheStats::default(); 4],
            ..MetricsSnapshot::default()
        };
        m.count_rung(Rung::LpRounding);
        m.latency.record(42);
        let text = serde_json::to_string(&m).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.admitted, 7);
        assert_eq!(back.coalesced, 3);
        assert_eq!(back.per_shard.len(), 4);
        assert_eq!(back.per_rung, [0, 0, 1, 0]);
        assert_eq!(back.latency.count, 1);
        assert_eq!(back.latency.quantile(1.0), m.latency.quantile(1.0));
    }
}
