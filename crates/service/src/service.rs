//! The provisioning service: admission control, worker pool, cache, ladder.
//!
//! Request lifecycle:
//!
//! 1. **Admission** — [`Service::provision`] rejects immediately when the
//!    bounded queue is full ([`Rejection::QueueFull`], the backpressure
//!    signal). Admission runs before the cache and the coalescing layer so
//!    backpressure semantics are independent of traffic shape.
//! 2. **Cache** — the *calling* thread computes the canonical key (see
//!    [`crate::hash`]) and answers from the sharded LRU cache when
//!    possible; a hit never touches the worker pool.
//! 3. **Coalescing** — concurrent misses for the same key are collapsed by
//!    a singleflight table (see [`crate::singleflight`]): one leader
//!    solves, every duplicate blocks on the calling thread and receives a
//!    clone of the leader's answer. Follower waits never run on pool
//!    workers, so coalescing cannot deadlock the pool.
//! 4. **Ladder** — the leader picks the highest degradation rung the
//!    *remaining* deadline admits (see [`crate::degrade`]) and solves on
//!    the shared [`Executor`](krsp::Executor) — the same scheduling
//!    primitive `krsp::solve_batch` fans out over. Admitted requests are
//!    never dropped: an exhausted deadline degrades to the min-delay rung
//!    rather than failing.
//! 5. **Audit** — in debug builds every fresh solution is re-verified by
//!    `krsp::verify::audit` against the rung's advertised guarantee.

use crate::cache::ShardedCache;
use crate::degrade::{
    solve_degraded_seeded, Degraded, Guarantee, KernelLadder, LadderError, LadderPolicy, Rung,
};
use crate::disk::DiskCache;
use crate::epoch::{EpochError, EpochRegistry, EpochReport, EpochScope};
use crate::hash::{canonical_key, scope_key, CacheKey};
use crate::metrics::{FrontendStats, MetricsSnapshot};
use crate::quarantine::Quarantine;
use crate::singleflight::{Join, Singleflight};
use crate::sync_util::{lock_recover, saturating_deadline, wait_timeout_recover};
use krsp::{CancelToken, Config, Executor, Instance, KernelKind, Solution};
use krsp_gen::WeightChange;
use krsp_graph::{DiGraph, EdgeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum queued-but-unstarted requests before backpressure.
    pub queue_capacity: usize,
    /// Solution-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Number of independently-locked cache shards (clamped to ≥ 1).
    pub cache_shards: usize,
    /// Coalesce concurrent requests for the same instance onto one solver
    /// run (the singleflight layer). Disabling this makes every miss solve
    /// independently — useful as an experimental baseline.
    pub coalesce: bool,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Strict mode: reject a request whose deadline has fully lapsed by
    /// the time it reaches the solver, instead of serving it via the
    /// lowest ladder rung (the default).
    pub reject_expired: bool,
    /// Solver configuration for the top ladder rungs.
    pub solver: Config,
    /// Degradation-ladder admission thresholds.
    pub ladder: LadderPolicy,
    /// Per-rung RSP-kernel assignment (DESIGN.md §4.16). A request may
    /// override this with a uniform ladder via [`Request::kernel`].
    pub kernels: KernelLadder,
    /// Solver panics on one key before it is quarantined (0 disables the
    /// quarantine entirely).
    pub quarantine_threshold: u32,
    /// How long a quarantined key keeps fast-failing before it is allowed
    /// to solve again.
    pub quarantine_ttl: Duration,
    /// Maximum keys tracked by the quarantine (oldest-expiring evicted).
    pub quarantine_capacity: usize,
    /// Directory for the crash-safe disk cache tier; `None` disables it.
    /// Solutions append to segment files here and survive a SIGKILL — a
    /// restarted daemon recovers them and answers warm.
    pub cache_dir: Option<PathBuf>,
    /// Byte cap for the disk tier (oldest segments pruned); 0 = uncapped.
    pub cache_disk_cap: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            coalesce: true,
            default_deadline: Duration::from_secs(5),
            reject_expired: false,
            solver: Config::default(),
            // Admission thresholds account for the solver's data-parallel
            // width: a wider rayon pool finishes the top rungs sooner, so
            // tighter deadlines still admit them.
            ladder: LadderPolicy::for_width(krsp::solver_width()),
            kernels: KernelLadder::default(),
            quarantine_threshold: 2,
            quarantine_ttl: Duration::from_secs(30),
            quarantine_capacity: 128,
            cache_dir: None,
            cache_disk_cap: 0,
        }
    }
}

/// One provisioning request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The kRSP instance to provision.
    pub instance: Instance,
    /// Latency budget; `None` uses [`ServiceConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// RSP-kernel override: `Some(kind)` replaces the configured
    /// [`ServiceConfig::kernels`] ladder with a uniform `kind` ladder for
    /// this request only; `None` uses the service default.
    pub kernel: Option<KernelKind>,
}

/// A successful provisioning answer.
#[derive(Clone, Debug)]
pub struct Response {
    /// The provisioned path system.
    pub solution: Solution,
    /// Ladder rung that produced the answer.
    pub rung: Rung,
    /// The rung's advertised guarantee, recorded per request.
    pub guarantee: Guarantee,
    /// The RSP kernel assigned to the rung that produced the answer.
    pub kernel: KernelKind,
    /// Whether the answer came from the solution cache.
    pub cache_hit: bool,
    /// Whether the answer piggybacked on a concurrent identical request's
    /// solve (singleflight follower) instead of running its own.
    pub coalesced: bool,
    /// End-to-end latency (admission to completion).
    pub latency: Duration,
    /// True when the answer arrived after the request's deadline.
    pub deadline_missed: bool,
}

/// Why a request produced no solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The admission queue was full — retry later (backpressure).
    QueueFull,
    /// The deadline had already lapsed at admission.
    DeadlineExpired,
    /// The instance is infeasible at every ladder rung.
    Infeasible,
    /// The service is shutting down.
    ShuttingDown,
    /// The solver panicked on this request; the panic was contained at the
    /// provisioning boundary (the worker survives) and the payload is
    /// carried for diagnostics.
    SolverPanic(String),
    /// The instance is quarantined after repeated solver panics; retried
    /// after the quarantine TTL.
    Quarantined,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull => f.write_str("admission queue full"),
            Rejection::DeadlineExpired => f.write_str("deadline expired before admission"),
            Rejection::Infeasible => f.write_str("instance infeasible at every rung"),
            Rejection::ShuttingDown => f.write_str("service shutting down"),
            Rejection::SolverPanic(msg) => write!(f, "solver panicked: {msg}"),
            Rejection::Quarantined => {
                f.write_str("instance quarantined after repeated solver panics")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// How a fresh solve can fail. This is the value singleflight followers
/// receive a clone of, so it must stay cheap to clone; a contained panic is
/// *not* published to followers (the leader aborts the flight instead, and
/// each follower re-drives against the quarantine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SolveFailure {
    /// Infeasible at every admitted rung.
    Infeasible,
    /// The ladder solve panicked; payload text for diagnostics.
    Panicked(String),
}

#[cfg(test)]
type SolveGate = Box<dyn Fn(&Shared) + Send + Sync>;

struct Shared {
    cfg: ServiceConfig,
    cache: ShardedCache,
    flights: Singleflight<Result<Degraded, SolveFailure>>,
    metrics: Mutex<MetricsSnapshot>,
    in_flight: AtomicUsize,
    /// Negative cache of keys whose solves keep panicking.
    quarantine: Quarantine,
    /// Crash-safe second cache tier (None without `cache_dir`).
    disk: Option<DiskCache>,
    /// Registered topology lineages for epoch-scoped keys and warm seeds.
    epochs: EpochRegistry,
    /// Master shutdown token; every request token is its child, so
    /// tripping it degrades in-flight solves to their cheapest rung.
    shutdown: CancelToken,
    /// When [`Service::begin_shutdown`] first ran — the `Health` reply's
    /// `draining_since_ms` field, so routers and operators can tell a
    /// fresh drain from a stuck one.
    draining_since: Mutex<Option<Instant>>,
    /// Pairs with `idle` so `drain` can park instead of spin-polling the
    /// `in_flight` counter.
    drain_lock: Mutex<()>,
    /// Notified whenever `in_flight` drops to zero.
    idle: Condvar,
    /// Live TCP-frontend counters, folded into `metrics()` once a frontend
    /// attaches them (absent in pure library use).
    frontend: Mutex<Option<Arc<FrontendStats>>>,
    /// Test hook: runs inside every solver job before the solve, letting
    /// tests hold a leader's flight open deterministically.
    #[cfg(test)]
    solve_gate: Mutex<Option<SolveGate>>,
}

struct Slot {
    result: Mutex<Option<Result<Degraded, SolveFailure>>>,
    done: Condvar,
}

/// The in-process provisioning service. Cloneable handles share one worker
/// pool, cache, and metrics registry; dropping the last handle drains the
/// queue and joins the workers.
#[derive(Clone)]
pub struct Service {
    shared: Arc<Shared>,
    executor: Arc<Executor>,
}

impl Service {
    /// Starts a service with `cfg`.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        // Re-arm fault-injection sites from `KRSP_FAILPOINTS` so chaos runs
        // configure themselves from the environment (additive; a no-op when
        // the variable is unset).
        krsp_failpoint::setup_from_env();
        let executor = Arc::new(Executor::new(cfg.workers));
        // The disk tier opens (and recovers) before the first request; an
        // unopenable directory degrades to memory-only rather than failing
        // the whole service.
        let disk =
            cfg.cache_dir
                .as_ref()
                .and_then(|dir| match DiskCache::open(dir, cfg.cache_disk_cap) {
                    Ok(d) => Some(d),
                    Err(e) => {
                        eprintln!(
                            "krsp-service: disk cache at {} disabled: {e}",
                            dir.display()
                        );
                        None
                    }
                });
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            flights: Singleflight::new(cfg.cache_shards),
            metrics: Mutex::new(MetricsSnapshot::default()),
            in_flight: AtomicUsize::new(0),
            quarantine: Quarantine::new(
                cfg.quarantine_threshold,
                cfg.quarantine_ttl,
                cfg.quarantine_capacity,
            ),
            disk,
            epochs: EpochRegistry::default(),
            shutdown: CancelToken::cancellable(),
            draining_since: Mutex::new(None),
            drain_lock: Mutex::new(()),
            idle: Condvar::new(),
            frontend: Mutex::new(None),
            #[cfg(test)]
            solve_gate: Mutex::new(None),
            cfg,
        });
        Service { shared, executor }
    }

    /// Submits a request and blocks until its answer (or rejection) is
    /// available. Safe to call from many threads concurrently.
    pub fn provision(&self, request: Request) -> Result<Response, Rejection> {
        let admitted_at = Instant::now();
        let deadline = request.deadline.unwrap_or(self.shared.cfg.default_deadline);
        self.admit()?;
        let out = self.drive(&request.instance, request.kernel, admitted_at, deadline);
        self.release();
        out
    }

    /// Submits a request without blocking the caller: admission (and its
    /// rejections) happen synchronously, but an admitted request's solve
    /// runs as a pool job and `complete` fires from a worker thread. This
    /// is the entry point the event-driven frontend uses — its reactor
    /// thread must never block on a solve.
    ///
    /// `complete` is called exactly once, either inline (rejections — the
    /// caller gets backpressure feedback before queuing anything) or from
    /// the worker that finished the request.
    pub fn provision_async<F>(&self, request: Request, complete: F)
    where
        F: FnOnce(Result<Response, Rejection>) + Send + 'static,
    {
        let admitted_at = Instant::now();
        let deadline = request.deadline.unwrap_or(self.shared.cfg.default_deadline);
        if let Err(rejected) = self.admit() {
            complete(Err(rejected));
            return;
        }
        let svc = self.clone();
        // The job drives the full post-admission path on a worker. A
        // singleflight follower briefly parks that worker until its leader
        // publishes (bounded by one solve; a queued follower behind its
        // own leader on a single worker cannot exist — the leader's job
        // ran to completion first, retiring the flight).
        self.executor.submit(Box::new(move || {
            let out = svc.drive(&request.instance, request.kernel, admitted_at, deadline);
            svc.release();
            complete(out);
        }));
    }

    /// Shutdown gate plus admission control. `in_flight` counts admitted
    /// requests not yet released; the queue is full when it exceeds
    /// capacity plus the workers that could be draining it. This runs
    /// before the cache and the coalescing layer, so backpressure does not
    /// depend on how duplicate-heavy the traffic is.
    fn admit(&self) -> Result<(), Rejection> {
        // A draining service refuses new work outright so `drain` only
        // waits on requests admitted before the flip.
        if self.shared.shutdown.is_cancelled() {
            lock_recover(&self.shared.metrics).rejected_shutdown += 1;
            return Err(Rejection::ShuttingDown);
        }
        let limit = self.shared.cfg.queue_capacity + self.shared.cfg.workers;
        if self.shared.in_flight.fetch_add(1, Ordering::AcqRel) >= limit {
            self.release();
            lock_recover(&self.shared.metrics).rejected_queue_full += 1;
            return Err(Rejection::QueueFull);
        }
        lock_recover(&self.shared.metrics).admitted += 1;
        Ok(())
    }

    /// Releases one admission slot, waking `drain` when the service goes
    /// idle. The notify runs under `drain_lock` so a concurrent drainer
    /// cannot check the counter and park between our decrement and notify.
    fn release(&self) {
        if self.shared.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = lock_recover(&self.shared.drain_lock);
            self.shared.idle.notify_all();
        }
    }

    /// The post-admission request path, run entirely on the calling
    /// thread: cache probe, singleflight join, and (for leaders) the solve
    /// dispatched to the pool.
    fn drive(
        &self,
        instance: &Instance,
        kernel: Option<KernelKind>,
        admitted_at: Instant,
        deadline: Duration,
    ) -> Result<Response, Rejection> {
        let shared = &self.shared;
        // A per-request kernel override swaps in a uniform ladder; the
        // effective ladder is part of the cache key, so answers, coalesced
        // flights, and quarantine strikes are all scoped per kernel — a
        // kernel that keeps panicking on a key never blocks the others.
        let kernels = kernel.map_or(shared.cfg.kernels, KernelLadder::uniform);
        let ktag = kernel_tag(&kernels);
        // A request whose graph matches a registered topology lineage (at
        // its current weights) keys by structure + query + epoch instead of
        // the full weighted digest, so a later weight-only epoch advance
        // invalidates its entry selectively; everything else keys by the
        // canonical digest at epoch 0 (bit-identical to the historical
        // keys for the default kernel ladder).
        let scope = shared.epochs.lookup(instance);
        let key = match &scope {
            Some(s) => scope_key(s.base, ktag, s.epoch),
            None => scope_key(canonical_key(instance), ktag, 0),
        };
        // Disk records outlive the process but the epoch registry does
        // not: after a restart a re-registered lineage starts over at
        // epoch 0, so a weight-free epoch-scoped key could alias records
        // written under *different* weights in a previous run (weights
        // drift while the daemon is down, or the old run was epochs
        // ahead). The disk tier therefore always keys by the canonical
        // weight-inclusive digest; for unscoped requests that is `key`
        // itself.
        let disk_key = shared.disk.as_ref().map(|_| match &scope {
            Some(_) => scope_key(canonical_key(instance), ktag, 0),
            None => key,
        });
        // The request's cancel token: trips when the service shuts down or
        // the deadline passes, degrading the solve to its cheapest rung.
        let cancel = shared
            .shutdown
            .child_with_deadline(admitted_at.checked_add(deadline));
        loop {
            // Cache first — a hit costs two hashes and one shard lock.
            if let Some(hit) = shared.cache.get(key) {
                let latency = admitted_at.elapsed();
                let deadline_missed = latency > deadline;
                finish_metrics(shared, latency, deadline_missed, None, false);
                return Ok(Response {
                    solution: hit.solution,
                    rung: hit.rung,
                    guarantee: hit.guarantee,
                    kernel: hit.kernel,
                    cache_hit: true,
                    coalesced: false,
                    latency,
                    deadline_missed,
                });
            }

            // Disk tier on an LRU miss: a record that survived a restart
            // (or LRU pressure) answers like a cache hit and is promoted
            // back into the LRU for its successors.
            if let (Some(disk), Some(dk)) = (&shared.disk, disk_key) {
                if let Some(hit) = disk.get(dk) {
                    shared.cache.put(key, hit.clone());
                    let latency = admitted_at.elapsed();
                    let deadline_missed = latency > deadline;
                    finish_metrics(shared, latency, deadline_missed, None, false);
                    return Ok(Response {
                        solution: hit.solution,
                        rung: hit.rung,
                        guarantee: hit.guarantee,
                        kernel: hit.kernel,
                        cache_hit: true,
                        coalesced: false,
                        latency,
                        deadline_missed,
                    });
                }
            }

            // Quarantine after both cache tiers: a stored answer predating
            // the strikes is still a valid answer, but a fresh solve on a
            // striking key would crash-loop the workers. (Activation also
            // purges the key's LRU entry *and* its disk record — see
            // `record_outcome` — so a quarantined key has nothing cached
            // to serve.)
            if shared.quarantine.is_quarantined(key) {
                return Err(Rejection::Quarantined);
            }

            let remaining = deadline.saturating_sub(admitted_at.elapsed());
            if shared.cfg.reject_expired && remaining.is_zero() && !deadline.is_zero() {
                lock_recover(&shared.metrics).rejected_expired += 1;
                return Err(Rejection::DeadlineExpired);
            }

            // A seed is the previous epoch's evicted answer for this exact
            // query: the solver re-verifies it against the new weights and
            // warm-starts when it still certifies, falling back to the
            // bit-identical cold solve when it does not. Consuming it here
            // (leader / uncoalesced paths only) means followers never race
            // for it.
            if !shared.cfg.coalesce {
                let seed = scope.as_ref().and_then(|s| shared.epochs.take_seed(s, key));
                let solved = self.solve_on_pool(instance, &kernels, remaining, &cancel, seed);
                self.record_outcome(key, disk_key, scope.as_ref(), ktag, &solved);
                return finish_fresh(shared, solved, admitted_at, deadline, false);
            }
            match shared.flights.join(key) {
                Join::Leader(leader) => {
                    let seed = scope.as_ref().and_then(|s| shared.epochs.take_seed(s, key));
                    let solved = self.solve_on_pool(instance, &kernels, remaining, &cancel, seed);
                    // Populate the cache before retiring the flight, so a
                    // request arriving after the flight is gone hits the
                    // cache instead of solving again.
                    self.record_outcome(key, disk_key, scope.as_ref(), ktag, &solved);
                    if matches!(solved, Err(SolveFailure::Panicked(_))) {
                        // Abort the flight instead of publishing the panic:
                        // each follower wakes with `None` and re-drives on
                        // its own, where it either sees the quarantine or
                        // retries the solve itself. Dropping the leader
                        // without `complete` publishes the abort.
                        drop(leader);
                    } else {
                        leader.complete(solved.clone());
                    }
                    return finish_fresh(shared, solved, admitted_at, deadline, false);
                }
                Join::Follower(Some(solved)) => {
                    return finish_fresh(shared, solved, admitted_at, deadline, true);
                }
                // The leader aborted (dropped without publishing); start
                // over rather than hang.
                Join::Follower(None) => {}
            }
        }
    }

    /// Post-solve bookkeeping shared by the coalesced and independent
    /// paths: successes populate both cache tiers (the disk tier under its
    /// weight-inclusive `disk_key`) and register with the epoch lineage
    /// when the request is scoped to one; contained panics strike the
    /// quarantine — an activation purges the key's LRU entry *and* its
    /// disk record, so the quarantine is authoritative until its TTL
    /// lapses.
    fn record_outcome(
        &self,
        key: CacheKey,
        disk_key: Option<CacheKey>,
        scope: Option<&EpochScope>,
        ktag: u32,
        solved: &Result<Degraded, SolveFailure>,
    ) {
        match solved {
            Ok(d) => {
                self.shared.cache.put(key, d.clone());
                if let Some(s) = scope {
                    self.shared.epochs.record_issued(s, key, ktag);
                }
                if let (Some(disk), Some(dk)) = (&self.shared.disk, disk_key) {
                    // Disk persistence is best-effort: a full or failing
                    // volume degrades the tier, never the answer.
                    let _ = disk.put(dk, d);
                }
                if d.warm {
                    lock_recover(&self.shared.metrics).warm_starts += 1;
                }
            }
            Err(SolveFailure::Panicked(_)) => {
                if self.shared.quarantine.strike(key) {
                    lock_recover(&self.shared.metrics).quarantined += 1;
                    self.shared.cache.remove(key);
                    if let (Some(disk), Some(dk)) = (&self.shared.disk, disk_key) {
                        disk.remove(dk);
                    }
                }
            }
            Err(SolveFailure::Infeasible) => {}
        }
    }

    /// Runs one ladder solve on the resident pool, blocking the calling
    /// thread for the result. When the caller *is* a pool worker (a nested
    /// provision), the solve runs inline instead — parking a worker behind
    /// a job that needs a worker would deadlock the pool.
    fn solve_on_pool(
        &self,
        instance: &Instance,
        kernels: &KernelLadder,
        remaining: Duration,
        cancel: &CancelToken,
        seed: Option<EdgeSet>,
    ) -> Result<Degraded, SolveFailure> {
        if Executor::on_worker_thread() {
            return solve_job(
                &self.shared,
                instance,
                kernels,
                remaining,
                cancel,
                seed.as_ref(),
            );
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        {
            let shared = Arc::clone(&self.shared);
            let slot = Arc::clone(&slot);
            let instance = instance.clone();
            let kernels = *kernels;
            let cancel = cancel.clone();
            // `solve_job` contains every panic behind `catch_unwind`, so
            // this closure always fills the slot and the condvar wait below
            // cannot hang on a dead worker.
            self.executor.submit(Box::new(move || {
                let out = solve_job(
                    &shared,
                    &instance,
                    &kernels,
                    remaining,
                    &cancel,
                    seed.as_ref(),
                );
                *lock_recover(&slot.result) = Some(out);
                slot.done.notify_all();
            }));
        }
        let mut guard = lock_recover(&slot.result);
        while guard.is_none() {
            guard = crate::sync_util::wait_recover(&slot.done, guard);
        }
        guard
            .take()
            .expect("loop exits only when the slot is filled")
    }

    /// A point-in-time copy of the service counters (cache counters folded
    /// in, per shard and in aggregate).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = lock_recover(&self.shared.metrics).clone();
        let c = self.shared.cache.stats();
        m.cache_hits = c.hits;
        m.cache_misses = c.misses;
        m.cache_evictions = c.evictions;
        m.cache_invalidations = c.invalidations;
        m.per_shard = self.shared.cache.shard_stats();
        if let Some(disk) = &self.shared.disk {
            let d = disk.stats();
            m.disk_hits = d.hits;
            m.disk_misses = d.misses;
            m.disk_recovered = d.recovered;
            m.disk_dropped = d.dropped;
        }
        m.epoch = self.shared.epochs.max_epoch();
        if let Some(frontend) = lock_recover(&self.shared.frontend).as_ref() {
            m.frontend = frontend.snapshot();
        }
        m
    }

    /// Registers `graph` as a topology lineage at epoch 0 (idempotent for
    /// the same structure). Subsequent requests whose graph matches the
    /// lineage's current weights get epoch-scoped, weight-free cache keys,
    /// so [`Service::advance_epoch`] can invalidate selectively instead of
    /// orphaning every entry on a weight change. Returns the structural
    /// digest (the lineage handle) and the current epoch.
    pub fn register_topology(&self, graph: &DiGraph) -> (u128, u64) {
        self.shared.epochs.register(graph)
    }

    /// Applies a weight delta to a registered lineage, bumping its epoch:
    /// cached entries untouched by the delta are re-keyed to the new epoch
    /// in place (they stay exact), touched entries are evicted into
    /// warm-start seeds that the next solve of the same query consumes.
    pub fn advance_epoch(
        &self,
        structural: u128,
        changes: &[WeightChange],
    ) -> Result<EpochReport, EpochError> {
        let report = self
            .shared
            .epochs
            .advance(&self.shared.cache, structural, changes)?;
        let mut m = lock_recover(&self.shared.metrics);
        m.epoch_advances += 1;
        m.epoch_retained += report.retained;
        m.epoch_evicted += report.evicted;
        Ok(report)
    }

    /// Registers the TCP frontend's live counters so [`Service::metrics`]
    /// (and therefore the `Metrics` wire request) reports them. The
    /// frontend keeps the same `Arc` and updates it lock-free.
    pub fn attach_frontend_stats(&self, stats: Arc<FrontendStats>) {
        *lock_recover(&self.shared.frontend) = Some(stats);
    }

    /// The attached frontend counters, if a frontend has registered any —
    /// how non-reactor entry points (the threaded server's `SolveBatch`
    /// fan-out) account the traffic they serve.
    #[must_use]
    pub fn frontend_stats(&self) -> Option<Arc<FrontendStats>> {
        lock_recover(&self.shared.frontend).clone()
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Requests currently queued or running.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Flips the service into shutdown: new requests are refused with
    /// [`Rejection::ShuttingDown`], and every in-flight request's cancel
    /// token trips, degrading its solve to the cheapest completed rung so
    /// it finishes (with a valid answer) instead of running its full
    /// course. Idempotent.
    pub fn begin_shutdown(&self) {
        lock_recover(&self.shared.draining_since).get_or_insert_with(Instant::now);
        self.shared.shutdown.cancel();
    }

    /// Whether [`Service::begin_shutdown`] has been called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.is_cancelled()
    }

    /// How long the service has been draining (since the first
    /// [`Service::begin_shutdown`]); `None` while serving normally.
    #[must_use]
    pub fn draining_since(&self) -> Option<Duration> {
        lock_recover(&self.shared.draining_since).map(|at| at.elapsed())
    }

    /// Number of registered topology lineages (see
    /// [`Service::register_topology`]).
    #[must_use]
    pub fn lineage_count(&self) -> u64 {
        self.shared.epochs.lineage_count()
    }

    /// Blocks until every in-flight request has finished, or `grace`
    /// elapses. Returns `true` when the service fully drained. Usually
    /// preceded by [`Service::begin_shutdown`] (otherwise new arrivals can
    /// keep the count from reaching zero).
    pub fn drain(&self, grace: Duration) -> bool {
        let deadline = saturating_deadline(Instant::now(), grace);
        let mut guard = lock_recover(&self.shared.drain_lock);
        loop {
            if self.in_flight() == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // Parked until `release` drops the count to zero (it notifies
            // under `drain_lock`, so the wakeup cannot be lost) or the
            // grace deadline arrives.
            guard = wait_timeout_recover(&self.shared.idle, guard, deadline - now);
        }
    }

    /// Installs a hook that runs inside every solver job before solving.
    #[cfg(test)]
    fn set_solve_gate(&self, gate: SolveGate) {
        *lock_recover(&self.shared.solve_gate) = Some(gate);
    }
}

/// One ladder solve behind the panic boundary. Everything that can run
/// user-triggered solver code — the test gate, the `service.solve`
/// failpoint, the ladder itself, and the debug-build audit — executes
/// inside `catch_unwind`, so a panic anywhere in the solver surfaces as
/// [`SolveFailure::Panicked`] instead of killing the worker thread.
fn solve_job(
    shared: &Shared,
    instance: &Instance,
    kernels: &KernelLadder,
    remaining: Duration,
    cancel: &CancelToken,
    seed: Option<&EdgeSet>,
) -> Result<Degraded, SolveFailure> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(test)]
        if let Some(gate) = lock_recover(&shared.solve_gate).as_ref() {
            gate(shared);
        }
        krsp_failpoint::fail_point!("service.solve");
        let out = solve_degraded_seeded(
            instance,
            &shared.cfg.solver,
            remaining,
            &shared.cfg.ladder,
            kernels,
            cancel,
            seed,
        );
        #[cfg(debug_assertions)]
        if let Ok(degraded) = &out {
            audit_response(instance, degraded);
        }
        out
    }));
    match caught {
        Ok(Ok(degraded)) => Ok(degraded),
        Ok(Err(LadderError::Infeasible)) => Err(SolveFailure::Infeasible),
        Err(payload) => Err(SolveFailure::Panicked(panic_message(payload.as_ref()))),
    }
}

/// Packs the effective kernel ladder into a 4-byte tag (one kernel byte
/// per rung) for [`scope_key`], so distinct kernel assignments occupy
/// disjoint cache/singleflight/quarantine key spaces. The
/// all-[`KernelKind::Classic`] default packs to zero, which `scope_key`
/// folds as the identity at epoch 0 — default-configuration keys stay
/// identical to the plain instance digest.
fn kernel_tag(kernels: &KernelLadder) -> u32 {
    let mut tag = 0u32;
    for rung in Rung::LADDER {
        tag = (tag << 8) | kernels.for_rung(rung) as u32;
    }
    tag
}

/// Best-effort text of a panic payload (`&str` and `String` payloads cover
/// `panic!`, `assert!`, `unwrap`, and the failpoint `panic` action).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Converts a (possibly shared) solve outcome into the caller's response,
/// recording the caller's own latency, deadline, and coalescing outcome.
fn finish_fresh(
    shared: &Shared,
    solved: Result<Degraded, SolveFailure>,
    admitted_at: Instant,
    deadline: Duration,
    coalesced: bool,
) -> Result<Response, Rejection> {
    match solved {
        Ok(degraded) => {
            let latency = admitted_at.elapsed();
            let deadline_missed = latency > deadline;
            // Only the leader's solve counts as a rung solve; followers
            // report themselves via the coalesced counter.
            let fresh_rung = (!coalesced).then_some(degraded.rung);
            finish_metrics(shared, latency, deadline_missed, fresh_rung, coalesced);
            Ok(Response {
                solution: degraded.solution,
                rung: degraded.rung,
                guarantee: degraded.guarantee,
                kernel: degraded.kernel,
                cache_hit: false,
                coalesced,
                latency,
                deadline_missed,
            })
        }
        Err(SolveFailure::Infeasible) => {
            let mut m = lock_recover(&shared.metrics);
            m.infeasible += 1;
            if coalesced {
                m.coalesced += 1;
            }
            Err(Rejection::Infeasible)
        }
        // Only the leader sees a panic (the flight is aborted, not
        // completed), so there is no coalesced bookkeeping here.
        Err(SolveFailure::Panicked(msg)) => {
            lock_recover(&shared.metrics).solver_panics += 1;
            Err(Rejection::SolverPanic(msg))
        }
    }
}

fn finish_metrics(
    shared: &Shared,
    latency: Duration,
    deadline_missed: bool,
    fresh_rung: Option<Rung>,
    coalesced: bool,
) {
    let mut m = lock_recover(&shared.metrics);
    m.completed += 1;
    if deadline_missed {
        m.deadline_missed += 1;
    }
    if coalesced {
        m.coalesced += 1;
    }
    if let Some(rung) = fresh_rung {
        m.count_rung(rung);
    }
    m.latency
        .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
}

/// Debug-build audit: every fresh answer is re-verified from first
/// principles against the rung's advertised guarantee (delay within
/// `delay_factor · D`; cost within `cost_factor ×` the LP lower bound when
/// the rung certifies one).
#[cfg(debug_assertions)]
fn audit_response(instance: &Instance, degraded: &crate::degrade::Degraded) {
    let mut relaxed = instance.clone();
    relaxed.delay_bound = instance
        .delay_bound
        .saturating_mul(i64::from(degraded.guarantee.delay_factor));
    let reference = degraded
        .guarantee
        .cost_factor
        .zip(degraded.solution.lower_bound)
        .map(|(factor, lb)| (lb, factor));
    let violations = krsp::verify::audit(&relaxed, &degraded.solution, reference);
    assert!(
        violations.is_empty(),
        "service produced an invalid {} response: {violations:?}",
        degraded.rung
    );
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn tradeoff(d: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d).unwrap()
    }

    fn req(d: i64) -> Request {
        Request {
            instance: tradeoff(d),
            deadline: None,
            kernel: None,
        }
    }

    #[test]
    fn provisions_and_caches() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = svc.provision(req(14)).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.coalesced);
        assert_eq!(first.rung, Rung::Full);
        assert!(first.solution.delay <= 14);

        let second = svc.provision(req(14)).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.solution.cost, first.solution.cost);

        let m = svc.metrics();
        assert_eq!(m.admitted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.per_rung, [1, 0, 0, 0]);
        assert_eq!(m.per_shard.len(), svc.config().cache_shards);
    }

    #[test]
    fn zero_deadline_serves_degraded() {
        let svc = Service::new(ServiceConfig::default());
        let out = svc
            .provision(Request {
                instance: tradeoff(14),
                deadline: Some(Duration::ZERO),
                kernel: None,
            })
            .unwrap();
        assert_eq!(out.rung, Rung::MinDelay);
        assert_eq!(out.guarantee.cost_factor, None);
        assert!(out.solution.delay <= 14);
    }

    #[test]
    fn strict_mode_rejects_lapsed_deadlines() {
        let svc = Service::new(ServiceConfig {
            reject_expired: true,
            ..ServiceConfig::default()
        });
        let err = svc
            .provision(Request {
                instance: tradeoff(14),
                deadline: Some(Duration::from_nanos(1)),
                kernel: None,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::DeadlineExpired);
        assert_eq!(svc.metrics().rejected_expired, 1);
    }

    #[test]
    fn infeasible_is_reported() {
        let svc = Service::new(ServiceConfig::default());
        let err = svc.provision(req(3)).unwrap_err();
        assert_eq!(err, Rejection::Infeasible);
        assert_eq!(svc.metrics().infeasible, 1);
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = svc.clone();
                s.spawn(move || {
                    for d in [14, 16, 22, 14, 16, 22] {
                        let out = svc.provision(req(d)).unwrap();
                        assert!(out.solution.delay <= d);
                    }
                });
            }
        });
        let m = svc.metrics();
        assert_eq!(m.completed, 24);
        // 3 distinct instances: every request is a cache hit, a coalesced
        // follower, or one of the fresh solves. Coalescing collapses
        // simultaneous misses, so fresh solves stay near 3 (a solve can
        // repeat only in the narrow window between a cache probe and the
        // leader's cache fill).
        let fresh: u64 = m.per_rung.iter().sum();
        assert_eq!(m.cache_hits + m.coalesced + fresh, 24);
        assert!(fresh >= 3, "fresh = {fresh}");
        assert!(m.cache_hits + m.coalesced >= 24 - 2 * 3, "m = {m:?}");
        assert_eq!(m.cache_evictions, 0);
    }

    #[test]
    fn coalescing_runs_exactly_one_solve_for_concurrent_duplicates() {
        const K: usize = 8;
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        // Hold the leader's flight open until every other request has
        // joined it as a follower — making "exactly one solver run for K
        // concurrent duplicates" deterministic rather than racy.
        let key = canonical_key(&tradeoff(14));
        svc.set_solve_gate(Box::new(move |shared| {
            while shared.flights.waiters(key) < K - 1 {
                std::thread::yield_now();
            }
        }));
        std::thread::scope(|s| {
            for _ in 0..K {
                let svc = svc.clone();
                s.spawn(move || {
                    let out = svc.provision(req(14)).unwrap();
                    assert!(!out.cache_hit, "cache was empty for the whole flight");
                    assert!(out.solution.delay <= 14);
                });
            }
        });
        let m = svc.metrics();
        assert_eq!(m.completed, K as u64);
        assert_eq!(
            m.per_rung.iter().sum::<u64>(),
            1,
            "exactly one solver run, m = {m:?}"
        );
        assert_eq!(m.coalesced, (K - 1) as u64);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn disabling_coalescing_solves_independently() {
        let svc = Service::new(ServiceConfig {
            coalesce: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let out = svc.provision(req(14)).unwrap();
            assert!(!out.cache_hit && !out.coalesced);
        }
        let m = svc.metrics();
        assert_eq!(m.per_rung.iter().sum::<u64>(), 3);
        assert_eq!(m.coalesced, 0);
    }

    #[test]
    fn panicking_leader_does_not_panic_followers() {
        const K: usize = 6;
        let svc = Service::new(ServiceConfig {
            workers: 2,
            // Retries must be allowed to reach the solver again.
            quarantine_threshold: 0,
            ..ServiceConfig::default()
        });
        let key = canonical_key(&tradeoff(14));
        let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let fired = Arc::clone(&fired);
            svc.set_solve_gate(Box::new(move |shared| {
                // First leader only: wait until every follower has joined
                // the flight, then blow up — deterministically exercising
                // the abort-and-retry path with a full house of waiters.
                if !fired.swap(true, Ordering::SeqCst) {
                    while shared.flights.waiters(key) < K - 1 {
                        std::thread::yield_now();
                    }
                    panic!("injected leader panic");
                }
            }));
        }
        let (mut ok, mut panicked) = (0, 0);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..K {
                let svc = svc.clone();
                handles.push(s.spawn(move || svc.provision(req(14))));
            }
            for h in handles {
                match h.join().expect("client threads must not panic") {
                    Ok(r) => {
                        assert!(r.solution.delay <= 14);
                        ok += 1;
                    }
                    Err(Rejection::SolverPanic(msg)) => {
                        assert!(msg.contains("injected"), "msg = {msg}");
                        panicked += 1;
                    }
                    Err(other) => panic!("unexpected rejection: {other}"),
                }
            }
        });
        assert_eq!(panicked, 1, "exactly the leader reports the panic");
        assert_eq!(ok, K - 1, "every follower recovered via retry");
        let m = svc.metrics();
        assert_eq!(m.solver_panics, 1);
        assert_eq!(m.quarantined, 0);
        assert!(m.per_rung.iter().sum::<u64>() >= 1, "a retry re-solved");
    }

    #[test]
    fn quarantine_fast_fails_after_repeated_panics() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            quarantine_threshold: 2,
            quarantine_ttl: Duration::from_secs(60),
            ..ServiceConfig::default()
        });
        svc.set_solve_gate(Box::new(|_| panic!("always broken")));
        for _ in 0..2 {
            let err = svc.provision(req(14)).unwrap_err();
            assert!(matches!(err, Rejection::SolverPanic(_)), "err = {err}");
        }
        // The third request fast-fails without touching the solver.
        let t0 = Instant::now();
        assert_eq!(svc.provision(req(14)).unwrap_err(), Rejection::Quarantined);
        assert!(t0.elapsed() < Duration::from_millis(250));
        let m = svc.metrics();
        assert_eq!(m.solver_panics, 2);
        assert_eq!(m.quarantined, 1);
        // Other keys are unaffected once the faulty gate is gone.
        svc.set_solve_gate(Box::new(|_| {}));
        assert!(svc.provision(req(16)).is_ok());
        assert_eq!(svc.provision(req(14)).unwrap_err(), Rejection::Quarantined);
    }

    #[test]
    fn shutdown_rejects_new_and_drains_in_flight() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let release = Arc::clone(&release);
            svc.set_solve_gate(Box::new(move |_| {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }));
        }
        std::thread::scope(|s| {
            let in_flight = {
                let svc = svc.clone();
                s.spawn(move || svc.provision(req(14)))
            };
            while svc.in_flight() == 0 {
                std::thread::yield_now();
            }
            svc.begin_shutdown();
            assert!(svc.is_shutting_down());
            // New arrivals are refused while the gated request drains.
            assert_eq!(svc.provision(req(16)).unwrap_err(), Rejection::ShuttingDown);
            assert!(
                !svc.drain(Duration::from_millis(20)),
                "gated request cannot drain yet"
            );
            release.store(true, Ordering::Release);
            assert!(svc.drain(Duration::from_secs(10)), "drain after release");
            let out = in_flight.join().expect("no panic").expect("still answered");
            assert!(out.solution.delay <= 14);
            // The shutdown tripped the request's token mid-solve: it
            // finished on the always-on rung with a complete answer.
            assert_eq!(out.rung, Rung::MinDelay);
            assert_eq!(out.guarantee, Rung::MinDelay.guarantee());
        });
        assert_eq!(svc.metrics().rejected_shutdown, 1);
    }

    #[test]
    fn queue_full_backpressure() {
        // One worker, tiny queue, and requests that take real time: the
        // admission counter must reject the overflow. Admission runs
        // before coalescing, so identical instances still backpressure.
        let svc = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let mut rejected = 0u64;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..12 {
                let svc = svc.clone();
                handles.push(s.spawn(move || svc.provision(req(14)).is_err()));
            }
            for h in handles {
                if h.join().unwrap() {
                    rejected += 1;
                }
            }
        });
        let m = svc.metrics();
        assert_eq!(rejected, m.rejected_queue_full);
        // With 12 simultaneous clients, capacity 1 and one worker, at
        // least some requests must have seen backpressure.
        assert!(m.rejected_queue_full > 0, "no backpressure observed");
        assert_eq!(m.completed + m.rejected_queue_full, 12);
    }

    #[test]
    fn disk_tier_answers_across_a_restart() {
        let dir = std::env::temp_dir().join(format!("krsp-svc-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            workers: 2,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let first = {
            let svc = Service::new(cfg.clone());
            let first = svc.provision(req(14)).unwrap();
            assert!(!first.cache_hit);
            first
        };
        // A fresh service over the same directory — the LRU is empty, the
        // disk tier is not.
        let svc = Service::new(cfg);
        let again = svc.provision(req(14)).unwrap();
        assert!(again.cache_hit, "restart must answer from the disk tier");
        assert_eq!(again.solution.cost, first.solution.cost);
        assert_eq!(again.solution.delay, first.solution.delay);
        let m = svc.metrics();
        assert!(m.disk_hits >= 1, "disk hit not counted: {m:?}");
        assert!(m.disk_recovered >= 1, "recovery scan found nothing");
        // Promoted into the LRU: the next lookup is a memory hit.
        let third = svc.provision(req(14)).unwrap();
        assert!(third.cache_hit);
        assert_eq!(svc.metrics().disk_hits, m.disk_hits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_with_drifted_weights_never_serves_stale_scoped_records() {
        use krsp_graph::EdgeId;
        let dir = std::env::temp_dir().join(format!("krsp-svc-drift-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            workers: 2,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        // Run 1: an epoch-scoped answer lands in the disk tier.
        let first = {
            let svc = Service::new(cfg.clone());
            svc.register_topology(&tradeoff(14).graph);
            let first = svc.provision(req(14)).unwrap();
            assert!(!first.cache_hit);
            first
        };
        // Weights drift while the daemon is down; the restarted daemon
        // re-registers the lineage, which starts over at epoch 0 — the
        // aliasing scenario a weight-free disk key would fall for.
        let drifted = {
            let g = tradeoff(14).graph;
            let bump: Vec<(EdgeId, i64, i64)> = g
                .edges()
                .iter()
                .enumerate()
                .map(|(i, e)| (EdgeId(i as u32), e.cost + 1, e.delay))
                .collect();
            g.with_updates(&bump)
        };
        let svc = Service::new(cfg);
        svc.register_topology(&drifted);
        let out = svc
            .provision(Request {
                instance: Instance::new(drifted, NodeId(0), NodeId(5), 2, 14).unwrap(),
                deadline: None,
                kernel: None,
            })
            .unwrap();
        assert!(
            !out.cache_hit,
            "pre-drift record must not answer post-drift"
        );
        // Re-solved under the new weights: all four solution edges cost
        // one more (the uniform bump leaves the optimal pairing alone).
        assert_eq!(out.solution.cost, first.solution.cost + 4);
        // The pre-drift instance no longer matches the lineage's weights,
        // so it keys canonically — the same weight-inclusive family the
        // run-1 record was written under, which still answers it exactly.
        let stale_weights = svc.provision(req(14)).unwrap();
        assert!(
            stale_weights.cache_hit,
            "canonical disk record must survive"
        );
        assert_eq!(stale_weights.solution.cost, first.solution.cost);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_activation_purges_the_disk_record() {
        let dir = std::env::temp_dir().join(format!("krsp-svc-quar-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let svc = Service::new(ServiceConfig {
            workers: 1,
            quarantine_threshold: 1,
            quarantine_ttl: Duration::from_secs(60),
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let good = svc.provision(req(14)).unwrap();
        assert!(!good.cache_hit, "first answer is fresh (and hits disk)");
        // The key's solves start panicking (the stored answer predates the
        // strikes): activation must leave *neither* tier anything to
        // serve, or the quarantine never actually fast-fails the key.
        let key = canonical_key(&tradeoff(14));
        svc.record_outcome(
            key,
            Some(key),
            None,
            0,
            &Err(SolveFailure::Panicked("injected".into())),
        );
        assert_eq!(svc.metrics().quarantined, 1);
        assert_eq!(
            svc.provision(req(14)).unwrap_err(),
            Rejection::Quarantined,
            "a quarantined key must not answer from the disk tier"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_advance_retains_rekeys_and_warm_starts() {
        use krsp_graph::EdgeId;
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        // D = 22 makes the phase-1 rounding infeasible, so the cold solve
        // probes — exactly the work a certified seed skips.
        let inst = tradeoff(22);
        let (topo, epoch0) = svc.register_topology(&inst.graph);
        assert_eq!(epoch0, 0);
        let first = svc.provision(req(22)).unwrap();
        assert!(!first.cache_hit);
        // The optimum pairs 0→3→5 with 0→2→5 (edge indices 2..=5); the
        // 0→1 edge (index 0) is off-solution. Re-asserting its current
        // weights is a valid non-decreasing delta that touches nothing
        // the cached answer uses, so the entry is rekeyed, not evicted.
        let report = svc
            .advance_epoch(
                topo,
                &[krsp_gen::WeightChange {
                    edge: EdgeId(0),
                    cost: 1,
                    delay: 10,
                }],
            )
            .unwrap();
        assert_eq!((report.epoch, report.retained, report.evicted), (1, 1, 0));
        let second = svc.provision(req(22)).unwrap();
        assert!(second.cache_hit, "untouched entry must survive the epoch");
        // Touching a used edge (0→3, index 4) evicts the entry into a
        // warm-start seed; the next solve of the same query consumes it.
        let report = svc
            .advance_epoch(
                topo,
                &[krsp_gen::WeightChange {
                    edge: EdgeId(4),
                    cost: 2,
                    delay: 6,
                }],
            )
            .unwrap();
        assert_eq!((report.epoch, report.retained, report.evicted), (2, 0, 1));
        assert_eq!(report.seeds, 1);
        let third = svc.provision(req(22)).unwrap();
        assert!(!third.cache_hit, "touched entry must not be served stale");
        assert_eq!(third.solution.cost, first.solution.cost);
        let m = svc.metrics();
        assert_eq!(m.epoch, 2);
        assert_eq!(m.epoch_advances, 2);
        assert_eq!(m.epoch_retained, 1);
        assert_eq!(m.epoch_evicted, 1);
        assert!(
            m.warm_starts >= 1,
            "identical-weight seed must warm-start: {m:?}"
        );
    }
}
