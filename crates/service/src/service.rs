//! The provisioning service: admission control, worker pool, cache, ladder.
//!
//! Request lifecycle:
//!
//! 1. **Admission** — [`Service::provision`] rejects immediately when the
//!    bounded queue is full ([`Rejection::QueueFull`], the backpressure
//!    signal). Admission runs before the cache and the coalescing layer so
//!    backpressure semantics are independent of traffic shape.
//! 2. **Cache** — the *calling* thread computes the canonical key (see
//!    [`crate::hash`]) and answers from the sharded LRU cache when
//!    possible; a hit never touches the worker pool.
//! 3. **Coalescing** — concurrent misses for the same key are collapsed by
//!    a singleflight table (see [`crate::singleflight`]): one leader
//!    solves, every duplicate blocks on the calling thread and receives a
//!    clone of the leader's answer. Follower waits never run on pool
//!    workers, so coalescing cannot deadlock the pool.
//! 4. **Ladder** — the leader picks the highest degradation rung the
//!    *remaining* deadline admits (see [`crate::degrade`]) and solves on
//!    the shared [`Executor`](krsp::Executor) — the same scheduling
//!    primitive `krsp::solve_batch` fans out over. Admitted requests are
//!    never dropped: an exhausted deadline degrades to the min-delay rung
//!    rather than failing.
//! 5. **Audit** — in debug builds every fresh solution is re-verified by
//!    `krsp::verify::audit` against the rung's advertised guarantee.

use crate::cache::ShardedCache;
use crate::degrade::{solve_degraded, Degraded, Guarantee, LadderError, LadderPolicy, Rung};
use crate::hash::canonical_key;
use crate::metrics::MetricsSnapshot;
use crate::singleflight::{Join, Singleflight};
use krsp::{Config, Executor, Instance, Solution};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum queued-but-unstarted requests before backpressure.
    pub queue_capacity: usize,
    /// Solution-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Number of independently-locked cache shards (clamped to ≥ 1).
    pub cache_shards: usize,
    /// Coalesce concurrent requests for the same instance onto one solver
    /// run (the singleflight layer). Disabling this makes every miss solve
    /// independently — useful as an experimental baseline.
    pub coalesce: bool,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Strict mode: reject a request whose deadline has fully lapsed by
    /// the time it reaches the solver, instead of serving it via the
    /// lowest ladder rung (the default).
    pub reject_expired: bool,
    /// Solver configuration for the top ladder rungs.
    pub solver: Config,
    /// Degradation-ladder admission thresholds.
    pub ladder: LadderPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            coalesce: true,
            default_deadline: Duration::from_secs(5),
            reject_expired: false,
            solver: Config::default(),
            // Admission thresholds account for the solver's data-parallel
            // width: a wider rayon pool finishes the top rungs sooner, so
            // tighter deadlines still admit them.
            ladder: LadderPolicy::for_width(krsp::solver_width()),
        }
    }
}

/// One provisioning request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The kRSP instance to provision.
    pub instance: Instance,
    /// Latency budget; `None` uses [`ServiceConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

/// A successful provisioning answer.
#[derive(Clone, Debug)]
pub struct Response {
    /// The provisioned path system.
    pub solution: Solution,
    /// Ladder rung that produced the answer.
    pub rung: Rung,
    /// The rung's advertised guarantee, recorded per request.
    pub guarantee: Guarantee,
    /// Whether the answer came from the solution cache.
    pub cache_hit: bool,
    /// Whether the answer piggybacked on a concurrent identical request's
    /// solve (singleflight follower) instead of running its own.
    pub coalesced: bool,
    /// End-to-end latency (admission to completion).
    pub latency: Duration,
    /// True when the answer arrived after the request's deadline.
    pub deadline_missed: bool,
}

/// Why a request produced no solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The admission queue was full — retry later (backpressure).
    QueueFull,
    /// The deadline had already lapsed at admission.
    DeadlineExpired,
    /// The instance is infeasible at every ladder rung.
    Infeasible,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Rejection::QueueFull => "admission queue full",
            Rejection::DeadlineExpired => "deadline expired before admission",
            Rejection::Infeasible => "instance infeasible at every rung",
            Rejection::ShuttingDown => "service shutting down",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for Rejection {}

#[cfg(test)]
type SolveGate = Box<dyn Fn(&Shared) + Send + Sync>;

struct Shared {
    cfg: ServiceConfig,
    cache: ShardedCache,
    flights: Singleflight<Result<Degraded, LadderError>>,
    metrics: Mutex<MetricsSnapshot>,
    in_flight: AtomicUsize,
    /// Test hook: runs inside every solver job before the solve, letting
    /// tests hold a leader's flight open deterministically.
    #[cfg(test)]
    solve_gate: Mutex<Option<SolveGate>>,
}

struct Slot {
    result: Mutex<Option<Result<Degraded, LadderError>>>,
    done: Condvar,
}

/// The in-process provisioning service. Cloneable handles share one worker
/// pool, cache, and metrics registry; dropping the last handle drains the
/// queue and joins the workers.
#[derive(Clone)]
pub struct Service {
    shared: Arc<Shared>,
    executor: Arc<Executor>,
}

impl Service {
    /// Starts a service with `cfg`.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        let executor = Arc::new(Executor::new(cfg.workers));
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            flights: Singleflight::new(cfg.cache_shards),
            metrics: Mutex::new(MetricsSnapshot::default()),
            in_flight: AtomicUsize::new(0),
            #[cfg(test)]
            solve_gate: Mutex::new(None),
            cfg,
        });
        Service { shared, executor }
    }

    /// Submits a request and blocks until its answer (or rejection) is
    /// available. Safe to call from many threads concurrently.
    pub fn provision(&self, request: Request) -> Result<Response, Rejection> {
        let admitted_at = Instant::now();
        let deadline = request.deadline.unwrap_or(self.shared.cfg.default_deadline);

        // Admission control. `in_flight` counts admitted requests still in
        // `provision`; the queue is full when it exceeds capacity plus the
        // workers that could be draining it. This runs before the cache
        // and the coalescing layer, so backpressure does not depend on how
        // duplicate-heavy the traffic is.
        let limit = self.shared.cfg.queue_capacity + self.shared.cfg.workers;
        if self.shared.in_flight.fetch_add(1, Ordering::AcqRel) >= limit {
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            let mut m = self.shared.metrics.lock().expect("metrics poisoned");
            m.rejected_queue_full += 1;
            return Err(Rejection::QueueFull);
        }
        {
            let mut m = self.shared.metrics.lock().expect("metrics poisoned");
            m.admitted += 1;
        }
        let out = self.drive(&request.instance, admitted_at, deadline);
        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        out
    }

    /// The post-admission request path, run entirely on the calling
    /// thread: cache probe, singleflight join, and (for leaders) the solve
    /// dispatched to the pool.
    fn drive(
        &self,
        instance: &Instance,
        admitted_at: Instant,
        deadline: Duration,
    ) -> Result<Response, Rejection> {
        let shared = &self.shared;
        let key = canonical_key(instance);
        loop {
            // Cache first — a hit costs two hashes and one shard lock.
            if let Some(hit) = shared.cache.get(key) {
                let latency = admitted_at.elapsed();
                let deadline_missed = latency > deadline;
                finish_metrics(shared, latency, deadline_missed, None, false);
                return Ok(Response {
                    solution: hit.solution,
                    rung: hit.rung,
                    guarantee: hit.guarantee,
                    cache_hit: true,
                    coalesced: false,
                    latency,
                    deadline_missed,
                });
            }

            let remaining = deadline.saturating_sub(admitted_at.elapsed());
            if shared.cfg.reject_expired && remaining.is_zero() && !deadline.is_zero() {
                let mut m = shared.metrics.lock().expect("metrics poisoned");
                m.rejected_expired += 1;
                return Err(Rejection::DeadlineExpired);
            }

            if !shared.cfg.coalesce {
                let solved = self.solve_on_pool(instance, remaining);
                if let Ok(d) = &solved {
                    shared.cache.put(key, d.clone());
                }
                return finish_fresh(shared, solved, admitted_at, deadline, false);
            }
            match shared.flights.join(key) {
                Join::Leader(leader) => {
                    let solved = self.solve_on_pool(instance, remaining);
                    // Populate the cache before retiring the flight, so a
                    // request arriving after the flight is gone hits the
                    // cache instead of solving again.
                    if let Ok(d) = &solved {
                        shared.cache.put(key, d.clone());
                    }
                    leader.complete(solved.clone());
                    return finish_fresh(shared, solved, admitted_at, deadline, false);
                }
                Join::Follower(Some(solved)) => {
                    return finish_fresh(shared, solved, admitted_at, deadline, true);
                }
                // The leader aborted (dropped without publishing); start
                // over rather than hang.
                Join::Follower(None) => {}
            }
        }
    }

    /// Runs one ladder solve on the resident pool, blocking the calling
    /// thread for the result. When the caller *is* a pool worker (a nested
    /// provision), the solve runs inline instead — parking a worker behind
    /// a job that needs a worker would deadlock the pool.
    fn solve_on_pool(
        &self,
        instance: &Instance,
        remaining: Duration,
    ) -> Result<Degraded, LadderError> {
        if Executor::on_worker_thread() {
            return solve_job(&self.shared, instance, remaining);
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        {
            let shared = Arc::clone(&self.shared);
            let slot = Arc::clone(&slot);
            let instance = instance.clone();
            self.executor.submit(Box::new(move || {
                let out = solve_job(&shared, &instance, remaining);
                *slot.result.lock().expect("slot poisoned") = Some(out);
                slot.done.notify_all();
            }));
        }
        let mut guard = slot.result.lock().expect("slot poisoned");
        while guard.is_none() {
            guard = slot.done.wait(guard).expect("slot poisoned");
        }
        guard.take().expect("result present")
    }

    /// A point-in-time copy of the service counters (cache counters folded
    /// in, per shard and in aggregate).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self
            .shared
            .metrics
            .lock()
            .expect("metrics poisoned")
            .clone();
        let c = self.shared.cache.stats();
        m.cache_hits = c.hits;
        m.cache_misses = c.misses;
        m.cache_evictions = c.evictions;
        m.per_shard = self.shared.cache.shard_stats();
        m
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Requests currently queued or running.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Installs a hook that runs inside every solver job before solving.
    #[cfg(test)]
    fn set_solve_gate(&self, gate: SolveGate) {
        *self.shared.solve_gate.lock().expect("gate poisoned") = Some(gate);
    }
}

fn solve_job(
    shared: &Shared,
    instance: &Instance,
    remaining: Duration,
) -> Result<Degraded, LadderError> {
    #[cfg(test)]
    if let Some(gate) = shared.solve_gate.lock().expect("gate poisoned").as_ref() {
        gate(shared);
    }
    let out = solve_degraded(instance, &shared.cfg.solver, remaining, &shared.cfg.ladder);
    #[cfg(debug_assertions)]
    if let Ok(degraded) = &out {
        audit_response(instance, degraded);
    }
    out
}

/// Converts a (possibly shared) solve outcome into the caller's response,
/// recording the caller's own latency, deadline, and coalescing outcome.
fn finish_fresh(
    shared: &Shared,
    solved: Result<Degraded, LadderError>,
    admitted_at: Instant,
    deadline: Duration,
    coalesced: bool,
) -> Result<Response, Rejection> {
    match solved {
        Ok(degraded) => {
            let latency = admitted_at.elapsed();
            let deadline_missed = latency > deadline;
            // Only the leader's solve counts as a rung solve; followers
            // report themselves via the coalesced counter.
            let fresh_rung = (!coalesced).then_some(degraded.rung);
            finish_metrics(shared, latency, deadline_missed, fresh_rung, coalesced);
            Ok(Response {
                solution: degraded.solution,
                rung: degraded.rung,
                guarantee: degraded.guarantee,
                cache_hit: false,
                coalesced,
                latency,
                deadline_missed,
            })
        }
        Err(LadderError::Infeasible) => {
            let mut m = shared.metrics.lock().expect("metrics poisoned");
            m.infeasible += 1;
            if coalesced {
                m.coalesced += 1;
            }
            Err(Rejection::Infeasible)
        }
    }
}

fn finish_metrics(
    shared: &Shared,
    latency: Duration,
    deadline_missed: bool,
    fresh_rung: Option<Rung>,
    coalesced: bool,
) {
    let mut m = shared.metrics.lock().expect("metrics poisoned");
    m.completed += 1;
    if deadline_missed {
        m.deadline_missed += 1;
    }
    if coalesced {
        m.coalesced += 1;
    }
    if let Some(rung) = fresh_rung {
        m.count_rung(rung);
    }
    m.latency
        .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
}

/// Debug-build audit: every fresh answer is re-verified from first
/// principles against the rung's advertised guarantee (delay within
/// `delay_factor · D`; cost within `cost_factor ×` the LP lower bound when
/// the rung certifies one).
#[cfg(debug_assertions)]
fn audit_response(instance: &Instance, degraded: &crate::degrade::Degraded) {
    let mut relaxed = instance.clone();
    relaxed.delay_bound = instance
        .delay_bound
        .saturating_mul(i64::from(degraded.guarantee.delay_factor));
    let reference = degraded
        .guarantee
        .cost_factor
        .zip(degraded.solution.lower_bound)
        .map(|(factor, lb)| (lb, factor));
    let violations = krsp::verify::audit(&relaxed, &degraded.solution, reference);
    assert!(
        violations.is_empty(),
        "service produced an invalid {} response: {violations:?}",
        degraded.rung
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn tradeoff(d: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d).unwrap()
    }

    fn req(d: i64) -> Request {
        Request {
            instance: tradeoff(d),
            deadline: None,
        }
    }

    #[test]
    fn provisions_and_caches() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let first = svc.provision(req(14)).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.coalesced);
        assert_eq!(first.rung, Rung::Full);
        assert!(first.solution.delay <= 14);

        let second = svc.provision(req(14)).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.solution.cost, first.solution.cost);

        let m = svc.metrics();
        assert_eq!(m.admitted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.per_rung, [1, 0, 0, 0]);
        assert_eq!(m.per_shard.len(), svc.config().cache_shards);
    }

    #[test]
    fn zero_deadline_serves_degraded() {
        let svc = Service::new(ServiceConfig::default());
        let out = svc
            .provision(Request {
                instance: tradeoff(14),
                deadline: Some(Duration::ZERO),
            })
            .unwrap();
        assert_eq!(out.rung, Rung::MinDelay);
        assert_eq!(out.guarantee.cost_factor, None);
        assert!(out.solution.delay <= 14);
    }

    #[test]
    fn strict_mode_rejects_lapsed_deadlines() {
        let svc = Service::new(ServiceConfig {
            reject_expired: true,
            ..ServiceConfig::default()
        });
        let err = svc
            .provision(Request {
                instance: tradeoff(14),
                deadline: Some(Duration::from_nanos(1)),
            })
            .unwrap_err();
        assert_eq!(err, Rejection::DeadlineExpired);
        assert_eq!(svc.metrics().rejected_expired, 1);
    }

    #[test]
    fn infeasible_is_reported() {
        let svc = Service::new(ServiceConfig::default());
        let err = svc.provision(req(3)).unwrap_err();
        assert_eq!(err, Rejection::Infeasible);
        assert_eq!(svc.metrics().infeasible, 1);
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = svc.clone();
                s.spawn(move || {
                    for d in [14, 16, 22, 14, 16, 22] {
                        let out = svc.provision(req(d)).unwrap();
                        assert!(out.solution.delay <= d);
                    }
                });
            }
        });
        let m = svc.metrics();
        assert_eq!(m.completed, 24);
        // 3 distinct instances: every request is a cache hit, a coalesced
        // follower, or one of the fresh solves. Coalescing collapses
        // simultaneous misses, so fresh solves stay near 3 (a solve can
        // repeat only in the narrow window between a cache probe and the
        // leader's cache fill).
        let fresh: u64 = m.per_rung.iter().sum();
        assert_eq!(m.cache_hits + m.coalesced + fresh, 24);
        assert!(fresh >= 3, "fresh = {fresh}");
        assert!(m.cache_hits + m.coalesced >= 24 - 2 * 3, "m = {m:?}");
        assert_eq!(m.cache_evictions, 0);
    }

    #[test]
    fn coalescing_runs_exactly_one_solve_for_concurrent_duplicates() {
        const K: usize = 8;
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        // Hold the leader's flight open until every other request has
        // joined it as a follower — making "exactly one solver run for K
        // concurrent duplicates" deterministic rather than racy.
        let key = canonical_key(&tradeoff(14));
        svc.set_solve_gate(Box::new(move |shared| {
            while shared.flights.waiters(key) < K - 1 {
                std::thread::yield_now();
            }
        }));
        std::thread::scope(|s| {
            for _ in 0..K {
                let svc = svc.clone();
                s.spawn(move || {
                    let out = svc.provision(req(14)).unwrap();
                    assert!(!out.cache_hit, "cache was empty for the whole flight");
                    assert!(out.solution.delay <= 14);
                });
            }
        });
        let m = svc.metrics();
        assert_eq!(m.completed, K as u64);
        assert_eq!(
            m.per_rung.iter().sum::<u64>(),
            1,
            "exactly one solver run, m = {m:?}"
        );
        assert_eq!(m.coalesced, (K - 1) as u64);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn disabling_coalescing_solves_independently() {
        let svc = Service::new(ServiceConfig {
            coalesce: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            let out = svc.provision(req(14)).unwrap();
            assert!(!out.cache_hit && !out.coalesced);
        }
        let m = svc.metrics();
        assert_eq!(m.per_rung.iter().sum::<u64>(), 3);
        assert_eq!(m.coalesced, 0);
    }

    #[test]
    fn queue_full_backpressure() {
        // One worker, tiny queue, and requests that take real time: the
        // admission counter must reject the overflow. Admission runs
        // before coalescing, so identical instances still backpressure.
        let svc = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let mut rejected = 0u64;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..12 {
                let svc = svc.clone();
                handles.push(s.spawn(move || svc.provision(req(14)).is_err()));
            }
            for h in handles {
                if h.join().unwrap() {
                    rejected += 1;
                }
            }
        });
        let m = svc.metrics();
        assert_eq!(rejected, m.rejected_queue_full);
        // With 12 simultaneous clients, capacity 1 and one worker, at
        // least some requests must have seen backpressure.
        assert!(m.rejected_queue_full > 0, "no backpressure observed");
        assert_eq!(m.completed + m.rejected_queue_full, 12);
    }
}
