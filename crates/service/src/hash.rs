//! Canonical instance hashing for the solution cache.
//!
//! Two requests should share a cache slot exactly when they describe the
//! same kRSP problem. Structurally that is the multiset of weighted edges
//! plus `(n, s, t, k, D)` — it must **not** depend on the order edges were
//! inserted into the [`DiGraph`], because generators, deserializers, and
//! callers rebuilding a graph all enumerate edges differently. The key is
//! therefore computed over the *sorted* edge list.
//!
//! The digest is a 128-bit FNV-1a pair (two independent offset bases), so
//! accidental collisions between distinct instances are out of reach for
//! any realistic cache population; the cache treats key equality as
//! instance equality and stores no instance copy.

use krsp::Instance;

/// A canonical 128-bit digest of a kRSP instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    const PRIME: u64 = 0x100000001b3;

    fn new() -> Self {
        // Standard FNV-1a offset basis, and the same basis re-hashed once,
        // giving two independent streams over identical input.
        Fnv2 {
            a: 0xcbf29ce484222325,
            b: 0x84222325cbf29ce4,
        }
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(Self::PRIME);
            self.b = (self.b ^ u64::from(byte ^ 0x5a)).wrapping_mul(Self::PRIME);
        }
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Canonical cache key: sorted `(src, dst, cost, delay)` edge tuples plus
/// `(n, s, t, k, D)`. Stable under edge reordering and graph rebuilds;
/// distinct in every parameter.
#[must_use]
pub fn canonical_key(inst: &Instance) -> CacheKey {
    let mut edges: Vec<(u32, u32, i64, i64)> = inst
        .graph
        .edges()
        .iter()
        .map(|e| (e.src.0, e.dst.0, e.cost, e.delay))
        .collect();
    edges.sort_unstable();

    let mut h = Fnv2::new();
    h.write_u64(inst.n() as u64);
    h.write_u64(edges.len() as u64);
    for (src, dst, cost, delay) in edges {
        h.write_u64(u64::from(src));
        h.write_u64(u64::from(dst));
        h.write_i64(cost);
        h.write_i64(delay);
    }
    h.write_u64(u64::from(inst.s.0));
    h.write_u64(u64::from(inst.t.0));
    h.write_u64(inst.k as u64);
    h.write_i64(inst.delay_bound);
    CacheKey(h.finish())
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn edges() -> Vec<(u32, u32, i64, i64)> {
        vec![(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]
    }

    fn inst_from(order: &[(u32, u32, i64, i64)]) -> Instance {
        let g = DiGraph::from_edges(4, order);
        Instance::new(g, NodeId(0), NodeId(3), 2, 20).unwrap()
    }

    #[test]
    fn stable_under_edge_reordering() {
        let base = inst_from(&edges());
        let mut reordered = edges();
        reordered.reverse();
        let other = inst_from(&reordered);
        assert_eq!(canonical_key(&base), canonical_key(&other));
    }

    #[test]
    fn distinct_parameters_never_collide() {
        let base = inst_from(&edges());
        let k0 = canonical_key(&base);

        let mut s_changed = base.clone();
        s_changed.s = NodeId(1);
        let mut t_changed = base.clone();
        t_changed.t = NodeId(2);
        let mut k_changed = base.clone();
        k_changed.k = 1;
        let mut d_changed = base.clone();
        d_changed.delay_bound = 21;

        let keys = [
            canonical_key(&s_changed),
            canonical_key(&t_changed),
            canonical_key(&k_changed),
            canonical_key(&d_changed),
        ];
        for k in keys {
            assert_ne!(k, k0);
        }
        // All four mutations are pairwise distinct too.
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn weight_changes_change_the_key() {
        let base = inst_from(&edges());
        let mut bumped = edges();
        bumped[2].2 += 1; // cost of one edge
        assert_ne!(canonical_key(&base), canonical_key(&inst_from(&bumped)));
        let mut slower = edges();
        slower[1].3 += 1; // delay of one edge
        assert_ne!(canonical_key(&base), canonical_key(&inst_from(&slower)));
    }
}
