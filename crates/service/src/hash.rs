//! Canonical instance hashing for the solution cache.
//!
//! Two requests should share a cache slot exactly when they describe the
//! same kRSP problem. Structurally that is the multiset of weighted edges
//! plus `(n, s, t, k, D)` — it must **not** depend on the order edges were
//! inserted into the [`DiGraph`], because generators, deserializers, and
//! callers rebuilding a graph all enumerate edges differently. The key is
//! therefore computed over the *sorted* edge list.
//!
//! The digest is a 128-bit FNV-1a pair (two independent offset bases), so
//! accidental collisions between distinct instances are out of reach for
//! any realistic cache population; the cache treats key equality as
//! instance equality and stores no instance copy.

use krsp::Instance;
use krsp_graph::DiGraph;

/// A canonical 128-bit digest of a kRSP instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    const PRIME: u64 = 0x100000001b3;

    fn new() -> Self {
        // Standard FNV-1a offset basis, and the same basis re-hashed once,
        // giving two independent streams over identical input.
        Fnv2 {
            a: 0xcbf29ce484222325,
            b: 0x84222325cbf29ce4,
        }
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(Self::PRIME);
            self.b = (self.b ^ u64::from(byte ^ 0x5a)).wrapping_mul(Self::PRIME);
        }
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Canonical cache key: sorted `(src, dst, cost, delay)` edge tuples plus
/// `(n, s, t, k, D)`. Stable under edge reordering and graph rebuilds;
/// distinct in every parameter.
#[must_use]
pub fn canonical_key(inst: &Instance) -> CacheKey {
    let mut edges: Vec<(u32, u32, i64, i64)> = inst
        .graph
        .edges()
        .iter()
        .map(|e| (e.src.0, e.dst.0, e.cost, e.delay))
        .collect();
    edges.sort_unstable();

    let mut h = Fnv2::new();
    h.write_u64(inst.n() as u64);
    h.write_u64(edges.len() as u64);
    for (src, dst, cost, delay) in edges {
        h.write_u64(u64::from(src));
        h.write_u64(u64::from(dst));
        h.write_i64(cost);
        h.write_i64(delay);
    }
    h.write_u64(u64::from(inst.s.0));
    h.write_u64(u64::from(inst.t.0));
    h.write_u64(inst.k as u64);
    h.write_i64(inst.delay_bound);
    CacheKey(h.finish())
}

/// Weight-free digest of a topology's *structure*: sorted `(src, dst)`
/// endpoint pairs plus node/edge counts. Stable across weight-only epochs
/// (which never touch the edge list), so it identifies a topology lineage.
#[must_use]
pub fn structural_key(graph: &DiGraph) -> u128 {
    let mut ends: Vec<(u32, u32)> = graph.edges().iter().map(|e| (e.src.0, e.dst.0)).collect();
    ends.sort_unstable();
    let mut h = Fnv2::new();
    h.write_u64(graph.node_count() as u64);
    h.write_u64(ends.len() as u64);
    for (src, dst) in ends {
        h.write_u64(u64::from(src));
        h.write_u64(u64::from(dst));
    }
    h.finish()
}

/// Digest of the full weighted graph (no query parameters): identifies the
/// exact weight assignment of one topology epoch. Same canonicalization as
/// [`canonical_key`] (sorted weighted edge tuples), so rebuilt/reordered
/// graphs with identical weights digest identically.
#[must_use]
pub fn weights_key(graph: &DiGraph) -> u128 {
    let mut edges: Vec<(u32, u32, i64, i64)> = graph
        .edges()
        .iter()
        .map(|e| (e.src.0, e.dst.0, e.cost, e.delay))
        .collect();
    edges.sort_unstable();
    let mut h = Fnv2::new();
    h.write_u64(graph.node_count() as u64);
    h.write_u64(edges.len() as u64);
    for (src, dst, cost, delay) in edges {
        h.write_u64(u64::from(src));
        h.write_u64(u64::from(dst));
        h.write_i64(cost);
        h.write_i64(delay);
    }
    h.finish()
}

/// Cache key for a query against an epoch-registered topology: the
/// topology's [`structural_key`] plus `(s, t, k, D)` — deliberately
/// **weight-free**, so the key survives weight-only epoch bumps and the
/// epoch number joins through [`scope_key`] instead. The leading marker
/// byte keeps this key family disjoint from [`canonical_key`]'s input
/// domain.
#[must_use]
pub fn query_key(topo: u128, s: u32, t: u32, k: usize, delay_bound: i64) -> CacheKey {
    let mut h = Fnv2::new();
    h.write_u64(u64::from(b'q'));
    h.write_u64((topo >> 64) as u64);
    h.write_u64(topo as u64);
    h.write_u64(u64::from(s));
    h.write_u64(u64::from(t));
    h.write_u64(k as u64);
    h.write_i64(delay_bound);
    CacheKey(h.finish())
}

/// Folds a request's scope — the per-rung kernel assignment tag and the
/// topology epoch — into its base instance digest.
///
/// The tag is avalanched through a splitmix-style multiply–xorshift mix
/// before the XOR. A bare `tag × odd-constant` fold (the PR 8 scheme) is
/// linear: two scopes whose tags XOR to the same value shift every key by
/// the same amount, so once epoch counters join the kernel bits, nearby
/// `(kernel, epoch)` pairs could cancel against each other across requests.
/// The mix breaks that linearity. A zero tag (all-classic ladder, epoch 0)
/// still folds to zero, so historical keys are unchanged.
#[must_use]
pub fn scope_key(base: CacheKey, kernel_tag: u32, epoch: u64) -> CacheKey {
    let tag = (u128::from(kernel_tag) << 64) | u128::from(epoch);
    CacheKey(base.0 ^ mix_tag(tag))
}

/// splitmix-style finalizer over the 128-bit scope tag; `mix_tag(0) = 0`.
fn mix_tag(tag: u128) -> u128 {
    if tag == 0 {
        return 0;
    }
    let mut x = tag;
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
    x ^= x >> 64;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9_94d0_49bb_1331_11eb);
    x ^= x >> 61;
    x
}

#[cfg(test)]
// Tests may unwrap: a panic is exactly the failure report we want there.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn edges() -> Vec<(u32, u32, i64, i64)> {
        vec![(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]
    }

    fn inst_from(order: &[(u32, u32, i64, i64)]) -> Instance {
        let g = DiGraph::from_edges(4, order);
        Instance::new(g, NodeId(0), NodeId(3), 2, 20).unwrap()
    }

    #[test]
    fn stable_under_edge_reordering() {
        let base = inst_from(&edges());
        let mut reordered = edges();
        reordered.reverse();
        let other = inst_from(&reordered);
        assert_eq!(canonical_key(&base), canonical_key(&other));
    }

    #[test]
    fn distinct_parameters_never_collide() {
        let base = inst_from(&edges());
        let k0 = canonical_key(&base);

        let mut s_changed = base.clone();
        s_changed.s = NodeId(1);
        let mut t_changed = base.clone();
        t_changed.t = NodeId(2);
        let mut k_changed = base.clone();
        k_changed.k = 1;
        let mut d_changed = base.clone();
        d_changed.delay_bound = 21;

        let keys = [
            canonical_key(&s_changed),
            canonical_key(&t_changed),
            canonical_key(&k_changed),
            canonical_key(&d_changed),
        ];
        for k in keys {
            assert_ne!(k, k0);
        }
        // All four mutations are pairwise distinct too.
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn weight_changes_change_the_key() {
        let base = inst_from(&edges());
        let mut bumped = edges();
        bumped[2].2 += 1; // cost of one edge
        assert_ne!(canonical_key(&base), canonical_key(&inst_from(&bumped)));
        let mut slower = edges();
        slower[1].3 += 1; // delay of one edge
        assert_ne!(canonical_key(&base), canonical_key(&inst_from(&slower)));
    }

    #[test]
    fn structural_key_ignores_weights_weights_key_does_not() {
        let base = inst_from(&edges());
        let mut bumped = edges();
        bumped[0].2 += 7;
        bumped[3].3 += 2;
        let changed = inst_from(&bumped);
        assert_eq!(structural_key(&base.graph), structural_key(&changed.graph));
        assert_ne!(weights_key(&base.graph), weights_key(&changed.graph));
        // A structural change moves both.
        let mut extra = edges();
        extra.push((1, 2, 1, 1));
        let grown = inst_from(&extra);
        assert_ne!(structural_key(&base.graph), structural_key(&grown.graph));
        assert_ne!(weights_key(&base.graph), weights_key(&grown.graph));
    }

    #[test]
    fn query_key_distinct_per_parameter() {
        let topo = structural_key(&inst_from(&edges()).graph);
        let base = query_key(topo, 0, 3, 2, 20);
        let variants = [
            query_key(topo, 1, 3, 2, 20),
            query_key(topo, 0, 2, 2, 20),
            query_key(topo, 0, 3, 1, 20),
            query_key(topo, 0, 3, 2, 21),
            query_key(topo ^ 1, 0, 3, 2, 20),
        ];
        for v in variants {
            assert_ne!(v, base);
        }
    }

    // Satellite regression for the PR 8 XOR fold: distinct (kernel tag,
    // epoch) scopes must never collide on the same instance. The old
    // `tag × odd` fold was linear in the tag, so scope pairs with equal
    // tag-XOR shifted keys identically; the splitmix-style mix avalanches
    // every tag bit instead. 16 kernel ladders × 64 epochs = 1024 scopes,
    // all pairwise distinct here.
    #[test]
    fn distinct_kernel_epoch_scopes_never_collide() {
        let base = canonical_key(&inst_from(&edges()));
        let mut seen = std::collections::HashMap::new();
        for ladder in 0u32..16 {
            // Spread the 4 two-valued rung assignments over the 4 tag bytes
            // the service packs (one kernel byte per rung).
            let kernel_tag = (ladder & 1)
                | ((ladder >> 1) & 1) << 8
                | ((ladder >> 2) & 1) << 16
                | ((ladder >> 3) & 1) << 24;
            for epoch in 0u64..64 {
                let key = scope_key(base, kernel_tag, epoch);
                if let Some(prev) = seen.insert(key, (kernel_tag, epoch)) {
                    panic!("scope collision: {prev:?} vs ({kernel_tag}, {epoch})");
                }
            }
        }
        // Historical invariant: the all-classic / epoch-0 scope is the
        // identity fold.
        assert_eq!(scope_key(base, 0, 0), base);
    }
}
