//! The event-driven NDJSON frontend: one reactor thread multiplexing
//! every connection over the vendored `krsp-reactor` epoll/poll loop.
//!
//! ## Shape
//!
//! The reactor thread owns the listener, every connection socket, and all
//! per-connection state (read framing, write buffers, ordering queues).
//! It never solves: `Solve` requests go through
//! [`Service::provision_async`], run on the service's worker pool, and
//! complete by pushing a rendered response line onto a shared completion
//! queue and waking the reactor through its wake pipe. Total threads are
//! therefore O(workers) + 1 regardless of connection count.
//!
//! ## Ordering model
//!
//! Requests carrying an `"id"` member are dispatched immediately and
//! answered in completion order (out-of-order pipelining). Requests
//! without an id keep the historical blocking semantics: each one is
//! evaluated only after the previous id-less response on the same
//! connection was produced, so legacy clients observe the same ordering
//! *and* the same side-effect timing (a pipelined `"Metrics"` still
//! counts the solve before it) as the thread-per-connection server.
//!
//! ## Fairness and protection
//!
//! * Reads are level-triggered and budgeted per readiness event, so one
//!   firehose connection cannot starve the rest of the loop.
//! * A connection stalled mid-line past [`ServeOptions::read_timeout`] is
//!   dropped by the housekeeping sweep (the slow-loris defense); idle
//!   connections *between* lines never time out.
//! * A client that stops draining responses trips
//!   [`ServeOptions::write_timeout`] and is dropped.
//! * Accepts beyond [`ServeOptions::max_conns`] /
//!   [`ServeOptions::per_client_conns`] are answered with a `"shed"`
//!   error line and closed; `Solve` floods beyond the per-address token
//!   bucket get `"rate_limited"` errors.
//!
//! The housekeeping sweep runs on a reactor timer every
//! [`ServeOptions::poll`]; it is also where the shutdown flag (set from a
//! signal handler that cannot wake the reactor itself) is noticed, so the
//! daemon parks in `epoll_wait` when idle instead of spin-polling.

use crate::metrics::FrontendStats;
use crate::proto::{
    self, health_reply, solve_response, DecodedRequest, ErrorKind, ServeOptions, SolveBatchRequest,
    SolveRequest, WireRequest, WireResponse, MAX_LINE_BYTES,
};
use crate::service::{Request, Service};
use crate::sync_util::{lock_recover, saturating_deadline};
use krsp_reactor::{Event, Interest, Mode, Reactor, Token, Waker};
use serde::Content;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
const SWEEP: Token = Token(1);
const FIRST_CONN_TOKEN: usize = 2;

/// Read budget per readiness event per connection. Level-triggered
/// registration re-reports the descriptor on the next poll, so capping a
/// single drain bounds how long one chatty connection can hog the loop.
const READ_BUDGET: usize = 256 * 1024;
const READ_CHUNK: usize = 64 * 1024;

/// Compact the write buffer once this many bytes are already flushed.
const OUT_COMPACT: usize = 64 * 1024;

/// The pieces `serve_event_driven` hands back when no poll facility
/// exists, so the caller can fall back to the threaded server.
pub(crate) type FallbackParts = (TcpListener, Arc<AtomicBool>, ServeOptions);

/// Runs the event-driven server. On an `Unsupported` reactor (no poll
/// facility on this platform) the listener/flag/options are returned so
/// the caller can fall back; any later error is terminal.
pub(crate) fn serve_event_driven(
    service: &Service,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    opts: ServeOptions,
) -> Result<(), (std::io::Error, Option<FallbackParts>)> {
    let reactor = match Reactor::new() {
        Ok(r) => r,
        Err(e) => return Err((e, Some((listener, shutdown, opts)))),
    };
    Frontend::new(service.clone(), reactor, listener, shutdown, opts)
        .and_then(Frontend::run)
        .map_err(|e| (e, None))
}

/// One response produced off-thread, addressed by connection token.
struct Completion {
    token: usize,
    line: String,
    /// Whether this response belongs to the connection's id-less ordered
    /// stream (its completion unblocks the next queued request).
    ordered: bool,
}

/// Work parked behind the connection's in-order (id-less) stream.
enum Queued {
    /// A response decided at receipt time (parse error, oversize line,
    /// rate limit), waiting its turn to be written. Boxed: `WireResponse`
    /// dwarfs the request variant and queues hold many of these.
    Respond(Box<WireResponse>),
    /// A request evaluated when it reaches the front of the queue.
    Request(WireRequest),
}

/// A complete line produced by the incremental framer.
enum Framed {
    Line(Vec<u8>),
    /// The line blew past [`MAX_LINE_BYTES`]. The framer kept the line's
    /// first [`ID_PREFIX`] bytes, so a pipelined request's `"id"` member
    /// (which the canonical encoders place first) survives the discard and
    /// the oversize error can still be matched by the client.
    TooLong(Option<Content>),
}

/// How many bytes of an oversize line the framer retains for id recovery.
/// The canonical id splice is `{"id":<u64>,...`, so 256 bytes is generous;
/// anything fancier than a leading integer id falls back to a bare error.
const ID_PREFIX: usize = 256;

struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    /// Bytes of the current (incomplete) request line.
    line: Vec<u8>,
    /// The current line blew past [`MAX_LINE_BYTES`]; bytes are dropped
    /// until its newline, then one oversize error is emitted. While set,
    /// `line` holds the frozen [`ID_PREFIX`]-byte head of the oversize
    /// line (for id recovery), not live framing state.
    discarding: bool,
    /// When the current partial line started arriving (the slow-loris
    /// clock); `None` between lines.
    partial_since: Option<Instant>,
    /// Pending output; `[out_pos..]` is unwritten.
    out: Vec<u8>,
    out_pos: usize,
    /// When the socket first refused bytes; cleared on full flush.
    write_stall_since: Option<Instant>,
    /// Registered for writable interest (pending output).
    wants_write: bool,
    /// Dispatched requests (ordered + id-carrying) not yet answered.
    in_flight: usize,
    /// Id-less work awaiting its turn (see the module ordering model).
    queue: VecDeque<Queued>,
    /// An id-less request is currently dispatched; the queue is paused.
    ordered_busy: bool,
    /// Peer EOF seen: close once everything queued is answered+flushed.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: IpAddr) -> Conn {
        Conn {
            stream,
            peer,
            line: Vec::new(),
            discarding: false,
            partial_since: None,
            out: Vec::new(),
            out_pos: 0,
            write_stall_since: None,
            wants_write: false,
            in_flight: 0,
            queue: VecDeque::new(),
            ordered_busy: false,
            read_closed: false,
        }
    }

    /// Nothing in flight, queued, or buffered.
    fn idle(&self) -> bool {
        self.in_flight == 0 && self.queue.is_empty() && self.out_pos == self.out.len()
    }
}

/// Per-address token bucket for `Solve` admission.
struct Bucket {
    tokens: f64,
    last: Instant,
}

struct Frontend {
    service: Service,
    opts: ServeOptions,
    tick: Duration,
    reactor: Reactor,
    waker: Waker,
    /// `None` once draining (the listener is closed to stop accepts).
    listener: Option<TcpListener>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<FrontendStats>,
    conns: HashMap<usize, Conn>,
    per_client: HashMap<IpAddr, usize>,
    buckets: HashMap<IpAddr, Bucket>,
    completions: Arc<Mutex<Vec<Completion>>>,
    next_token: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl Frontend {
    fn new(
        service: Service,
        mut reactor: Reactor,
        listener: TcpListener,
        shutdown: Arc<AtomicBool>,
        opts: ServeOptions,
    ) -> std::io::Result<Frontend> {
        listener.set_nonblocking(true)?;
        reactor.register(
            listener.as_raw_fd(),
            LISTENER,
            Interest::READABLE,
            Mode::Level,
        )?;
        let stats = Arc::new(FrontendStats::default());
        service.attach_frontend_stats(Arc::clone(&stats));
        let waker = reactor.waker();
        Ok(Frontend {
            tick: opts.poll.max(Duration::from_millis(1)),
            service,
            opts,
            waker,
            listener: Some(listener),
            shutdown,
            stats,
            conns: HashMap::new(),
            per_client: HashMap::new(),
            buckets: HashMap::new(),
            completions: Arc::new(Mutex::new(Vec::new())),
            next_token: FIRST_CONN_TOKEN,
            reactor,
            draining: false,
            drain_deadline: None,
        })
    }

    fn run(mut self) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        self.reactor
            .set_timer(saturating_deadline(Instant::now(), self.tick), SWEEP);
        loop {
            self.reactor.poll(&mut events, None)?;
            // Off-thread completions first: their responses unblock queued
            // work and free connections before new events pile on more.
            self.apply_completions();
            for ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready()?,
                    SWEEP => self.sweep(),
                    Token(token) => self.conn_event(token, *ev),
                }
            }
            // Completions that landed while handling events are picked up
            // next iteration — the waker guarantees the poll returns
            // immediately rather than parking.
            if self.draining && self.conns.is_empty() {
                break;
            }
            if let Some(deadline) = self.drain_deadline {
                if Instant::now() >= deadline {
                    let tokens: Vec<usize> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.drop_conn(token);
                    }
                    break;
                }
            }
        }
        let grace_left = self.drain_deadline.map_or(Duration::ZERO, |d| {
            d.saturating_duration_since(Instant::now())
        });
        self.service.drain(grace_left);
        Ok(())
    }

    // ---- accept path ---------------------------------------------------

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            let accepted = match self.listener.as_ref() {
                None => return Ok(()), // draining: stray readiness
                Some(listener) => listener.accept(),
            };
            match accepted {
                Ok((stream, peer)) => self.admit_conn(stream, peer),
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn admit_conn(&mut self, stream: TcpStream, peer: SocketAddr) {
        let ip = peer.ip();
        if self.conns.len() >= self.opts.max_conns {
            self.stats.shed_total_cap();
            proto::shed_at_accept(stream, "server connection limit reached");
            return;
        }
        if self
            .per_client
            .get(&ip)
            .is_some_and(|&n| n >= self.opts.per_client_conns)
        {
            self.stats.shed_per_client();
            proto::shed_at_accept(stream, "per-client connection limit reached");
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .reactor
            .register(
                stream.as_raw_fd(),
                Token(token),
                Interest::READABLE,
                Mode::Level,
            )
            .is_err()
        {
            return;
        }
        self.conns.insert(token, Conn::new(stream, ip));
        *self.per_client.entry(ip).or_insert(0) += 1;
        self.stats.conn_opened();
    }

    // ---- connection events ----------------------------------------------

    fn conn_event(&mut self, token: usize, ev: Event) {
        if ev.writable {
            self.flush(token);
        }
        if ev.readable {
            self.conn_readable(token);
        }
        self.maybe_close(token);
    }

    fn conn_readable(&mut self, token: usize) {
        // Chaos-testing hook: `proto.read=err(...)` fails the read like a
        // torn connection would (same site the threaded server honors).
        if read_failpoint().is_err() {
            self.drop_conn(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut framed: Vec<Framed> = Vec::new();
        let mut chunk = [0u8; READ_CHUNK];
        let mut budget = READ_BUDGET;
        loop {
            if budget == 0 {
                break; // level-triggered: the rest re-reports next poll
            }
            match conn.stream.read(&mut chunk[..READ_CHUNK.min(budget)]) {
                Ok(0) => {
                    // Peer EOF. An unterminated trailing line still counts
                    // as a line (matching the blocking reader).
                    if conn.discarding {
                        conn.discarding = false;
                        framed.push(Framed::TooLong(take_oversize_id(conn)));
                    } else if !conn.line.is_empty() {
                        framed.push(Framed::Line(std::mem::take(&mut conn.line)));
                    }
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    budget -= n;
                    frame_chunk(conn, &chunk[..n], &mut framed);
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        // The slow-loris clock: ticking iff a line is mid-flight. A stall
        // that starts between sweeps arms its own wake-up at the exact
        // reap deadline — with a coarse sweep tick the reap would
        // otherwise slip by up to a whole tick past `read_timeout`.
        if conn.line.is_empty() && !conn.discarding {
            conn.partial_since = None;
        } else if conn.partial_since.is_none() {
            let since = Instant::now();
            conn.partial_since = Some(since);
            self.reactor
                .set_timer(saturating_deadline(since, self.opts.read_timeout), SWEEP);
        }
        for item in framed {
            if !self.conns.contains_key(&token) {
                return; // an earlier line's handling dropped the conn
            }
            match item {
                Framed::TooLong(id) => {
                    let msg = format!("request line exceeds {MAX_LINE_BYTES} bytes");
                    let error = proto::wire_error(ErrorKind::OversizeLine, msg);
                    match id {
                        // A recovered id: answer immediately and id-matched,
                        // like any other out-of-order response — an in-flight
                        // pipelined solve must not be charged with this error.
                        Some(id) => {
                            let line = proto::encode_response_line(Some(&id), &error);
                            self.queue_response(token, &line);
                        }
                        None => self.enqueue_ordered(token, Queued::Respond(Box::new(error))),
                    }
                }
                Framed::Line(raw) => self.handle_line(token, &raw),
            }
        }
    }

    fn handle_line(&mut self, token: usize, raw: &[u8]) {
        let text = String::from_utf8_lossy(raw);
        if text.trim().is_empty() {
            return;
        }
        let DecodedRequest { id, request } = proto::decode_request_line(&text);
        match (id, request) {
            // Unparseable request: the error is matched to its id when one
            // was recoverable, otherwise it joins the ordered stream.
            (id @ Some(_), Err(msg)) => {
                let line = proto::encode_response_line(
                    id.as_ref(),
                    &proto::wire_error(ErrorKind::Parse, msg),
                );
                self.queue_response(token, &line);
            }
            (None, Err(msg)) => {
                self.enqueue_ordered(
                    token,
                    Queued::Respond(Box::new(proto::wire_error(ErrorKind::Parse, msg))),
                );
            }
            // Batches fan out immediately: every query carries its own id
            // (an envelope id would be ambiguous across N responses and is
            // ignored), so responses are out-of-order like any pipelined
            // solve, one per query.
            (_, Ok(WireRequest::SolveBatch(batch))) => self.handle_batch(token, batch),
            // Id-carrying requests dispatch immediately (out-of-order).
            (Some(id), Ok(WireRequest::Metrics)) => {
                let line = proto::encode_response_line(
                    Some(&id),
                    &WireResponse::Metrics(self.service.metrics()),
                );
                self.queue_response(token, &line);
            }
            (Some(id), Ok(WireRequest::Health)) => {
                let response = WireResponse::Health(self.local_health());
                let line = proto::encode_response_line(Some(&id), &response);
                self.queue_response(token, &line);
            }
            // Epoch control-plane requests are synchronous cache/registry
            // operations (no solver pool): evaluated inline, like Metrics.
            (Some(id), Ok(request @ (WireRequest::Register(_) | WireRequest::Epoch(_)))) => {
                let response = proto::dispatch(&self.service, request);
                let line = proto::encode_response_line(Some(&id), &response);
                self.queue_response(token, &line);
            }
            (Some(id), Ok(WireRequest::Solve(solve))) => {
                if let Some(refused) = self.screen_solve(token, &solve) {
                    let line = proto::encode_response_line(Some(&id), &refused);
                    self.queue_response(token, &line);
                    return;
                }
                self.dispatch_solve(token, Some(id), false, solve);
            }
            // Id-less requests keep blocking-server semantics: strictly
            // in order, evaluated only when their turn comes.
            (None, Ok(WireRequest::Solve(solve))) => {
                if let Some(refused) = self.screen_solve(token, &solve) {
                    self.enqueue_ordered(token, Queued::Respond(Box::new(refused)));
                    return;
                }
                self.enqueue_ordered(token, Queued::Request(WireRequest::Solve(solve)));
            }
            (None, Ok(request)) => self.enqueue_ordered(token, Queued::Request(request)),
        }
    }

    /// Fans a `SolveBatch` out to one dispatched solve per query. The
    /// token bucket charges the *batch* (one wire request, one token —
    /// batching is the sanctioned way to amortize); admission, deadlines,
    /// and the degradation ladder then apply per query, and every
    /// response — including refusals — is id-matched to its query.
    fn handle_batch(&mut self, token: usize, batch: SolveBatchRequest) {
        let Some(peer) = self.conns.get(&token).map(|conn| conn.peer) else {
            return;
        };
        if batch.queries.is_empty() {
            self.enqueue_ordered(
                token,
                Queued::Respond(Box::new(proto::wire_error(
                    ErrorKind::Parse,
                    "empty SolveBatch: no queries",
                ))),
            );
            return;
        }
        self.stats.batch(batch.queries.len() as u64);
        let rate_refused = if self.rate_allow(peer) {
            None
        } else {
            self.stats.rate_limited();
            Some(proto::wire_error(
                ErrorKind::RateLimited,
                "per-client request rate exceeded",
            ))
        };
        for query in batch.queries {
            let id = Content::Int(i128::from(query.id));
            let refused =
                rate_refused.clone().or_else(|| {
                    query.instance.validate().err().map(|e| {
                        proto::wire_error(ErrorKind::Parse, format!("invalid instance: {e}"))
                    })
                });
            if let Some(response) = refused {
                let line = proto::encode_response_line(Some(&id), &response);
                self.queue_response(token, &line);
                continue;
            }
            self.dispatch_solve(
                token,
                Some(id),
                false,
                SolveRequest {
                    instance: query.instance,
                    deadline_ms: query.deadline_ms,
                    kernel: query.kernel,
                },
            );
        }
    }

    /// Receipt-time checks shared by both dispatch paths: the per-address
    /// token bucket, then instance validation.
    fn screen_solve(&mut self, token: usize, solve: &SolveRequest) -> Option<WireResponse> {
        let peer = self.conns.get(&token)?.peer;
        if !self.rate_allow(peer) {
            self.stats.rate_limited();
            return Some(proto::wire_error(
                ErrorKind::RateLimited,
                "per-client request rate exceeded",
            ));
        }
        if let Err(e) = solve.instance.validate() {
            return Some(proto::wire_error(
                ErrorKind::Parse,
                format!("invalid instance: {e}"),
            ));
        }
        None
    }

    fn rate_allow(&mut self, ip: IpAddr) -> bool {
        if self.opts.rate_per_sec == 0 {
            return true;
        }
        let rate = self.opts.rate_per_sec as f64;
        let burst = if self.opts.rate_burst == 0 {
            2.0 * rate
        } else {
            self.opts.rate_burst as f64
        };
        let now = Instant::now();
        let bucket = self.buckets.entry(ip).or_insert(Bucket {
            tokens: burst,
            last: now,
        });
        bucket.tokens =
            (bucket.tokens + now.duration_since(bucket.last).as_secs_f64() * rate).min(burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn enqueue_ordered(&mut self, token: usize, item: Queued) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.queue.push_back(item);
        }
        self.pump_queue(token);
    }

    /// Advances the connection's in-order stream: answers everything up
    /// to (and excluding) the next `Solve`, then dispatches that solve
    /// and pauses until its completion unblocks the queue.
    fn pump_queue(&mut self, token: usize) {
        loop {
            let item = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.ordered_busy {
                    return;
                }
                match conn.queue.pop_front() {
                    Some(item) => item,
                    None => return,
                }
            };
            match item {
                Queued::Respond(response) => {
                    let line = proto::encode_response_line(None, &response);
                    self.queue_response(token, &line);
                }
                Queued::Request(WireRequest::Metrics) => {
                    // Evaluated here, not at receipt: every earlier id-less
                    // request has completed, so the snapshot observes them
                    // exactly as the blocking server's did.
                    let line = proto::encode_response_line(
                        None,
                        &WireResponse::Metrics(self.service.metrics()),
                    );
                    self.queue_response(token, &line);
                }
                Queued::Request(WireRequest::Health) => {
                    let response = WireResponse::Health(self.local_health());
                    let line = proto::encode_response_line(None, &response);
                    self.queue_response(token, &line);
                }
                Queued::Request(WireRequest::Solve(solve)) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.ordered_busy = true;
                    }
                    self.dispatch_solve(token, None, true, solve);
                    return;
                }
                Queued::Request(request @ (WireRequest::Register(_) | WireRequest::Epoch(_))) => {
                    // In the ordered stream these wait their turn, so an
                    // id-less client can Solve → Epoch → Solve and observe
                    // the advance exactly between the two answers.
                    let response = proto::dispatch(&self.service, request);
                    let line = proto::encode_response_line(None, &response);
                    self.queue_response(token, &line);
                }
                // Unreachable: batches fan out at receipt (handle_line)
                // and never join the id-less ordered stream.
                Queued::Request(WireRequest::SolveBatch(batch)) => {
                    self.handle_batch(token, batch);
                }
            }
        }
    }

    fn dispatch_solve(
        &mut self,
        token: usize,
        id: Option<Content>,
        ordered: bool,
        solve: SolveRequest,
    ) {
        let depth = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.in_flight += 1;
            conn.in_flight as u64
        };
        self.stats.observe_pipeline_depth(depth);
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        self.service.provision_async(
            Request {
                instance: solve.instance,
                deadline: solve.deadline_ms.map(Duration::from_millis),
                kernel: solve.kernel,
            },
            move |out| {
                // Rendering happens on the worker, off the reactor thread.
                let line = proto::encode_response_line(id.as_ref(), &solve_response(out));
                lock_recover(&completions).push(Completion {
                    token,
                    line,
                    ordered,
                });
                waker.wake();
            },
        );
    }

    fn local_health(&self) -> crate::proto::HealthReply {
        self.stats.health_probe();
        health_reply(
            &self.service,
            Some((self.conns.len() as u64, self.opts.max_conns as u64)),
        )
    }

    fn apply_completions(&mut self) {
        let batch = std::mem::take(&mut *lock_recover(&self.completions));
        for done in batch {
            let Some(conn) = self.conns.get_mut(&done.token) else {
                continue; // the connection died while its solve ran
            };
            conn.in_flight -= 1;
            if done.ordered {
                conn.ordered_busy = false;
            }
            self.queue_response(done.token, &done.line);
            if done.ordered {
                self.pump_queue(done.token);
            }
            self.maybe_close(done.token);
        }
    }

    // ---- write path -----------------------------------------------------

    fn queue_response(&mut self, token: usize, line: &str) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out.extend_from_slice(line.as_bytes());
        conn.out.push(b'\n');
        self.flush(token);
    }

    fn flush(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.drop_conn(token);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                    if conn.out_pos >= OUT_COMPACT {
                        conn.out.drain(..conn.out_pos);
                        conn.out_pos = 0;
                    }
                    if conn.write_stall_since.is_none() {
                        // Same deal as the read-stall clock: arm a wake-up
                        // at the reap deadline so a coarse sweep tick does
                        // not stretch `write_timeout`.
                        let since = Instant::now();
                        conn.write_stall_since = Some(since);
                        self.reactor
                            .set_timer(saturating_deadline(since, self.opts.write_timeout), SWEEP);
                    }
                    if !conn.wants_write {
                        conn.wants_write = true;
                        let fd = conn.stream.as_raw_fd();
                        if self
                            .reactor
                            .reregister(fd, Token(token), Interest::BOTH, Mode::Level)
                            .is_err()
                        {
                            self.drop_conn(token);
                        }
                    }
                    return;
                }
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        conn.write_stall_since = None;
        if conn.wants_write {
            conn.wants_write = false;
            let fd = conn.stream.as_raw_fd();
            if self
                .reactor
                .reregister(fd, Token(token), Interest::READABLE, Mode::Level)
                .is_err()
            {
                self.drop_conn(token);
            }
        }
    }

    // ---- lifecycle ------------------------------------------------------

    fn maybe_close(&mut self, token: usize) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.idle() && (conn.read_closed || self.draining) {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.reactor.deregister(conn.stream.as_raw_fd());
            if let Some(n) = self.per_client.get_mut(&conn.peer) {
                *n -= 1;
                if *n == 0 {
                    self.per_client.remove(&conn.peer);
                }
            }
            self.stats.conn_closed();
        }
    }

    /// The housekeeping tick: notices the shutdown flag, enforces the
    /// stall timeouts, prunes cold rate buckets, and re-arms itself.
    fn sweep(&mut self) {
        let now = Instant::now();
        if !self.draining && self.shutdown.load(Ordering::Acquire) {
            self.begin_drain(now);
        }
        let mut read_dead = Vec::new();
        let mut write_dead = Vec::new();
        let mut drain_idle = Vec::new();
        for (&token, conn) in &self.conns {
            if conn
                .partial_since
                .is_some_and(|since| now.duration_since(since) >= self.opts.read_timeout)
            {
                read_dead.push(token);
            } else if conn
                .write_stall_since
                .is_some_and(|since| now.duration_since(since) >= self.opts.write_timeout)
            {
                write_dead.push(token);
            } else if self.draining && conn.idle() {
                drain_idle.push(token);
            }
        }
        for token in read_dead {
            self.stats.read_timeout();
            self.drop_conn(token);
        }
        for token in write_dead {
            self.drop_conn(token);
        }
        for token in drain_idle {
            self.drop_conn(token);
        }
        // Buckets refill to full and then carry no state worth keeping;
        // drop those with no open connection so one-shot clients cannot
        // grow the map unboundedly.
        let burst = if self.opts.rate_burst == 0 {
            2.0 * self.opts.rate_per_sec as f64
        } else {
            self.opts.rate_burst as f64
        };
        let per_client = &self.per_client;
        let rate = self.opts.rate_per_sec as f64;
        self.buckets.retain(|ip, bucket| {
            let refilled =
                (bucket.tokens + now.duration_since(bucket.last).as_secs_f64() * rate).min(burst);
            per_client.contains_key(ip) || refilled < burst
        });
        // Re-arm at the next interesting instant, not a fixed tick out:
        // a surviving stalled connection's reap deadline may land well
        // inside the tick, and sleeping the full tick would stretch its
        // configured timeout by up to a whole sweep period.
        let mut next = saturating_deadline(now, self.tick);
        for conn in self.conns.values() {
            if let Some(since) = conn.partial_since {
                next = next.min(saturating_deadline(since, self.opts.read_timeout));
            }
            if let Some(since) = conn.write_stall_since {
                next = next.min(saturating_deadline(since, self.opts.write_timeout));
            }
        }
        self.reactor.set_timer(next.max(now), SWEEP);
    }

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(saturating_deadline(now, self.opts.grace));
        // Stop accepting: deregister and close the listener so the port
        // frees immediately, then flip the service (new solves shed, in-
        // flight ones degrade to their cheapest rung and finish).
        if let Some(listener) = self.listener.take() {
            let _ = self.reactor.deregister(listener.as_raw_fd());
        }
        self.service.begin_shutdown();
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.idle())
            .map(|(&token, _)| token)
            .collect();
        for token in idle {
            self.drop_conn(token);
        }
    }
}

/// Feeds one read chunk through the incremental framer, appending
/// complete lines (and oversize markers) to `framed`.
fn frame_chunk(conn: &mut Conn, mut rest: &[u8], framed: &mut Vec<Framed>) {
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let (head, tail) = rest.split_at(pos);
        rest = &tail[1..];
        if conn.discarding {
            conn.discarding = false;
            framed.push(Framed::TooLong(take_oversize_id(conn)));
        } else if conn.line.len() + head.len() > MAX_LINE_BYTES {
            keep_id_prefix(conn, head);
            framed.push(Framed::TooLong(take_oversize_id(conn)));
        } else {
            conn.line.extend_from_slice(head);
            framed.push(Framed::Line(std::mem::take(&mut conn.line)));
        }
    }
    if !rest.is_empty() && !conn.discarding {
        if conn.line.len() + rest.len() > MAX_LINE_BYTES {
            // Stop buffering: the line already blew the cap; keep only its
            // [`ID_PREFIX`]-byte head (for id recovery) until its newline.
            keep_id_prefix(conn, rest);
            conn.discarding = true;
        } else {
            conn.line.extend_from_slice(rest);
        }
    }
}

/// Truncates `conn.line` to the oversize line's first [`ID_PREFIX`] bytes,
/// topping it up from `next` (the chunk that blew the cap) if the buffered
/// part was shorter than the prefix.
fn keep_id_prefix(conn: &mut Conn, next: &[u8]) {
    if conn.line.len() < ID_PREFIX {
        let want = ID_PREFIX - conn.line.len();
        conn.line.extend_from_slice(&next[..want.min(next.len())]);
    }
    conn.line.truncate(ID_PREFIX);
}

/// Consumes the retained oversize-line prefix, recovering its `"id"`.
fn take_oversize_id(conn: &mut Conn) -> Option<Content> {
    let prefix = std::mem::take(&mut conn.line);
    recover_line_id(&prefix)
}

/// Strictly parses the canonical pipelined-request head `{"id":<int>` out
/// of an oversize line's retained prefix. Only the exact splice the
/// [`proto::encode_request_with_id`]-family encoders emit (optional
/// whitespace, then a leading integer `"id"` member) is recognized —
/// guessing at arbitrary JSON from a truncated prefix risks matching an
/// id the client never sent, and a miss only downgrades the oversize
/// error to the historical bare form.
fn recover_line_id(prefix: &[u8]) -> Option<Content> {
    let mut rest = prefix;
    let skip_ws = |bytes: &mut &[u8]| {
        while let [b' ' | b'\t' | b'\r', tail @ ..] = *bytes {
            *bytes = tail;
        }
    };
    skip_ws(&mut rest);
    rest = rest.strip_prefix(b"{")?;
    skip_ws(&mut rest);
    rest = rest.strip_prefix(b"\"id\"")?;
    skip_ws(&mut rest);
    rest = rest.strip_prefix(b":")?;
    skip_ws(&mut rest);
    let negative = if let Some(tail) = rest.strip_prefix(b"-") {
        rest = tail;
        true
    } else {
        false
    };
    let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
    // The id must end inside the prefix (at a member separator), or a
    // truncated longer number would be misread as a shorter id.
    if digits == 0 || digits == rest.len() {
        return None;
    }
    let text = std::str::from_utf8(&rest[..digits]).ok()?;
    let n: i128 = text.parse().ok()?;
    Some(Content::Int(if negative { -n } else { n }))
}

/// The `proto.read` failpoint as a fallible call site (the macro's `Err`
/// form returns from the enclosing function).
fn read_failpoint() -> std::io::Result<()> {
    krsp_failpoint::fail_point!("proto.read", |msg| Err(std::io::Error::other(msg)));
    Ok(())
}
