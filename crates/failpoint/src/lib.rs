//! Named fail points for deterministic fault injection.
//!
//! A hermetic, dependency-free take on tikv's `fail-rs`: code under test
//! plants named sites with [`fail_point!`], and a test (or the
//! `KRSP_FAILPOINTS` environment variable) arms a site with an action:
//!
//! ```text
//! KRSP_FAILPOINTS='bicameral.seed=panic;proto.read=delay(50)'
//! ```
//!
//! Supported actions:
//!
//! | spec            | effect at the site                                   |
//! |-----------------|------------------------------------------------------|
//! | `off`           | disarm the site                                      |
//! | `panic`         | `panic!` with a canned message                       |
//! | `panic(msg)`    | `panic!` with `msg`                                  |
//! | `delay(ms)`     | sleep `ms` milliseconds, then continue               |
//! | `err`           | early-return via the site's error mapping            |
//! | `err(msg)`      | same, with `msg` as the payload                      |
//!
//! Any action may be prefixed with a count, `N*action`, firing at most `N`
//! times before the site goes quiet (`1*panic` = "panic exactly once").
//! Sites planted without an error mapping (the one-argument macro form)
//! ignore `err` actions.
//!
//! The fast path is a single relaxed atomic load: with no site armed,
//! a planted fail point costs one branch and touches no locks. Each site
//! also keeps a fire counter ([`hits`]) so tests can arm a benign
//! `delay(0)` purely to observe whether a code path was reached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Environment variable scanned by [`setup_from_env`].
pub const ENV_VAR: &str = "KRSP_FAILPOINTS";

/// Count of armed sites; the macro fast path checks this before locking.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

#[derive(Clone, Debug, PartialEq, Eq)]
enum Action {
    Panic(Option<String>),
    Delay(u64),
    Err(Option<String>),
}

#[derive(Debug)]
struct Site {
    action: Action,
    /// `Some(n)` fires at most `n` more times; `None` fires forever.
    remaining: Option<u64>,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<String, Site>> {
    // A thread that panics inside `eval` (the `panic` action does so by
    // design) must not poison fault injection for everyone else.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// True when at least one site is armed. The macro checks this first so
/// disarmed fail points stay effectively free.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Outcome of evaluating a site; consumed by [`fail_point!`].
#[doc(hidden)]
#[derive(Debug)]
pub enum Eval {
    /// No action fired (or a non-returning action already ran).
    Pass,
    /// An `err` action fired; the payload goes to the site's error mapping.
    Err(String),
}

/// Evaluates the named site, executing `panic`/`delay` actions in place.
///
/// Returns [`Eval::Err`] when an `err` action fires; the macro turns that
/// into an early return. Prefer the [`fail_point!`] macro over calling
/// this directly.
#[doc(hidden)]
pub fn eval(name: &str) -> Eval {
    let action = {
        let mut map = lock_registry();
        let Some(site) = map.get_mut(name) else {
            return Eval::Pass;
        };
        if let Some(rem) = &mut site.remaining {
            if *rem == 0 {
                return Eval::Pass;
            }
            *rem -= 1;
        }
        site.hits += 1;
        site.action.clone()
    }; // registry unlocked before the action runs
    match action {
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Eval::Pass
        }
        Action::Panic(msg) => {
            let msg = msg.unwrap_or_else(|| "injected panic".to_owned());
            panic!("failpoint {name}: {msg}");
        }
        Action::Err(msg) => {
            Eval::Err(msg.unwrap_or_else(|| format!("failpoint {name}: injected error")))
        }
    }
}

fn parse_action(spec: &str) -> Result<(Option<Action>, Option<u64>), String> {
    let spec = spec.trim();
    let (count, body) = match spec.split_once('*') {
        Some((n, rest)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("bad count prefix in {spec:?}"))?;
            (Some(n), rest.trim())
        }
        None => (None, spec),
    };
    let (head, arg) = match body.split_once('(') {
        Some((head, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed parenthesis in {spec:?}"))?;
            (head.trim(), Some(arg))
        }
        None => (body, None),
    };
    let action = match (head, arg) {
        ("off", None) => None,
        ("panic", msg) => Some(Action::Panic(msg.map(str::to_owned))),
        ("err", msg) => Some(Action::Err(msg.map(str::to_owned))),
        ("delay", Some(ms)) => Some(Action::Delay(
            ms.trim()
                .parse()
                .map_err(|_| format!("bad delay in {spec:?}"))?,
        )),
        ("delay", None) => return Err(format!("delay needs milliseconds in {spec:?}")),
        _ => return Err(format!("unknown failpoint action {spec:?}")),
    };
    Ok((action, count))
}

/// Arms (or with `"off"` disarms) the named site.
///
/// The action grammar is documented at the crate level. Re-arming a site
/// replaces its action and resets its count prefix, but preserves the hit
/// counter.
pub fn cfg(name: &str, action: &str) -> Result<(), String> {
    let (action, count) = parse_action(action)?;
    let mut map = lock_registry();
    match action {
        None => {
            map.remove(name);
        }
        Some(action) => {
            let hits = map.get(name).map_or(0, |s| s.hits);
            map.insert(
                name.to_owned(),
                Site {
                    action,
                    remaining: count,
                    hits,
                },
            );
        }
    }
    ACTIVE.store(map.len(), Ordering::Relaxed);
    Ok(())
}

/// Disarms the named site (idempotent).
pub fn remove(name: &str) {
    let mut map = lock_registry();
    map.remove(name);
    ACTIVE.store(map.len(), Ordering::Relaxed);
}

/// Disarms every site and zeroes all hit counters.
pub fn clear() {
    let mut map = lock_registry();
    map.clear();
    ACTIVE.store(0, Ordering::Relaxed);
}

/// Number of times the named site has fired since it was first armed.
#[must_use]
pub fn hits(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |s| s.hits)
}

/// Names of every armed site, sorted (for diagnostics).
#[must_use]
pub fn list() -> Vec<String> {
    let mut names: Vec<String> = lock_registry().keys().cloned().collect();
    names.sort();
    names
}

/// Arms sites from a `site=action;site=action` spec string.
///
/// Stops at the first malformed entry and reports it; entries before the
/// bad one stay armed.
pub fn setup_str(spec: &str) -> Result<(), String> {
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, action) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?} is not site=action"))?;
        cfg(name.trim(), action)?;
    }
    Ok(())
}

/// Arms sites from the `KRSP_FAILPOINTS` environment variable.
///
/// Safe to call repeatedly (the service re-applies it on construction so
/// env-armed sites survive a test-driven [`clear`]); note that re-applying
/// resets `N*` count prefixes. Malformed specs are reported to stderr and
/// otherwise ignored.
pub fn setup_from_env() {
    if let Ok(spec) = std::env::var(ENV_VAR) {
        if let Err(e) = setup_str(&spec) {
            eprintln!("warning: ignoring bad {ENV_VAR} entry: {e}");
        }
    }
}

/// Plants a named fail point.
///
/// `fail_point!("site")` honors `panic` and `delay` actions and ignores
/// `err`. `fail_point!("site", |msg| expr)` additionally early-returns
/// `expr` from the enclosing function when an `err` action fires, with
/// `msg` bound to the action's payload string.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if $crate::enabled() {
            let _ = $crate::eval($name);
        }
    };
    ($name:expr, $ret:expr) => {
        if $crate::enabled() {
            if let $crate::Eval::Err(__fp_msg) = $crate::eval($name) {
                return ($ret)(__fp_msg);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is process-global and `cargo test` is multi-threaded,
    // so every test serializes on this lock and starts from a clean slate.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn session() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        guard
    }

    fn guarded(name: &str) -> Result<u32, String> {
        fail_point!(name, Err);
        Ok(7)
    }

    #[test]
    fn disarmed_sites_are_inert() {
        let _s = session();
        assert!(!enabled());
        assert_eq!(guarded("t.none"), Ok(7));
        assert_eq!(hits("t.none"), 0);
    }

    #[test]
    fn err_action_early_returns_with_payload() {
        let _s = session();
        cfg("t.err", "err(boom)").unwrap();
        assert!(enabled());
        assert_eq!(guarded("t.err"), Err("boom".to_owned()));
        assert_eq!(hits("t.err"), 1);
        cfg("t.err", "off").unwrap();
        assert_eq!(guarded("t.err"), Ok(7));
    }

    #[test]
    fn count_prefix_limits_fires() {
        let _s = session();
        cfg("t.count", "2*err").unwrap();
        assert!(guarded("t.count").is_err());
        assert!(guarded("t.count").is_err());
        assert_eq!(guarded("t.count"), Ok(7)); // exhausted
        assert_eq!(hits("t.count"), 2);
    }

    #[test]
    fn panic_action_panics_and_does_not_poison_the_registry() {
        let _s = session();
        cfg("t.panic", "1*panic(kapow)").unwrap();
        let caught = std::panic::catch_unwind(|| {
            fail_point!("t.panic");
        });
        let payload = caught.expect_err("site should have panicked");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("kapow"), "unexpected payload {msg:?}");
        // Registry still usable after the in-flight panic.
        assert_eq!(hits("t.panic"), 1);
        assert_eq!(guarded("t.other"), Ok(7));
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _s = session();
        cfg("t.delay", "delay(20)").unwrap();
        let started = std::time::Instant::now();
        fail_point!("t.delay");
        assert!(started.elapsed() >= Duration::from_millis(15));
        assert_eq!(hits("t.delay"), 1);
    }

    #[test]
    fn env_style_spec_arms_multiple_sites() {
        let _s = session();
        setup_str("a.one=err; b.two=3*delay(0) ;;c.three=panic(x)").unwrap();
        assert_eq!(list(), vec!["a.one", "b.two", "c.three"]);
        assert!(setup_str("broken").is_err());
        assert!(setup_str("d.four=explode").is_err());
        assert!(setup_str("e.five=delay").is_err());
    }

    #[test]
    fn rearming_preserves_hit_counts() {
        let _s = session();
        cfg("t.rearm", "err").unwrap();
        let _ = guarded("t.rearm");
        cfg("t.rearm", "delay(0)").unwrap();
        fail_point!("t.rearm");
        assert_eq!(hits("t.rearm"), 2);
    }
}
