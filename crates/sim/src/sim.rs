//! The tick-level simulation engine.

use crate::policy::Policy;
use crate::traffic::Packet;
use krsp::{Instance, Solution};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A provisioned path, as the simulator sees it: per-hop delays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvisionedPath {
    /// Delay (in ticks) of each hop, in order.
    pub hop_delays: Vec<u64>,
    /// Global edge ids of the hops (shared-capacity key).
    pub hop_edges: Vec<usize>,
}

impl ProvisionedPath {
    /// Uncongested end-to-end latency.
    #[must_use]
    pub fn base_latency(&self) -> u64 {
        self.hop_delays.iter().sum()
    }
}

/// Simulation outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Packets injected.
    pub injected: usize,
    /// Packets delivered within the horizon.
    pub delivered: usize,
    /// Delivered packets that met their deadline.
    pub on_time: usize,
    /// Mean delivered latency in ticks.
    pub mean_latency: f64,
    /// 95th-percentile delivered latency in ticks.
    pub p95_latency: u64,
    /// Per-class on-time counts `(on_time, delivered)`.
    pub per_class: Vec<(usize, usize)>,
}

impl SimReport {
    /// Fraction of *injected* packets delivered on time.
    #[must_use]
    pub fn on_time_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.on_time as f64 / self.injected as f64
    }
}

/// In-flight packet state.
#[derive(Clone, Debug)]
struct Flight {
    packet: Packet,
    path: usize,
    hop: usize,
    /// Ticks left inside the current hop (0 = waiting to enter next hop).
    remaining: u64,
}

/// A multipath simulation over a fixed set of provisioned paths.
#[derive(Clone, Debug)]
pub struct Simulation {
    paths: Vec<ProvisionedPath>,
    /// Packets an edge can admit per tick.
    capacity_per_tick: usize,
}

impl Simulation {
    /// Builds a simulation from explicit paths (fastest first is NOT
    /// assumed; they are sorted internally).
    #[must_use]
    pub fn new(mut paths: Vec<ProvisionedPath>, capacity_per_tick: usize) -> Self {
        assert!(!paths.is_empty() && capacity_per_tick >= 1);
        paths.sort_by_key(ProvisionedPath::base_latency);
        Simulation {
            paths,
            capacity_per_tick,
        }
    }

    /// Builds a simulation from a kRSP solution (paths sorted by delay).
    #[must_use]
    pub fn from_solution(inst: &Instance, sol: &Solution, capacity_per_tick: usize) -> Self {
        let paths = sol
            .paths(inst)
            .into_iter()
            .map(|p| ProvisionedPath {
                hop_delays: p
                    .edges()
                    .iter()
                    .map(|&e| inst.graph.edge(e).delay.max(0) as u64)
                    .collect(),
                hop_edges: p.edges().iter().map(|&e| e.index()).collect(),
            })
            .collect();
        Simulation::new(paths, capacity_per_tick)
    }

    /// Number of provisioned paths.
    #[must_use]
    pub fn k(&self) -> usize {
        self.paths.len()
    }

    /// Runs the trace to completion (simulates until every delivered packet
    /// drains or `4×horizon` ticks elapse) and reports.
    #[must_use]
    pub fn run(&self, trace: &[Packet], policy: Policy, horizon: u64) -> SimReport {
        let max_edge = self
            .paths
            .iter()
            .flat_map(|p| p.hop_edges.iter())
            .max()
            .copied()
            .unwrap_or(0);
        // FIFO admission queue per edge.
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); max_edge + 1];
        let mut flights: Vec<Option<Flight>> = Vec::new();
        let mut latencies: Vec<u64> = Vec::new();
        let classes = trace.iter().map(|p| p.class).max().map_or(1, |c| c + 1);
        let mut per_class = vec![(0usize, 0usize); classes];
        let mut on_time = 0usize;

        let mut next_arrival = 0usize;
        let mut seq = 0u64;
        let hard_stop = horizon.saturating_mul(4).max(64);
        let mut in_flight = 0usize;

        for now in 0..hard_stop {
            // Inject arrivals for this tick.
            while next_arrival < trace.len() && trace[next_arrival].arrival == now {
                let packet = trace[next_arrival];
                let path = policy.assign(packet.class, seq, self.paths.len());
                seq += 1;
                let id = flights.len();
                flights.push(Some(Flight {
                    packet,
                    path,
                    hop: 0,
                    remaining: 0,
                }));
                in_flight += 1;
                queues[self.paths[path].hop_edges[0]].push_back(id);
                next_arrival += 1;
            }

            // Advance in-transit packets (those inside a hop pipeline).
            #[allow(clippy::needless_range_loop)] // flights[id] is cleared inside
            for id in 0..flights.len() {
                let Some(f) = &mut flights[id] else { continue };
                if f.remaining > 0 {
                    f.remaining -= 1;
                    if f.remaining == 0 {
                        // Leave this hop; enter next queue or deliver.
                        f.hop += 1;
                        let path = &self.paths[f.path];
                        if f.hop == path.hop_edges.len() {
                            let latency = now - f.packet.arrival;
                            latencies.push(latency);
                            per_class[f.packet.class].1 += 1;
                            if latency <= f.packet.deadline {
                                on_time += 1;
                                per_class[f.packet.class].0 += 1;
                            }
                            flights[id] = None;
                            in_flight -= 1;
                        } else {
                            queues[path.hop_edges[f.hop]].push_back(id);
                        }
                    }
                }
            }

            // Admit from queues into hop pipelines (per-edge capacity).
            for q in &mut queues {
                for _ in 0..self.capacity_per_tick {
                    let Some(id) = q.pop_front() else { break };
                    let f = flights[id].as_mut().expect("queued flight exists");
                    let path = &self.paths[f.path];
                    // Entering the hop takes max(delay, 1) ticks to clear
                    // (zero-delay hops still consume an admission slot).
                    f.remaining = path.hop_delays[f.hop].max(1);
                }
            }

            if next_arrival == trace.len() && in_flight == 0 {
                break;
            }
        }

        latencies.sort_unstable();
        let delivered = latencies.len();
        let mean = if delivered == 0 {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / delivered as f64
        };
        let p95 = if delivered == 0 {
            0
        } else {
            latencies[(delivered - 1).min(delivered * 95 / 100)]
        };
        SimReport {
            injected: trace.len(),
            delivered,
            on_time,
            mean_latency: mean,
            p95_latency: p95,
            per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficSpec;

    fn two_paths() -> Simulation {
        Simulation::new(
            vec![
                ProvisionedPath {
                    hop_delays: vec![10, 10],
                    hop_edges: vec![0, 1],
                },
                ProvisionedPath {
                    hop_delays: vec![2, 2],
                    hop_edges: vec![2, 3],
                },
            ],
            1,
        )
    }

    #[test]
    fn paths_sorted_fastest_first() {
        let sim = two_paths();
        assert_eq!(sim.paths[0].base_latency(), 4);
        assert_eq!(sim.paths[1].base_latency(), 20);
    }

    #[test]
    fn single_packet_latency_equals_path_delay() {
        let sim = two_paths();
        let trace = [Packet {
            arrival: 0,
            class: 0,
            deadline: 100,
        }];
        let r = sim.run(&trace, Policy::UrgencyPriority, 10);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.on_time, 1);
        // Fast path: 2 + 2 ticks of pipeline.
        assert_eq!(r.mean_latency, 4.0);
    }

    #[test]
    fn urgent_class_gets_fast_path() {
        let sim = two_paths();
        let trace = [
            Packet {
                arrival: 0,
                class: 0,
                deadline: 5,
            },
            Packet {
                arrival: 0,
                class: 1,
                deadline: 30,
            },
        ];
        let r = sim.run(&trace, Policy::UrgencyPriority, 10);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.on_time, 2);
        assert_eq!(r.per_class, vec![(1, 1), (1, 1)]);
        // FastestOnly sends both down the fast path: still fine here.
        let r2 = sim.run(&trace, Policy::FastestOnly, 10);
        assert_eq!(r2.on_time, 2);
    }

    #[test]
    fn congestion_queues_packets() {
        // One path, capacity 1/tick, burst of 5 packets at t=0: the k-th
        // packet waits k−1 ticks at the first hop.
        let sim = Simulation::new(
            vec![ProvisionedPath {
                hop_delays: vec![1],
                hop_edges: vec![0],
            }],
            1,
        );
        let trace: Vec<Packet> = (0..5)
            .map(|_| Packet {
                arrival: 0,
                class: 0,
                deadline: 2,
            })
            .collect();
        let r = sim.run(&trace, Policy::FastestOnly, 10);
        assert_eq!(r.delivered, 5);
        // Latencies 1,2,3,4,5 → only deadlines ≤ 2 are on time.
        assert_eq!(r.on_time, 2);
        assert_eq!(r.p95_latency, 5);
        assert!((r.mean_latency - 3.0).abs() < 1e-9);
    }

    #[test]
    fn multipath_beats_single_path_under_load() {
        let sim = two_paths();
        let trace = TrafficSpec {
            classes: 2,
            load_per_tick: 1.6,
            ticks: 200,
            base_deadline: 25,
            seed: 5,
        }
        .generate();
        let multi = sim.run(&trace, Policy::UrgencyPriority, 200);
        let single = sim.run(&trace, Policy::FastestOnly, 200);
        assert!(
            multi.on_time_ratio() > single.on_time_ratio(),
            "multipath {:.3} vs single {:.3}",
            multi.on_time_ratio(),
            single.on_time_ratio()
        );
    }

    #[test]
    fn report_ratio_handles_empty() {
        let r = SimReport::default();
        assert_eq!(r.on_time_ratio(), 1.0);
    }
}
