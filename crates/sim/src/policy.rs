//! Packet-to-path assignment policies.

use serde::{Deserialize, Serialize};

/// How the ingress router assigns an arriving packet to one of the `k`
/// provisioned paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// The paper's policy (§1): paths sorted by delay; class `c` uses path
    /// `min(c, k−1)` — urgent traffic takes the fastest path.
    UrgencyPriority,
    /// Round-robin across paths, ignoring urgency.
    RoundRobin,
    /// Everything on the single fastest path (no multipath).
    FastestOnly,
}

impl Policy {
    /// Chooses a path index for the `n`-th packet of class `class` among
    /// `k` paths (paths are pre-sorted fastest-first).
    #[must_use]
    pub fn assign(&self, class: usize, n: u64, k: usize) -> usize {
        assert!(k >= 1);
        match self {
            Policy::UrgencyPriority => class.min(k - 1),
            Policy::RoundRobin => (n % k as u64) as usize,
            Policy::FastestOnly => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urgency_maps_class_to_path() {
        let p = Policy::UrgencyPriority;
        assert_eq!(p.assign(0, 9, 3), 0);
        assert_eq!(p.assign(1, 9, 3), 1);
        assert_eq!(p.assign(2, 9, 3), 2);
        assert_eq!(p.assign(5, 9, 3), 2); // clamped
    }

    #[test]
    fn round_robin_cycles() {
        let p = Policy::RoundRobin;
        let seq: Vec<usize> = (0..6).map(|n| p.assign(0, n, 3)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn fastest_only_is_constant() {
        let p = Policy::FastestOnly;
        assert!((0..10).all(|n| p.assign(n as usize % 3, n, 4) == 0));
    }
}
