//! Tick-level multipath packet simulator.
//!
//! The paper motivates kRSP with multimedia QoS: "route the packages via
//! the k paths according to their urgency priority, i.e., routing urgent
//! packages via paths of low delay whilst deferrable ones via paths of
//! high delay" (§1). This crate closes the loop: it takes a provisioned
//! path system and *replays traffic over it*, measuring what the
//! application actually experiences — per-packet latency, deadline hit
//! rates, and queueing under load.
//!
//! The model is a synchronous tick simulation:
//!
//! * an edge with delay `d(e)` is a pipeline of `d(e)` stages;
//! * each edge admits at most `capacity` packets per tick (FIFO queue at
//!   its tail), so congestion produces honest queueing delay;
//! * packets belong to urgency classes; the routing policy maps classes to
//!   paths (the paper's urgency-priority policy, plus round-robin and
//!   random baselines for comparison).
//!
//! Used by experiment T5 (EXPERIMENTS.md) to show that kRSP provisioning
//! dominates delay-oblivious min-sum provisioning on deadline hit rate at
//! equal or lower cost than min-delay provisioning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod sim;
pub mod traffic;

pub use policy::Policy;
pub use sim::{ProvisionedPath, SimReport, Simulation};
pub use traffic::{Packet, TrafficSpec};
