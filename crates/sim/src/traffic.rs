//! Traffic generation: urgency-classed packet arrivals.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};

/// One packet to deliver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival tick.
    pub arrival: u64,
    /// Urgency class (`0` = most urgent). Classes map to deadlines and, in
    /// the urgency-priority policy, to paths.
    pub class: usize,
    /// Delivery deadline in ticks *after arrival*.
    pub deadline: u64,
}

/// A seeded traffic specification.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Number of urgency classes (≥ 1).
    pub classes: usize,
    /// Mean packets injected per tick (over all classes).
    pub load_per_tick: f64,
    /// Horizon: packets arrive in `0..ticks`.
    pub ticks: u64,
    /// Deadline of class 0 (each later class doubles it).
    pub base_deadline: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl TrafficSpec {
    /// Generates the packet trace (sorted by arrival).
    #[must_use]
    pub fn generate(&self) -> Vec<Packet> {
        assert!(self.classes >= 1);
        let mut rng = ChaCha20Rng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for t in 0..self.ticks {
            // Bernoulli splits of the per-tick load (integer + fractional).
            let whole = self.load_per_tick.floor() as usize;
            let frac = self.load_per_tick - self.load_per_tick.floor();
            let count = whole + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
            for _ in 0..count {
                let class = rng.gen_range(0..self.classes);
                out.push(Packet {
                    arrival: t,
                    class,
                    deadline: self.base_deadline << class,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(load: f64, seed: u64) -> TrafficSpec {
        TrafficSpec {
            classes: 3,
            load_per_tick: load,
            ticks: 1000,
            base_deadline: 20,
            seed,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(spec(1.5, 7).generate(), spec(1.5, 7).generate());
        assert_ne!(spec(1.5, 7).generate(), spec(1.5, 8).generate());
    }

    #[test]
    fn load_is_respected_on_average() {
        let packets = spec(1.5, 42).generate();
        let rate = packets.len() as f64 / 1000.0;
        assert!((rate - 1.5).abs() < 0.1, "observed rate {rate}");
    }

    #[test]
    fn deadlines_double_per_class() {
        let packets = spec(2.0, 1).generate();
        for p in &packets {
            assert_eq!(p.deadline, 20 << p.class);
        }
        // All classes appear.
        for c in 0..3 {
            assert!(packets.iter().any(|p| p.class == c));
        }
    }

    #[test]
    fn arrivals_sorted_within_horizon() {
        let packets = spec(0.7, 3).generate();
        assert!(packets.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(packets.iter().all(|p| p.arrival < 1000));
    }
}
