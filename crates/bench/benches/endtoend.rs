//! Criterion end-to-end benchmarks: the full kRSP solver and its phases on
//! sized fabrics (the wall-clock companion to experiment F2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krsp::{phase1, solve, Config, Instance, Phase1Backend};
use krsp_bench::standard_workload;
use krsp_gen::{Family, Regime};

fn instances(n: usize) -> Vec<Instance> {
    (0..3u64)
        .filter_map(|seed| {
            standard_workload(
                Family::Layered,
                n,
                2,
                Regime::Anticorrelated,
                0.4,
                777 + seed,
            )
        })
        .collect()
}

fn bench_full_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let insts = instances(n);
        if insts.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("krsp_default", n), &insts, |b, insts| {
            b.iter(|| {
                for inst in insts {
                    let _ = solve(inst, &Config::default());
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("krsp_single_probe", n),
            &insts,
            |b, insts| {
                let cfg = Config {
                    single_probe: true,
                    ..Config::default()
                };
                b.iter(|| {
                    for inst in insts {
                        let _ = solve(inst, &cfg);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_phase1(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let insts = instances(n);
        if insts.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("lagrangian", n), &insts, |b, insts| {
            b.iter(|| {
                for inst in insts {
                    let _ = phase1::run(inst, Phase1Backend::Lagrangian);
                }
            })
        });
        if n <= 40 {
            group.bench_with_input(BenchmarkId::new("simplex", n), &insts, |b, insts| {
                b.iter(|| {
                    for inst in insts {
                        let _ = phase1::run(inst, Phase1Backend::Simplex);
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let insts = instances(40);
    if insts.is_empty() {
        return;
    }
    group.bench_function("min_sum", |b| {
        b.iter(|| {
            for inst in &insts {
                let _ = krsp::baselines::min_sum(inst);
            }
        })
    });
    group.bench_function("orda_sprintson", |b| {
        b.iter(|| {
            for inst in &insts {
                let _ = krsp::baselines::orda_sprintson(inst);
            }
        })
    });
    group.bench_function("greedy_rsp", |b| {
        b.iter(|| {
            for inst in &insts {
                let _ = krsp::baselines::greedy_rsp(inst);
            }
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    let insts: Vec<Instance> = (0..16u64)
        .filter_map(|seed| {
            standard_workload(
                Family::Layered,
                30,
                2,
                Regime::Anticorrelated,
                0.4,
                555 + seed,
            )
        })
        .collect();
    if insts.len() < 4 {
        return;
    }
    group.bench_function("sequential_16", |b| {
        b.iter(|| {
            insts
                .iter()
                .map(|i| solve(i, &Config::default()))
                .filter(Result::is_ok)
                .count()
        })
    });
    group.bench_function("rayon_16", |b| {
        b.iter(|| {
            krsp::solve_batch(&insts, &Config::default())
                .iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_solver,
    bench_phase1,
    bench_baselines,
    bench_batch
);
criterion_main!(benches);
