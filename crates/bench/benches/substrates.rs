//! Criterion microbenchmarks for the algorithmic substrates (DESIGN.md S1):
//! the building blocks whose costs dominate the paper's complexity bounds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use krsp_flow::bellman_ford::bellman_ford;
use krsp_flow::dijkstra::dijkstra;
use krsp_flow::karp::min_mean_cycle;
use krsp_flow::{constrained_shortest_path, max_edge_disjoint_paths, min_cost_k_flow};
use krsp_gen::{gnm, Regime, WeightParams};
use krsp_graph::{DiGraph, EdgeId, NodeId};
use krsp_numeric::Lex2;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn graph(n: usize) -> DiGraph {
    let mut rng = ChaCha20Rng::seed_from_u64(42);
    gnm(n, n * 5, Regime::Uniform, WeightParams::default(), &mut rng)
}

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_paths");
    for n in [64usize, 256, 1024] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &g, |b, g| {
            b.iter(|| dijkstra(g, NodeId(0), |e| g.edge(e).cost))
        });
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &g, |b, g| {
            b.iter(|| bellman_ford(g, NodeId(0), |e| g.edge(e).cost))
        });
    }
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    for n in [64usize, 256] {
        let g = graph(n);
        let t = NodeId((n - 1) as u32);
        group.bench_with_input(BenchmarkId::new("dinic_disjoint", n), &g, |b, g| {
            b.iter(|| max_edge_disjoint_paths(g, NodeId(0), t))
        });
        group.bench_with_input(BenchmarkId::new("edmonds_karp_disjoint", n), &g, |b, g| {
            b.iter(|| krsp_flow::max_edge_disjoint_paths_ek(g, NodeId(0), t))
        });
        group.bench_with_input(BenchmarkId::new("mcf_k2_lex_bf", n), &g, |b, g| {
            b.iter(|| {
                min_cost_k_flow(g, NodeId(0), t, 2, |e: EdgeId| {
                    let r = g.edge(e);
                    Lex2::new(r.cost as i128, r.delay as i128)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("mcf_k2_lex_potentials", n), &g, |b, g| {
            b.iter(|| {
                krsp_flow::min_cost_k_flow_fast(g, NodeId(0), t, 2, |e: EdgeId| {
                    let r = g.edge(e);
                    Lex2::new(r.cost as i128, r.delay as i128)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("yen_k8", n), &g, |b, g| {
            b.iter(|| krsp_flow::k_shortest_paths(g, NodeId(0), t, 8, |e| g.edge(e).cost))
        });
    }
    group.finish();
}

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycles");
    for n in [32usize, 128] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::new("karp_min_mean", n), &g, |b, g| {
            b.iter(|| min_mean_cycle(g, |e| g.edge(e).cost - 5))
        });
    }
    group.finish();
}

fn bench_csp(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_shortest_path");
    for n in [32usize, 96] {
        let g = graph(n);
        let t = NodeId((n - 1) as u32);
        group.bench_with_input(BenchmarkId::new("exact_dp_D200", n), &g, |b, g| {
            b.iter(|| constrained_shortest_path(g, NodeId(0), t, black_box(200)))
        });
        group.bench_with_input(BenchmarkId::new("fptas_eps_half", n), &g, |b, g| {
            b.iter(|| krsp_flow::rsp_fptas(g, NodeId(0), t, black_box(200), 1, 2))
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    use krsp_lp::{Model, Rat, Relation};
    let mut group = c.benchmark_group("simplex");
    for m in [10usize, 25, 50] {
        // Random-ish dense LP: min Σx, Ax ≥ b with A from the graph costs.
        let g = graph(m);
        group.bench_with_input(BenchmarkId::new("dense_rational", m), &m, |b, &m| {
            b.iter(|| {
                let mut model = Model::new();
                let vars: Vec<_> = (0..m).map(|_| model.add_var(Rat::ONE)).collect();
                for i in 0..m / 2 {
                    let terms: Vec<_> = vars
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| {
                            let w = g
                                .edge(krsp_graph::EdgeId(((i * 7 + j) % g.edge_count()) as u32))
                                .cost;
                            (v, Rat::int(w as i128 % 5 + 1))
                        })
                        .collect();
                    model.add_constraint(terms, Relation::Ge, Rat::int((i as i128 % 7) + 1));
                }
                krsp_lp::solve(&model)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_shortest_paths,
    bench_flow,
    bench_cycles,
    bench_csp,
    bench_simplex
);
criterion_main!(benches);
