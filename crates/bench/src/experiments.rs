//! The experiment implementations (one per DESIGN.md §5 row).

use crate::{max, mean, standard_workload, timed, Table};
use krsp::{baselines, exact, solve, solve_scaled, Config, Engine, Eps, Instance};
use krsp_gen::{fig1_instance, Family, Regime};
use rayon::prelude::*;

/// All experiment ids in canonical order.
pub const ALL: &[&str] = &[
    "t1", "t2", "t3", "t4", "t5", "f1", "f2", "f3", "f4", "f5", "a1", "a2", "a3", "a4",
];

/// Dispatches one experiment by id.
#[must_use]
pub fn run(id: &str) -> Option<Table> {
    match id {
        "t1" => Some(t1_ratio_validation()),
        "t2" => Some(t2_phase1_pairing()),
        "t3" => Some(t3_baseline_comparison()),
        "t4" => Some(t4_k_sweep()),
        "t5" => Some(t5_application_replay()),
        "f1" => Some(f1_tradeoff_curve()),
        "f2" => Some(f2_runtime_scaling()),
        "f3" => Some(f3_iteration_behaviour()),
        "f4" => Some(f4_epsilon_sweep()),
        "f5" => Some(f5_fig1_cost_cap()),
        "a1" => Some(a1_engine_ablation()),
        "a2" => Some(a2_bsearch_ablation()),
        "a3" => Some(a3_phase1_ablation()),
        "a4" => Some(a4_scc_ablation()),
        _ => None,
    }
}

const FAMILIES: [Family; 3] = [Family::Gnm, Family::Grid, Family::Layered];
const REGIMES: [Regime; 3] = [Regime::Uniform, Regime::Correlated, Regime::Anticorrelated];

/// Tiny-weight instances for the paper-faithful LP engine: its auxiliary
/// graphs have `Θ(n·B)` nodes with `B` up to the cost scale, and LP (6) is
/// solved by dense exact simplex — weights must stay single-digit for the
/// oracle runs to be tractable.
fn tiny_lp_workload(n: usize, k: usize, seed: u64) -> Option<Instance> {
    use krsp_gen::{gnm, WeightParams};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(seed);
    let g = gnm(
        n,
        n * 3,
        Regime::Anticorrelated,
        WeightParams { max: 4, noise: 1 },
        &mut rng,
    );
    let s = krsp_graph::NodeId(0);
    let t = krsp_graph::NodeId((n - 1) as u32);
    let probe = Instance::new(g, s, t, k, i64::MAX / 4).ok()?;
    let dmin = baselines::min_delay(&probe)?.delay;
    let drelax = baselines::min_sum(&probe)?.delay;
    let d = dmin + ((drelax - dmin) as f64 * 0.4).round() as i64;
    Instance::new(probe.graph, s, t, k, d.max(dmin)).ok()
}

/// T1 — Lemma 3/11: the (1, 2) bifactor versus the exact optimum.
#[must_use]
pub fn t1_ratio_validation() -> Table {
    let mut t = Table::new(
        "t1",
        "bifactor (1,2) validation vs exact C_OPT (small instances)",
        &[
            "family",
            "regime",
            "k",
            "instances",
            "mean cost/OPT",
            "max cost/OPT",
            "max delay/D",
            "claim(≤2)",
            "claim(≤1)",
        ],
    );
    for family in FAMILIES {
        for regime in REGIMES {
            for k in [2usize, 3] {
                let results: Vec<(f64, f64)> = (0..6u64)
                    .into_par_iter()
                    .filter_map(|seed| {
                        // Gnm at the standard density exceeds the brute-force
                        // budget; use a sparser hand-tuned point for it.
                        let inst = if family == Family::Gnm {
                            krsp_gen::instantiate_with_retries(
                                krsp_gen::Workload {
                                    family,
                                    n: 12,
                                    m: 26,
                                    regime,
                                    k,
                                    tightness: 0.45,
                                    seed: 1000 + seed,
                                },
                                40,
                            )?
                        } else {
                            standard_workload(family, 14, k, regime, 0.45, 1000 + seed)?
                        };
                        if inst.m() > 32 {
                            return None; // keep brute force tractable
                        }
                        let out = solve(&inst, &Config::default()).ok()?;
                        let opt = exact::brute_force(&inst)?;
                        // Independent audit: structure, budgets, and the
                        // factor-2 guarantee against the true optimum.
                        krsp::verify::assert_valid(
                            &inst,
                            &out.solution,
                            Some((krsp_lp::Rat::int(opt.cost as i128), 2)),
                        );
                        Some((
                            out.solution.cost as f64 / opt.cost.max(1) as f64,
                            out.solution.delay as f64 / inst.delay_bound.max(1) as f64,
                        ))
                    })
                    .collect();
                if results.is_empty() {
                    continue;
                }
                let costs: Vec<f64> = results.iter().map(|r| r.0).collect();
                let delays: Vec<f64> = results.iter().map(|r| r.1).collect();
                let c_ok = max(&costs) <= 2.0 + 1e-9;
                let d_ok = max(&delays) <= 1.0 + 1e-9;
                t.row(vec![
                    format!("{family:?}"),
                    format!("{regime:?}"),
                    k.to_string(),
                    results.len().to_string(),
                    format!("{:.3}", mean(&costs)),
                    format!("{:.3}", max(&costs)),
                    format!("{:.3}", max(&delays)),
                    if c_ok { "PASS" } else { "FAIL" }.to_string(),
                    if d_ok { "PASS" } else { "FAIL" }.to_string(),
                ]);
            }
        }
    }
    t.note("Claim (paper Lemma 3/11): delay ≤ D and cost ≤ 2·C_OPT on every instance.");
    t
}

/// T2 — Lemma 5: the phase-1 pairing delay ≤ αD, cost ≤ (2−α)·C_LP.
#[must_use]
pub fn t2_phase1_pairing() -> Table {
    let mut t = Table::new(
        "t2",
        "phase-1 LP rounding: Lemma 5 pairing (α, 2−α)",
        &[
            "family",
            "regime",
            "instances",
            "mean α",
            "max α",
            "max cost/C_LP",
            "max α+cost/C_LP",
            "claim(≤2)",
        ],
    );
    for family in FAMILIES {
        for regime in REGIMES {
            let samples: Vec<(f64, f64)> = (0..10u64)
                .into_par_iter()
                .filter_map(|seed| {
                    let inst = standard_workload(family, 40, 2, regime, 0.4, 2000 + seed)?;
                    let sol = baselines::lp_rounding_only(&inst)?;
                    let alpha = sol.delay as f64 / inst.delay_bound.max(1) as f64;
                    let beta = sol.cost as f64 / sol.lower_bound?.to_f64().max(1e-9);
                    Some((alpha, beta))
                })
                .collect();
            if samples.is_empty() {
                continue;
            }
            let alphas: Vec<f64> = samples.iter().map(|s| s.0).collect();
            let betas: Vec<f64> = samples.iter().map(|s| s.1).collect();
            let sums: Vec<f64> = samples.iter().map(|s| s.0 + s.1).collect();
            t.row(vec![
                format!("{family:?}"),
                format!("{regime:?}"),
                samples.len().to_string(),
                format!("{:.3}", mean(&alphas)),
                format!("{:.3}", max(&alphas)),
                format!("{:.3}", max(&betas)),
                format!("{:.3}", max(&sums)),
                if max(&sums) <= 2.0 + 1e-9 {
                    "PASS"
                } else {
                    "FAIL"
                }
                .to_string(),
            ]);
        }
    }
    t.note("Claim (Lemma 5): some α ∈ [0,2] has delay ≤ αD and cost ≤ (2−α)C_LP, i.e. α + cost/C_LP ≤ 2.");
    t
}

/// T3 — comparison against every baseline on medium instances.
#[must_use]
pub fn t3_baseline_comparison() -> Table {
    let mut t = Table::new(
        "t3",
        "algorithm comparison (medium instances, cost vs LP bound, delay feasibility)",
        &[
            "algorithm",
            "solved",
            "mean cost/LP",
            "mean delay/D",
            "max delay/D",
            "mean ms",
        ],
    );
    struct Acc {
        solved: usize,
        total: usize,
        cost_ratio: Vec<f64>,
        delay_ratio: Vec<f64>,
        ms: Vec<f64>,
    }
    impl Acc {
        fn new() -> Self {
            Acc {
                solved: 0,
                total: 0,
                cost_ratio: Vec::new(),
                delay_ratio: Vec::new(),
                ms: Vec::new(),
            }
        }
    }
    let mut accs: Vec<(&str, Acc)> = vec![
        ("kRSP (this paper)", Acc::new()),
        ("LP rounding only [9]", Acc::new()),
        ("min-sum [20]", Acc::new()),
        ("greedy per-path RSP", Acc::new()),
        ("Orda–Sprintson style [18]", Acc::new()),
        ("Yen pool + greedy pick", Acc::new()),
    ];
    let insts: Vec<Instance> = FAMILIES
        .iter()
        .flat_map(|&f| {
            (0..4u64).filter_map(move |seed| {
                standard_workload(f, 60, 2, Regime::Anticorrelated, 0.35, 3000 + seed)
            })
        })
        .collect();
    for inst in &insts {
        let lb = match baselines::lp_rounding_only(inst).and_then(|s| s.lower_bound) {
            Some(lb) => lb.to_f64().max(1e-9),
            None => continue,
        };
        let d = inst.delay_bound.max(1) as f64;
        let mut record = |idx: usize, sol: Option<krsp::Solution>, ms: f64| {
            let acc = &mut accs[idx].1;
            acc.total += 1;
            if let Some(s) = sol {
                acc.solved += 1;
                acc.cost_ratio.push(s.cost as f64 / lb);
                acc.delay_ratio.push(s.delay as f64 / d);
                acc.ms.push(ms);
            }
        };
        let (ours, ms) = timed(|| solve(inst, &Config::default()).ok());
        record(0, ours.map(|o| o.solution), ms);
        let (lp, ms) = timed(|| baselines::lp_rounding_only(inst));
        record(1, lp, ms);
        let (msum, ms) = timed(|| baselines::min_sum(inst));
        record(2, msum, ms);
        let (gr, ms) = timed(|| baselines::greedy_rsp(inst));
        record(3, gr, ms);
        let (os, ms) = timed(|| baselines::orda_sprintson(inst));
        record(4, os, ms);
        let (yd, ms) = timed(|| baselines::yen_disjoint(inst, 32));
        record(5, yd, ms);
    }
    for (name, acc) in &accs {
        t.row(vec![
            name.to_string(),
            format!("{}/{}", acc.solved, acc.total),
            format!("{:.3}", mean(&acc.cost_ratio)),
            format!("{:.3}", mean(&acc.delay_ratio)),
            format!("{:.3}", max(&acc.delay_ratio)),
            format!("{:.2}", mean(&acc.ms)),
        ]);
    }
    t.note("Claim: only kRSP both respects the budget (delay/D ≤ 1) and stays near the LP bound;");
    t.note(
        "min-sum violates delay, greedy under-solves, LP-rounding-only overshoots delay up to 2×.",
    );
    t
}

/// T4 — scaling in k.
#[must_use]
pub fn t4_k_sweep() -> Table {
    let mut t = Table::new(
        "t4",
        "k sweep on layered fabrics (n≈50)",
        &[
            "k",
            "solved",
            "mean cost/LP",
            "max delay/D",
            "mean ms",
            "mean iters",
        ],
    );
    for k in 1..=6usize {
        let rows: Vec<(f64, f64, f64, f64)> = (0..5u64)
            .into_par_iter()
            .filter_map(|seed| {
                let inst = standard_workload(
                    Family::Layered,
                    48,
                    k,
                    Regime::Anticorrelated,
                    0.4,
                    4000 + seed,
                )?;
                let lb = baselines::lp_rounding_only(&inst)?.lower_bound?.to_f64();
                let (out, ms) = timed(|| solve(&inst, &Config::default()).ok());
                let out = out?;
                Some((
                    out.solution.cost as f64 / lb.max(1e-9),
                    out.solution.delay as f64 / inst.delay_bound.max(1) as f64,
                    ms,
                    out.stats.iterations.len() as f64,
                ))
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        t.row(vec![
            k.to_string(),
            rows.len().to_string(),
            format!("{:.3}", mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            format!("{:.3}", max(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            format!("{:.2}", mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
            format!("{:.2}", mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
        ]);
    }
    t.note("Claim: the algorithm is stated for general k (not just k = 2 like [4, 18]).");
    t
}

/// F1 — the delay-budget/cost trade-off curve and the min-sum crossover.
#[must_use]
pub fn f1_tradeoff_curve() -> Table {
    let mut t = Table::new(
        "f1",
        "trade-off curve: cost vs delay budget (geometric WAN, k=2)",
        &["D/Dmin", "cost", "delay", "cost/LP", "min-sum feasible"],
    );
    let Some(base) = standard_workload(Family::Geometric, 50, 2, Regime::Uniform, 1.0, 5001) else {
        t.note("workload unavailable");
        return t;
    };
    let dmin = baselines::min_delay(&base).map(|s| s.delay).unwrap_or(1);
    let dmax = baselines::min_sum(&base).map(|s| s.delay).unwrap_or(dmin);
    let minsum_cost = baselines::min_sum(&base).map(|s| s.cost).unwrap_or(0);
    for i in 0..=10 {
        let d = dmin + (dmax - dmin) * i / 10;
        let inst = Instance {
            delay_bound: d,
            ..base.clone()
        };
        match solve(&inst, &Config::default()) {
            Ok(out) => {
                let lb = out
                    .solution
                    .lower_bound
                    .map(|l| l.to_f64())
                    .unwrap_or(f64::NAN);
                t.row(vec![
                    format!("{:.2}", d as f64 / dmin.max(1) as f64),
                    out.solution.cost.to_string(),
                    out.solution.delay.to_string(),
                    format!("{:.3}", out.solution.cost as f64 / lb.max(1e-9)),
                    (dmax <= d).to_string(),
                ]);
            }
            Err(e) => t.row(vec![
                format!("{:.2}", d as f64 / dmin.max(1) as f64),
                format!("({e})"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.note(format!(
        "min-sum (delay-oblivious) costs {minsum_cost}; the curve must decrease toward it as D loosens."
    ));
    t
}

/// F2 — runtime scaling of the two engines.
#[must_use]
pub fn f2_runtime_scaling() -> Table {
    let mut t = Table::new(
        "f2",
        "runtime scaling (layered fabrics, k=2, anticorrelated)",
        &["n", "m", "engine", "solved", "mean ms", "max ms"],
    );
    for &n in &[20usize, 40, 80, 160] {
        let mut ms_all = Vec::new();
        let mut m_seen = 0;
        let mut solved = 0;
        for seed in 0..3u64 {
            if let Some(inst) = standard_workload(
                Family::Layered,
                n,
                2,
                Regime::Anticorrelated,
                0.4,
                6000 + seed,
            ) {
                m_seen = inst.m();
                let (out, ms) = timed(|| solve(&inst, &Config::default()).ok());
                if out.is_some() {
                    solved += 1;
                    ms_all.push(ms);
                }
            }
        }
        if !ms_all.is_empty() {
            t.row(vec![
                n.to_string(),
                m_seen.to_string(),
                "layered-BF".into(),
                solved.to_string(),
                format!("{:.2}", mean(&ms_all)),
                format!("{:.2}", max(&ms_all)),
            ]);
        }
    }
    // Paper-faithful engine only on tiny instances with tiny weights.
    for &n in &[8usize, 10, 12] {
        let mut ms_all = Vec::new();
        let mut m_seen = 0;
        let mut solved = 0;
        for seed in 0..2u64 {
            if let Some(inst) = tiny_lp_workload(n, 2, 6100 + seed) {
                m_seen = inst.m();
                let cfg = Config {
                    engine: Engine::LpRounding,
                    single_probe: true,
                    ..Config::default()
                };
                let (out, ms) = timed(|| solve(&inst, &cfg).ok());
                if out.is_some() {
                    solved += 1;
                    ms_all.push(ms);
                }
            }
        }
        if !ms_all.is_empty() {
            t.row(vec![
                n.to_string(),
                m_seen.to_string(),
                "LP (Alg. 3)".into(),
                solved.to_string(),
                format!("{:.2}", mean(&ms_all)),
                format!("{:.2}", max(&ms_all)),
            ]);
        }
    }
    t.note("Claim (Lemma 13 / Theorem 17): the faithful LP engine is pseudo-polynomial and far");
    t.note("heavier than the layered-BF engine; the fast engine scales to hundreds of nodes.");
    t
}

/// F3 — iteration behaviour of the cancellation loop.
#[must_use]
pub fn f3_iteration_behaviour() -> Table {
    let mut t = Table::new(
        "f3",
        "cycle-cancellation behaviour per instance (layered, k=2)",
        &[
            "seed",
            "phase1 delay/D",
            "iters",
            "type0",
            "type1",
            "type2",
            "fast-pass %",
            "final delay/D",
        ],
    );
    let mut rows = 0;
    for seed in 0..200u64 {
        if rows >= 8 {
            break;
        }
        // Tight budgets (tightness 0.1) make the phase-1 rounding land on
        // the delay-infeasible extreme often; keep only instances where
        // phase 2 actually has work to do.
        let Some(inst) = standard_workload(
            Family::Layered,
            40,
            2,
            Regime::Anticorrelated,
            0.1,
            7000 + seed,
        ) else {
            continue;
        };
        let Ok(out) = solve(&inst, &Config::default()) else {
            continue;
        };
        if out.stats.phase1_delay <= inst.delay_bound {
            continue;
        }
        rows += 1;
        let d = inst.delay_bound.max(1) as f64;
        let iters = &out.stats.iterations;
        let count = |k: krsp::CycleKind| iters.iter().filter(|i| i.kind == k).count();
        let fast = iters.iter().filter(|i| i.fast_pass).count();
        t.row(vec![
            seed.to_string(),
            format!("{:.3}", out.stats.phase1_delay as f64 / d),
            iters.len().to_string(),
            count(krsp::CycleKind::Type0).to_string(),
            count(krsp::CycleKind::Type1).to_string(),
            count(krsp::CycleKind::Type2).to_string(),
            if iters.is_empty() {
                "-".into()
            } else {
                format!("{:.0}", 100.0 * fast as f64 / iters.len() as f64)
            },
            format!("{:.3}", out.solution.delay as f64 / d),
        ]);
    }
    t.note(
        "Claim (Lemma 12/13): finitely many cancellations, each delay-reducing or ratio-improving;",
    );
    t.note("in practice a handful of fast-pass cycles suffice.");
    t
}

/// F4 — Theorem 4: ε versus quality and runtime.
#[must_use]
pub fn f4_epsilon_sweep() -> Table {
    let mut t = Table::new(
        "f4",
        "Theorem-4 scaling: ε vs solution quality and runtime (fixed instances)",
        &[
            "ε",
            "instances",
            "mean cost/OPT",
            "max delay/(1+ε)D",
            "mean ms",
        ],
    );
    let insts: Vec<Instance> = (0..4u64)
        .filter_map(|seed| {
            krsp_gen::instantiate_with_retries(
                krsp_gen::Workload {
                    family: Family::Gnm,
                    n: 12,
                    m: 26,
                    regime: Regime::Anticorrelated,
                    k: 2,
                    tightness: 0.45,
                    seed: 8000 + seed,
                },
                40,
            )
        })
        .filter(|i| i.m() <= 32)
        .collect();
    let opts: Vec<i64> = insts
        .iter()
        .filter_map(|i| exact::brute_force(i).map(|e| e.cost))
        .collect();
    for (num, den) in [(1u32, 1u32), (1, 2), (1, 4), (1, 10)] {
        let eps = Eps::new(num, den);
        let epsf = num as f64 / den as f64;
        let mut ratios = Vec::new();
        let mut drel = Vec::new();
        let mut times = Vec::new();
        for (inst, &opt) in insts.iter().zip(&opts) {
            let (out, ms) = timed(|| solve_scaled(inst, eps, eps, &Config::default()).ok());
            if let Some(o) = out {
                ratios.push(o.solution.cost as f64 / opt.max(1) as f64);
                drel.push(
                    o.solution.delay as f64 / ((1.0 + epsf) * inst.delay_bound.max(1) as f64),
                );
                times.push(ms);
            }
        }
        t.row(vec![
            format!("{num}/{den}"),
            ratios.len().to_string(),
            format!("{:.3}", mean(&ratios)),
            format!("{:.3}", max(&drel)),
            format!("{:.2}", mean(&times)),
        ]);
    }
    t.note("Claim (Theorem 4): cost ≤ (2+ε)·C_OPT and delay ≤ (1+ε)·D for every fixed ε > 0.");
    t
}

/// F5 — Figure 1: the cost cap of Definition 10.
#[must_use]
pub fn f5_fig1_cost_cap() -> Table {
    let mut t = Table::new(
        "f5",
        "Figure-1 family: effect of the |c(O)| ≤ C_OPT cap (k=2)",
        &[
            "D",
            "C_OPT",
            "cost (cap on)",
            "cost (cap off)",
            "capped ≤ 2·OPT",
        ],
    );
    for d in [4i64, 8, 16, 32, 64] {
        let inst = fig1_instance(d, 3);
        let opt = exact::brute_force(&inst).map(|e| e.cost).unwrap_or(0);
        let on = solve(&inst, &Config::default())
            .map(|o| o.solution.cost)
            .ok();
        let off_cfg = Config {
            enforce_cost_cap: false,
            single_probe: true,
            ..Config::default()
        };
        let off = solve(&inst, &off_cfg).map(|o| o.solution.cost).ok();
        let ok = on.map(|c| c <= 2 * opt).unwrap_or(false);
        t.row(vec![
            d.to_string(),
            opt.to_string(),
            on.map_or("-".into(), |c| c.to_string()),
            off.map_or("-".into(), |c| c.to_string()),
            if ok { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    t.note("Claim (Figure 1): without the cap the ratio guarantee degenerates with D;");
    t.note("with the cap the cost stays ≤ 2·C_OPT on the whole family.");
    t
}

/// A1 — engine ablation: LP (Algorithm 3) vs layered-BF on small instances.
#[must_use]
pub fn a1_engine_ablation() -> Table {
    let mut t = Table::new(
        "a1",
        "ablation: bicameral engine (LP Algorithm 3 vs layered Bellman–Ford)",
        &[
            "seed",
            "layered cost",
            "LP cost",
            "both ≤ 2·OPT",
            "layered ms",
            "LP ms",
        ],
    );
    for seed in 0..5u64 {
        let Some(inst) = tiny_lp_workload(10, 2, 9000 + seed) else {
            continue;
        };
        if inst.m() > 30 {
            continue;
        }
        let Some(opt) = exact::brute_force(&inst).map(|e| e.cost) else {
            continue;
        };
        let (fast, fast_ms) = timed(|| solve(&inst, &Config::default()).ok());
        let lp_cfg = Config {
            engine: Engine::LpRounding,
            single_probe: true,
            ..Config::default()
        };
        let (lp, lp_ms) = timed(|| solve(&inst, &lp_cfg).ok());
        let (Some(f), Some(l)) = (fast, lp) else {
            continue;
        };
        let ok = f.solution.cost <= 2 * opt && l.solution.cost <= 2 * opt;
        t.row(vec![
            seed.to_string(),
            f.solution.cost.to_string(),
            l.solution.cost.to_string(),
            if ok { "PASS" } else { "FAIL" }.to_string(),
            format!("{fast_ms:.2}"),
            format!("{lp_ms:.2}"),
        ]);
    }
    t.note("Both engines accept exactly the Definition-10 cycles; the fast engine is orders of");
    t.note("magnitude cheaper (DESIGN.md §4.3).");
    t
}

/// A2 — B-search ablation: doubling vs the paper's full sweep.
#[must_use]
pub fn a2_bsearch_ablation() -> Table {
    let mut t = Table::new(
        "a2",
        "ablation: B exploration (doubling vs Algorithm 3's full sweep)",
        &["seed", "doubling ms", "sweep ms", "same cost"],
    );
    for seed in 0..5u64 {
        let Some(inst) = standard_workload(
            Family::Grid,
            25,
            2,
            Regime::Anticorrelated,
            0.3,
            9500 + seed,
        ) else {
            continue;
        };
        let dbl_cfg = Config {
            single_probe: true,
            ..Config::default()
        };
        let swp_cfg = Config {
            b_search: krsp::BSearch::FullSweep,
            single_probe: true,
            ..Config::default()
        };
        let (a, a_ms) = timed(|| solve(&inst, &dbl_cfg).ok());
        let (b, b_ms) = timed(|| solve(&inst, &swp_cfg).ok());
        let (Some(a), Some(b)) = (a, b) else { continue };
        t.row(vec![
            seed.to_string(),
            format!("{a_ms:.2}"),
            format!("{b_ms:.2}"),
            (a.solution.cost == b.solution.cost).to_string(),
        ]);
    }
    t.note("The paper notes the full sweep is wasteful ('binary search can be applied here').");
    t
}

/// A3 — phase-1 backend ablation: Lagrangian vs exact simplex.
#[must_use]
pub fn a3_phase1_ablation() -> Table {
    let mut t = Table::new(
        "a3",
        "ablation: phase-1 backend (parametric Lagrangian vs exact simplex)",
        &[
            "seed",
            "n",
            "m",
            "C_LP agree",
            "lagrangian ms",
            "simplex ms",
        ],
    );
    for seed in 0..6u64 {
        let Some(inst) =
            standard_workload(Family::Gnm, 20, 2, Regime::Anticorrelated, 0.4, 9800 + seed)
        else {
            continue;
        };
        let (lag, lag_ms) = timed(|| krsp::phase1::run(&inst, krsp::Phase1Backend::Lagrangian));
        let (sx, sx_ms) = timed(|| krsp::phase1::run(&inst, krsp::Phase1Backend::Simplex));
        let agree = match (&lag, &sx) {
            (Ok(a), Ok(b)) => a.lp_bound == b.lp_bound,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        t.row(vec![
            seed.to_string(),
            inst.n().to_string(),
            inst.m().to_string(),
            agree.to_string(),
            format!("{lag_ms:.2}"),
            format!("{sx_ms:.2}"),
        ]);
    }
    t.note("Both backends compute the same LP optimum (the same polytope vertex family);");
    t.note("the parametric backend avoids the dense tableau entirely.");
    t
}

/// T5 — application-level payoff: replay traffic over the provisioned
/// paths with the tick simulator and compare deadline hit rates.
#[must_use]
pub fn t5_application_replay() -> Table {
    use krsp_sim::{Policy, Simulation, TrafficSpec};
    let mut t = Table::new(
        "t5",
        "application replay: deadline hit rate by provisioning method (k=3)",
        &[
            "provisioning",
            "policy",
            "cost",
            "base delay",
            "on-time %",
            "p95 latency",
        ],
    );
    let Some(inst) = standard_workload(Family::Layered, 40, 3, Regime::Anticorrelated, 0.5, 12_000)
    else {
        t.note("workload unavailable");
        return t;
    };
    // Deadline calibrated to the kRSP solution's fastest path.
    let Ok(ours) = solve(&inst, &Config::default()) else {
        t.note("instance infeasible");
        return t;
    };
    let fastest = ours
        .solution
        .paths(&inst)
        .iter()
        .map(|p| p.delay())
        .min()
        .unwrap_or(1) as u64;
    let spec = TrafficSpec {
        classes: 3,
        load_per_tick: 1.8,
        ticks: 600,
        base_deadline: fastest + fastest / 2,
        seed: 99,
    };
    let trace = spec.generate();
    let mut row = |name: &str, sol: Option<krsp::Solution>, policy: Policy| {
        let Some(sol) = sol else {
            t.row(vec![
                name.into(),
                format!("{policy:?}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            return;
        };
        let sim = Simulation::from_solution(&inst, &sol, 1);
        let r = sim.run(&trace, policy, spec.ticks);
        t.row(vec![
            name.into(),
            format!("{policy:?}"),
            sol.cost.to_string(),
            sol.delay.to_string(),
            format!("{:.1}", 100.0 * r.on_time_ratio()),
            r.p95_latency.to_string(),
        ]);
    };
    row(
        "kRSP (this paper)",
        Some(ours.solution.clone()),
        Policy::UrgencyPriority,
    );
    row(
        "kRSP, round-robin",
        Some(ours.solution.clone()),
        Policy::RoundRobin,
    );
    row(
        "kRSP, fastest only",
        Some(ours.solution),
        Policy::FastestOnly,
    );
    row(
        "min-sum [20]",
        baselines::min_sum(&inst),
        Policy::UrgencyPriority,
    );
    row(
        "min-delay",
        baselines::min_delay(&inst),
        Policy::UrgencyPriority,
    );
    t.note("Claim (paper §1): multiple disjoint QoS paths with urgency-priority routing");
    t.note("meet application requirements that single-path or delay-oblivious routing miss;");
    t.note("min-delay matches the hit rate only by paying a much higher provisioning cost.");
    t
}

/// A4 — ablation: SCC pruning of the layered bicameral searches.
#[must_use]
pub fn a4_scc_ablation() -> Table {
    let mut t = Table::new(
        "a4",
        "ablation: SCC pruning of layered bicameral searches",
        &["seed", "pruned ms", "unpruned ms", "same cost", "iters"],
    );
    let mut rows = 0;
    for seed in 0..200u64 {
        if rows >= 6 {
            break;
        }
        // Tight budgets so phase 2 (where pruning matters) actually runs.
        let Some(inst) = standard_workload(
            Family::Grid,
            49,
            2,
            Regime::Anticorrelated,
            0.1,
            9900 + seed,
        ) else {
            continue;
        };
        let on_cfg = Config {
            single_probe: true,
            ..Config::default()
        };
        let off_cfg = Config {
            scc_pruning: false,
            single_probe: true,
            ..Config::default()
        };
        let (a, a_ms) = timed(|| solve(&inst, &on_cfg).ok());
        let (b, b_ms) = timed(|| solve(&inst, &off_cfg).ok());
        let (Some(a), Some(b)) = (a, b) else { continue };
        if a.stats.iterations.is_empty() {
            continue; // phase 1 was already feasible: nothing to ablate
        }
        rows += 1;
        t.row(vec![
            seed.to_string(),
            format!("{a_ms:.2}"),
            format!("{b_ms:.2}"),
            (a.solution.cost == b.solution.cost).to_string(),
            a.stats.iterations.len().to_string(),
        ]);
    }
    t.note("Cycles never cross SCCs, so pruning is exact; it shrinks the layered");
    t.note("constructions to the cyclic cores of the residual graph.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_covers_all_ids() {
        for id in ALL {
            // Do not *run* the heavy ones here; just check dispatch wiring
            // on the cheapest two.
            if *id == "f5" || *id == "a3" {
                let t = run(id).unwrap();
                assert!(!t.rows.is_empty(), "{id} produced no rows");
            }
        }
        assert!(run("nope").is_none());
    }
}
