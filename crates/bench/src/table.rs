//! Result tables: pretty text rendering + JSON persistence.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One experiment's output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id (`t1`, `f2`, `a3`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form commentary lines (claim checks, observations).
    pub notes: Vec<String>,
}

impl Table {
    /// Starts a table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringifies on the way in).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a commentary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "## {} — {}\n\n",
            self.id.to_uppercase(),
            self.title
        ));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}"));
        }
        out.push('\n');
        out
    }

    /// Persists as JSON under `dir/<id>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, serde_json::to_string_pretty(self).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t0", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("T0"));
        assert!(s.contains("> a note"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t0", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn save_round_trip() {
        let mut t = Table::new("t_test_save", "demo", &["x"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("krsp-table-test");
        t.save(&dir).unwrap();
        let loaded: Table =
            serde_json::from_str(&std::fs::read_to_string(dir.join("t_test_save.json")).unwrap())
                .unwrap();
        assert_eq!(loaded.rows, t.rows);
        std::fs::remove_dir_all(&dir).ok();
    }
}
