//! Experiment harness regenerating every table and figure of
//! EXPERIMENTS.md (the paper itself is a theory-only brief announcement;
//! DESIGN.md §5 maps each experiment to the claim it validates).
//!
//! Every experiment is a library function returning a [`Table`], so the
//! `experiments` binary, the criterion benches, and the test-suite all
//! share one implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;

use krsp::Instance;
use krsp_gen::{instantiate_with_retries, Family, Regime, Workload};

/// Standard workload grid used across experiments.
#[must_use]
pub fn standard_workload(
    family: Family,
    n: usize,
    k: usize,
    regime: Regime,
    tightness: f64,
    seed: u64,
) -> Option<Instance> {
    instantiate_with_retries(
        Workload {
            family,
            n,
            m: n * 4,
            regime,
            k,
            tightness,
            seed,
        },
        40,
    )
}

/// Milliseconds spent running `f`, along with its output.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Simple mean of a (nonempty) slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Maximum of a slice (NaN for empty).
#[must_use]
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn timed_returns_value() {
        let (v, ms) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
