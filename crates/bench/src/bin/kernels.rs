//! Kernel benchmark suite: the tracked numbers behind `BENCH_kernels.json`
//! (EXPERIMENTS.md T8).
//!
//! Usage:
//!   cargo run -p krsp-bench --release --bin kernels              # full run
//!   cargo run -p krsp-bench --release --bin kernels -- --smoke   # CI smoke
//!   cargo run -p krsp-bench --release --bin kernels -- --out X.json
//!
//! Measures the flat budgeted-DP kernel (`krsp_flow::csp`) against the
//! preserved pre-rewrite implementation (`krsp_flow::reference`) on the
//! same instances, plus the Bellman–Ford scratch API against the
//! per-call-allocating wrapper and the end-to-end solver on the T2/T4
//! generator families. The batch plane gets its own row families
//! (EXPERIMENTS.md T12): `csp_batch` answers a fixed query set against a
//! shared [`TopoDigest`] at batch sizes 1/8/64 vs the per-query rebuild,
//! and `solve_batch` runs the same end-to-end query set through
//! [`krsp::solve_batch`] windows of 1/8/64 vs unbatched `solve` calls —
//! the amortization curve is `per_iter_ms` falling as the batch size
//! grows. The `rsp_kernel` family (EXPERIMENTS.md T13) races the pluggable
//! RSP kernels — `classic` (flat FPTAS) vs `interval` (interval-scaling
//! FPTAS) — at ε = 1/16; their paths may legitimately differ, so instead
//! of checksum equality both variants are cross-validated in-binary
//! against the exact DP (`cost ≤ (1+ε)·OPT`, `delay ≤ D`).
//! Everything is pinned — fixed seeds, fixed workload grid, fixed
//! iteration counts — so two runs on the same machine measure the same
//! work and the JSON can be compared commit to commit. The report records
//! the host (`nproc`, os, arch) so committed numbers carry their context.
//!
//! The A/B pairs also cross-check their checksums: a variant that got
//! faster by computing something else fails the run. The batch families
//! cross-check every batch size against the unbatched fold the same way.

use krsp::bicameral::{seed_scan_only, Ctx};
use krsp::{baselines, solve, solve_batch, Config, Instance};
use krsp_bench::standard_workload;
use krsp_flow::bellman_ford::BfScratch;
use krsp_flow::{
    constrained_shortest_path_with, constrained_shortest_paths_digested, find_negative_cycle_in,
    kernel, reference, rsp_fptas_with, CspQuery, DpScratch, TopoDigest, KERNEL_KINDS,
};
use krsp_gen::{Family, Regime};
use krsp_graph::{NodeId, ResidualGraph};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One timed measurement.
#[derive(Serialize)]
struct Measurement {
    /// Kernel under test.
    bench: String,
    /// Instance/configuration label.
    config: String,
    /// `flat` (current), `reference` (pre-rewrite), or `current` where no
    /// reference implementation exists.
    variant: String,
    iters: u64,
    total_ms: f64,
    per_iter_ms: f64,
    /// Work fingerprint; equal across variants of the same (bench, config).
    checksum: i64,
}

/// Recording host metadata: committed numbers are only comparable across
/// commits measured on the same machine, so the report says which one.
#[derive(Serialize)]
struct Host {
    /// Available hardware parallelism (`nproc`); bounds every threads-axis
    /// and batch-axis row.
    nproc: usize,
    os: String,
    arch: String,
}

impl Host {
    fn detect() -> Host {
        Host {
            nproc: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

#[derive(Serialize)]
struct Report {
    schema: String,
    mode: String,
    host: Host,
    /// `null` on multi-core recorders. On a single-core host the
    /// threads-axis and batch-axis rows cannot show parallel gains, so the
    /// report says so instead of committing silently misleading numbers.
    caveat: Option<String>,
    results: Vec<Measurement>,
    speedups: Vec<Speedup>,
}

/// reference / flat per-iteration ratio for one A/B pair.
#[derive(Serialize)]
struct Speedup {
    bench: String,
    config: String,
    speedup: f64,
}

fn time_ms(iters: u64, mut f: impl FnMut() -> i64) -> (f64, i64) {
    let mut checksum = 0i64;
    let start = Instant::now();
    for _ in 0..iters {
        checksum = black_box(f());
    }
    (start.elapsed().as_secs_f64() * 1e3, checksum)
}

struct Harness {
    results: Vec<Measurement>,
    smoke: bool,
}

impl Harness {
    fn record(
        &mut self,
        bench: &str,
        config: &str,
        variant: &str,
        iters: u64,
        f: impl FnMut() -> i64,
    ) {
        let iters = if self.smoke { 2 } else { iters };
        let (total_ms, checksum) = time_ms(iters, f);
        self.results.push(Measurement {
            bench: bench.to_string(),
            config: config.to_string(),
            variant: variant.to_string(),
            iters,
            total_ms,
            per_iter_ms: total_ms / iters as f64,
            checksum,
        });
    }

    /// A/B pair: runs both variants and asserts their checksums agree.
    fn ab(
        &mut self,
        bench: &str,
        config: &str,
        iters: u64,
        flat: impl FnMut() -> i64,
        reference: impl FnMut() -> i64,
    ) {
        self.record(bench, config, "flat", iters, flat);
        self.record(bench, config, "reference", iters, reference);
        let k = self.results.len();
        let (a, b) = (&self.results[k - 2], &self.results[k - 1]);
        assert_eq!(
            a.checksum, b.checksum,
            "{bench}/{config}: flat and reference disagree"
        );
    }
}

/// Path fingerprint: cost, delay, and edge ids folded into one i64.
fn fingerprint(p: Option<&krsp_flow::CspPath>) -> i64 {
    let Some(p) = p else { return -1 };
    let mut h = p.cost.wrapping_mul(31).wrapping_add(p.delay);
    for e in &p.edges {
        h = h.wrapping_mul(131).wrapping_add(e.index() as i64);
    }
    h
}

/// The pinned instance grid. `(label, family, n, k, regime, tightness,
/// seed)` — T2-style medium breadth plus T4-style layered fabrics, the
/// scales the acceptance numbers are quoted at.
fn grid(smoke: bool) -> Vec<(String, Instance)> {
    let points: &[(&str, Family, usize, usize, Regime, f64, u64)] = if smoke {
        &[
            (
                "smoke_gnm_n16",
                Family::Gnm,
                16,
                2,
                Regime::Uniform,
                0.5,
                7001,
            ),
            (
                "smoke_layered_n18",
                Family::Layered,
                18,
                2,
                Regime::Anticorrelated,
                0.5,
                7002,
            ),
        ]
    } else {
        &[
            // T2 scale: breadth across families at n = 40, k = 2.
            ("t2_gnm_n40", Family::Gnm, 40, 2, Regime::Uniform, 0.4, 2003),
            (
                "t2_geometric_n40",
                Family::Geometric,
                40,
                2,
                Regime::Correlated,
                0.4,
                2011,
            ),
            // T4 scale: layered fabrics, n ≈ 48, anticorrelated (the
            // adversarial regime the k sweep is quoted on).
            (
                "t4_layered_n48_k2",
                Family::Layered,
                48,
                2,
                Regime::Anticorrelated,
                0.4,
                4002,
            ),
            (
                "t4_layered_n48_k4",
                Family::Layered,
                48,
                4,
                Regime::Anticorrelated,
                0.4,
                4004,
            ),
        ]
    };
    points
        .iter()
        .filter_map(|&(label, family, n, k, regime, tightness, seed)| {
            let inst = standard_workload(family, n, k, regime, tightness, seed)?;
            Some((label.to_string(), inst))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let mut h = Harness {
        results: Vec::new(),
        smoke,
    };
    let grid = grid(smoke);
    assert!(!grid.is_empty(), "workload grid produced no instances");

    // --- budget_dp (exact DP) and rsp_fptas: flat vs reference ----------
    let mut dp = DpScratch::new();
    for (label, inst) in &grid {
        let g = &inst.graph;
        let (s, t) = (inst.s, inst.t);
        let d = inst.delay_bound;
        h.ab(
            "budget_dp",
            label,
            if smoke { 2 } else { 15 },
            || fingerprint(constrained_shortest_path_with(g, s, t, d, &mut dp).as_ref()),
            || fingerprint(reference::constrained_shortest_path(g, s, t, d).as_ref()),
        );
        h.ab(
            "rsp_fptas",
            label,
            if smoke { 2 } else { 15 },
            || fingerprint(rsp_fptas_with(g, s, t, d, 1, 4, &mut dp).as_ref()),
            || fingerprint(reference::rsp_fptas(g, s, t, d, 1, 4).as_ref()),
        );
    }

    // --- rsp_kernel: pluggable FPTAS backends, kernel axis ---------------
    // The classic kernel always sweeps its full ~4(n+1)/ε scaled budget;
    // the interval kernel brackets OPT with cheap coarse-ε tests first and
    // sweeps only a narrow window, with early exit at the first feasible
    // level. Their paths may legitimately differ (each certifies its own
    // answer), so the variants are NOT checksum-compared; instead every
    // kernel's answer is cross-validated against the exact DP: feasibility
    // must agree, `delay ≤ D`, and `cost ≤ (1+ε)·OPT`. ε = 1/16 is the
    // small-ε regime the interval scheme targets.
    let (eps_num, eps_den) = (1u32, 16u32);
    for (label, inst) in &grid {
        let g = &inst.graph;
        let (s, t) = (inst.s, inst.t);
        let d = inst.delay_bound;
        let exact = constrained_shortest_path_with(g, s, t, d, &mut dp);
        for kind in KERNEL_KINDS {
            h.record(
                "rsp_kernel",
                label,
                kind.as_str(),
                if smoke { 2 } else { 15 },
                || {
                    fingerprint(
                        kernel(kind)
                            .solve_with(g, s, t, d, eps_num, eps_den, &mut dp)
                            .expect("1/16 is a valid epsilon")
                            .as_ref(),
                    )
                },
            );
            let got = kernel(kind)
                .solve_with(g, s, t, d, eps_num, eps_den, &mut dp)
                .expect("1/16 is a valid epsilon");
            match (&exact, &got) {
                (Some(opt), Some(p)) => {
                    assert!(
                        p.delay <= d,
                        "rsp_kernel/{label}/{kind}: delay {} > bound {d}",
                        p.delay
                    );
                    assert!(
                        i128::from(p.cost) * i128::from(eps_den)
                            <= i128::from(opt.cost) * i128::from(eps_den + eps_num),
                        "rsp_kernel/{label}/{kind}: cost {} > (1+ε)·OPT (OPT = {})",
                        p.cost,
                        opt.cost
                    );
                }
                (None, None) => {}
                _ => panic!(
                    "rsp_kernel/{label}/{kind}: feasibility disagrees with the exact DP \
                     (exact = {}, kernel = {})",
                    exact.is_some(),
                    got.is_some()
                ),
            }
        }
    }

    // --- bellman_ford: scratch reuse vs per-call allocation -------------
    // Negative-cycle detection under the solver's scalar weight shape, on
    // the raw instance graphs (no negative cycle: full n-round worst case).
    let mut bf: BfScratch<i64> = BfScratch::new();
    for (label, inst) in &grid {
        let g = &inst.graph;
        h.ab(
            "bellman_ford",
            label,
            if smoke { 2 } else { 400 },
            || {
                let found = find_negative_cycle_in(g, |e| g.edge(e).cost, &mut bf);
                found.map_or(0, |c| c.len() as i64)
            },
            || {
                let found = krsp_flow::bellman_ford::find_negative_cycle(g, |e| g.edge(e).cost);
                found.map_or(0, |c| c.len() as i64)
            },
        );
    }

    // --- bicameral_search: the pass-3 seed scan, threads axis -----------
    // The parallel hotspot behind `--threads`/`KRSP_THREADS`. The
    // min-delay baseline is lex-(delay, cost) optimal, so its residual
    // graph has no delay-reducing cycle and no free cost-reducing cycle;
    // under `delta_d = -1, delta_c = cap + 1` every candidate within the
    // `|c| ≤ cap` window has weight `(cap+1)·d + c > 0`. The scan
    // therefore finds nothing and every timed iteration is the same full
    // sweep of all seeds — the deterministic worst case the cooperative
    // cancellation must not slow down. Checksums are cross-checked over
    // the widths: all variants must agree the sweep comes up empty.
    let widths: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    for (label, inst) in &grid {
        let Some(base) = baselines::min_delay(inst) else {
            continue;
        };
        let residual = ResidualGraph::build(&inst.graph, &base.edges);
        let cap = inst
            .graph
            .edge_iter()
            .map(|(_, e)| e.cost)
            .max()
            .unwrap_or(1)
            .max(1);
        let ctx = Ctx {
            delta_d: -1,
            delta_c: cap + 1,
            cost_cap: cap,
            enforce_cost_cap: true,
            scc_prune: true,
        };
        for &width in widths {
            krsp::set_solver_width(width);
            h.record(
                "bicameral_search",
                label,
                &format!("threads{width}"),
                if smoke { 2 } else { 20 },
                || {
                    seed_scan_only(&residual, &ctx).map_or(-1, |cyc| {
                        cyc.edges.iter().fold(
                            cyc.cost.wrapping_mul(31).wrapping_add(cyc.delay),
                            |acc, e| acc.wrapping_mul(131).wrapping_add(e.index() as i64),
                        )
                    })
                },
            );
        }
        krsp::set_solver_width(0);
        let k = h.results.len();
        let base_ck = h.results[k - widths.len()].checksum;
        for m in &h.results[k - widths.len()..] {
            assert_eq!(
                m.checksum, base_ck,
                "bicameral_search/{label}: width variants disagree"
            );
        }
    }

    // --- end-to-end solve (no reference variant; tracked over time) -----
    for (label, inst) in &grid {
        h.record("solve", label, "current", if smoke { 1 } else { 3 }, || {
            solve(inst, &Config::default())
                .map(|out| {
                    out.solution
                        .cost
                        .wrapping_mul(31)
                        .wrapping_add(out.solution.delay)
                })
                .unwrap_or(-1)
        });
    }

    // --- csp_batch: shared-digest query blocks, batch-size axis ----------
    // A fixed query set per instance (mixed sources so sweep sharing has
    // groups to merge, staggered bounds below the digest bound), answered
    // at batch sizes 1/8/64: each window predigests once and sweeps its
    // block. `unbatched` is the per-query rebuild
    // (`constrained_shortest_path_with`). Checksums fold every query's
    // path fingerprint in order, so all variants must answer every query
    // bit-identically — the amortization must not change a single path.
    let nq = if smoke { 8 } else { 64 };
    let batch_sizes: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64] };
    for (label, inst) in &grid {
        let g = &inst.graph;
        let d = inst.delay_bound;
        let n = g.node_count() as u32;
        let queries: Vec<CspQuery> = (0..nq)
            .map(|j| CspQuery {
                s: if j % 4 == 0 {
                    inst.s
                } else {
                    NodeId((j as u32).wrapping_mul(7) % n)
                },
                t: inst.t,
                delay_bound: (d - (j as i64 % 5)).max(0),
            })
            .collect();
        h.record(
            "csp_batch",
            label,
            "unbatched",
            if smoke { 2 } else { 5 },
            || {
                queries.iter().fold(0i64, |acc, q| {
                    let p = constrained_shortest_path_with(g, q.s, q.t, q.delay_bound, &mut dp);
                    acc.wrapping_mul(1_000_003)
                        .wrapping_add(fingerprint(p.as_ref()))
                })
            },
        );
        for &batch in batch_sizes {
            h.record(
                "csp_batch",
                label,
                &format!("batch{batch}"),
                if smoke { 2 } else { 5 },
                || {
                    queries.chunks(batch).fold(0i64, |acc, block| {
                        let digest = TopoDigest::delay_cost(g, d);
                        constrained_shortest_paths_digested(g, &digest, block, &mut dp)
                            .iter()
                            .fold(acc, |acc, p| {
                                acc.wrapping_mul(1_000_003)
                                    .wrapping_add(fingerprint(p.as_ref()))
                            })
                    })
                },
            );
        }
        let k = h.results.len();
        let rows = 1 + batch_sizes.len();
        let base_ck = h.results[k - rows].checksum;
        for m in &h.results[k - rows..] {
            assert_eq!(
                m.checksum, base_ck,
                "csp_batch/{label}: {} disagrees with unbatched",
                m.variant
            );
        }
    }

    // --- solve_batch: end-to-end batched solving, batch-size axis --------
    // The same topology solved at `nq` staggered delay bounds (relaxing a
    // feasible bound keeps the instance valid), pushed through
    // `solve_batch` windows of 1/8/64 vs a plain `solve` loop. Window 1
    // pays the per-call worker-pool setup `nq` times; window 64 pays it
    // once and reuses the per-worker scratch across all queries — the
    // per_iter_ms spread is the batch plane's amortization. Checksums fold
    // each query's (cost, delay) in order: batching must not change any
    // answer.
    for (label, inst) in &grid {
        let d = inst.delay_bound;
        let insts: Vec<Instance> = (0..nq)
            .map(|j| {
                Instance::new(
                    inst.graph.clone(),
                    inst.s,
                    inst.t,
                    inst.k,
                    d + (j as i64 % 7),
                )
                .expect("relaxing a feasible bound keeps the instance valid")
            })
            .collect();
        let cfg = Config::default();
        let fold = |acc: i64, r: Result<(i64, i64), ()>| {
            let v = r.map_or(-1, |(c, dl)| c.wrapping_mul(31).wrapping_add(dl));
            acc.wrapping_mul(1_000_003).wrapping_add(v)
        };
        h.record(
            "solve_batch",
            label,
            "unbatched",
            if smoke { 1 } else { 2 },
            || {
                insts.iter().fold(0i64, |acc, i| {
                    let r = solve(i, &cfg)
                        .map(|out| (out.solution.cost, out.solution.delay))
                        .map_err(|_| ());
                    fold(acc, r)
                })
            },
        );
        for &batch in batch_sizes {
            h.record(
                "solve_batch",
                label,
                &format!("batch{batch}"),
                if smoke { 1 } else { 2 },
                || {
                    insts.chunks(batch).fold(0i64, |acc, window| {
                        solve_batch(window, &cfg).iter().fold(acc, |acc, r| {
                            let r = r
                                .as_ref()
                                .map(|out| (out.solution.cost, out.solution.delay))
                                .map_err(|_| ());
                            fold(acc, r)
                        })
                    })
                },
            );
        }
        let k = h.results.len();
        let rows = 1 + batch_sizes.len();
        let base_ck = h.results[k - rows].checksum;
        for m in &h.results[k - rows..] {
            assert_eq!(
                m.checksum, base_ck,
                "solve_batch/{label}: {} disagrees with unbatched solves",
                m.variant
            );
        }
    }

    // --- speedups for the A/B pairs --------------------------------------
    let mut speedups = Vec::new();
    for i in (0..h.results.len()).step_by(1) {
        let m = &h.results[i];
        if m.variant != "flat" {
            continue;
        }
        let reference = h
            .results
            .iter()
            .find(|r| r.bench == m.bench && r.config == m.config && r.variant == "reference");
        if let Some(r) = reference {
            speedups.push(Speedup {
                bench: m.bench.clone(),
                config: m.config.clone(),
                speedup: r.per_iter_ms / m.per_iter_ms.max(1e-9),
            });
        }
    }

    // bicameral_search speedup: single-threaded over the widest variant
    // measured. On a multi-core host this is the parallel gain; on a
    // single-core recorder it documents the pool's overhead (≈1.0).
    let widest = format!("threads{}", widths.last().expect("widths nonempty"));
    for m in &h.results {
        if m.bench != "bicameral_search" || m.variant != "threads1" {
            continue;
        }
        if let Some(w) = h
            .results
            .iter()
            .find(|r| r.bench == m.bench && r.config == m.config && r.variant == widest)
        {
            speedups.push(Speedup {
                bench: format!("bicameral_search(threads1/{widest})"),
                config: m.config.clone(),
                speedup: m.per_iter_ms / w.per_iter_ms.max(1e-9),
            });
        }
    }

    // Kernel-axis speedup: classic over interval per-iteration. > 1.0
    // means the interval kernel's narrow final sweep pays at ε = 1/16.
    for m in &h.results {
        if m.bench != "rsp_kernel" || m.variant != "classic" {
            continue;
        }
        if let Some(iv) = h
            .results
            .iter()
            .find(|r| r.bench == m.bench && r.config == m.config && r.variant == "interval")
        {
            speedups.push(Speedup {
                bench: "rsp_kernel(classic/interval)".to_string(),
                config: m.config.clone(),
                speedup: m.per_iter_ms / iv.per_iter_ms.max(1e-9),
            });
        }
    }

    // Batch amortization: per-query cost unbatched over the widest batch.
    // > 1.0 means batching pays; the committed full-mode numbers are the
    // T12 acceptance curve.
    let widest_batch = format!("batch{}", batch_sizes.last().expect("batch axis nonempty"));
    for m in &h.results {
        if m.variant != "unbatched" {
            continue;
        }
        if let Some(w) = h
            .results
            .iter()
            .find(|r| r.bench == m.bench && r.config == m.config && r.variant == widest_batch)
        {
            speedups.push(Speedup {
                bench: format!("{}(unbatched/{widest_batch})", m.bench),
                config: m.config.clone(),
                speedup: m.per_iter_ms / w.per_iter_ms.max(1e-9),
            });
        }
    }

    let host = Host::detect();
    let caveat = (host.nproc == 1).then(|| {
        "recorded on a single-core host: threads-axis and batch-axis rows cannot show \
         parallel gains here; per-iteration A/B and kernel-axis comparisons remain valid"
            .to_string()
    });
    let report = Report {
        schema: "krsp-bench-kernels/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        host,
        caveat,
        results: h.results,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Self-validate before writing: the emitted text must parse back.
    serde_json::parse_value(&json).expect("emitted JSON must be valid");
    std::fs::write(&out, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out}");
}
