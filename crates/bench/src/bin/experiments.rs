//! Experiment runner: regenerates every table/figure of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p krsp-bench --release --bin experiments -- all
//!   cargo run -p krsp-bench --release --bin experiments -- t1 f2 a3
//!
//! Results are printed as text tables and saved as JSON under `results/`.

use krsp_bench::experiments;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id>... | all");
        eprintln!("ids: {}", experiments::ALL.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let out_dir = PathBuf::from("results");
    let mut failed = false;
    for id in &ids {
        match experiments::run(id) {
            Some(table) => {
                println!("{}", table.render());
                if let Err(e) = table.save(&out_dir) {
                    eprintln!("(could not save {id}: {e})");
                }
                if table.rows.iter().any(|r| r.iter().any(|c| c == "FAIL")) {
                    failed = true;
                    eprintln!("!! {id} contains FAIL rows");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
