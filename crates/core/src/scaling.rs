//! Theorem 4 — polynomial time via weight scaling.
//!
//! For constants `ε₁, ε₂ > 0`, scale every edge to
//!
//! ```text
//!   d'(e) = ⌊ d(e) / (ε₁·D/L) ⌋        c'(e) = ⌊ c(e) / (ε₂·Ĉ/L) ⌋
//! ```
//!
//! where `L` bounds the number of edges in any solution (`≤ k·n`) and `Ĉ`
//! is a guess of `C_OPT` (found by the standard Lorenz–Raz geometric
//! bracketing between the LP bound and the feasible upper bound). Solving
//! the scaled instance with Algorithm 1 and evaluating the result at the
//! *original* weights gives delay `≤ (1+ε₁)·D` and cost `≤ (2+ε₂)·C_OPT`
//! while the pseudo-polynomial factors `Σc`, `Σd`, `D` collapse to
//! polynomials in `L/ε` — exactly the calculation in the paper's §1.3.

use crate::algorithm1::{self, Config, SolveError};
use crate::instance::Instance;
use crate::phase1::{self, Phase1Backend};
use crate::solution::Solution;
use krsp_numeric::Rat;
use serde::{Deserialize, Serialize};

/// A positive rational `num/den` used for `ε` parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eps {
    /// Numerator (> 0).
    pub num: u32,
    /// Denominator (> 0).
    pub den: u32,
}

impl Eps {
    /// Builds an epsilon; panics unless both parts are positive.
    #[must_use]
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "epsilon must be positive");
        Eps { num, den }
    }

    /// `1 + ε` as an exact rational — the Theorem-4 delay relaxation factor.
    #[must_use]
    pub fn one_plus(self) -> Rat {
        Rat::new(
            i128::from(self.den) + i128::from(self.num),
            i128::from(self.den),
        )
    }

    /// `2 + ε` as an exact rational — the Theorem-4 cost relaxation factor.
    #[must_use]
    pub fn two_plus(self) -> Rat {
        Rat::new(
            2 * i128::from(self.den) + i128::from(self.num),
            i128::from(self.den),
        )
    }
}

/// Result of the scaled solve.
#[derive(Clone, Debug)]
pub struct ScaledSolved {
    /// Solution evaluated at the original weights.
    pub solution: Solution,
    /// The `Ĉ` guess that produced it.
    pub c_guess: i64,
    /// Scaled-instance statistics.
    pub stats: algorithm1::RunStats,
}

/// Scales one weight: `⌊ w / (eps·bound/L) ⌋ = ⌊ w·L·den / (num·bound) ⌋`.
fn scale(w: i64, eps: Eps, bound: i64, l: i64) -> i64 {
    if bound <= 0 {
        return w; // nothing to scale against; keep exact
    }
    let num = w as i128 * l as i128 * eps.den as i128;
    let den = eps.num as i128 * bound as i128;
    (num / den) as i64
}

/// Theorem-4 solver: `(1+ε₁, 2+ε₂)` in polynomial time.
///
/// ```
/// use krsp::{solve_scaled, Config, Eps, Instance};
/// use krsp_graph::{DiGraph, NodeId};
/// use krsp_numeric::Rat;
///
/// let g = DiGraph::from_edges(4, &[
///     (0, 1, 10, 90), (1, 3, 10, 90),
///     (0, 2, 80, 10), (2, 3, 80, 10),
/// ]);
/// let inst = Instance::new(g, NodeId(0), NodeId(3), 2, 200).unwrap();
/// let eps = Eps::new(1, 4); // ε = 1/4
/// let out = solve_scaled(&inst, eps, eps, &Config::default()).unwrap();
/// // Delay within (1+ε)·D, checked exactly: 5/4 · 200.
/// assert!(Rat::from(out.solution.delay) <= eps.one_plus() * Rat::from(200i64));
/// ```
pub fn solve_scaled(
    inst: &Instance,
    eps1: Eps,
    eps2: Eps,
    cfg: &Config,
) -> Result<ScaledSolved, SolveError> {
    // L bounds the edges of any k-path solution.
    let l = (inst.k as i64) * (inst.n() as i64).max(1);

    // Bracket C_OPT ∈ [⌈C_LP⌉, UB] from phase 1 on the *original* instance.
    let p1 = phase1::run(inst, Phase1Backend::Lagrangian)?;
    if p1.delay <= inst.delay_bound {
        // Rounded solution already feasible: no scaling needed.
        let mut solution =
            Solution::from_edge_set(inst, p1.flow.clone()).expect("phase-1 flow is valid");
        solution.lower_bound = Some(p1.lp_bound);
        return Ok(ScaledSolved {
            solution,
            c_guess: p1.lp_bound.ceil().max(1) as i64,
            stats: algorithm1::RunStats::default(),
        });
    }
    let lb = p1.lp_bound.ceil().max(1) as i64;
    let ub = p1.feasible_cost.max(1);

    // Geometric guesses Ĉ = lb, 2·lb, … ≥ ub. For the smallest Ĉ ≥ C_OPT
    // the guarantee holds; accept the first guess whose scaled solve comes
    // back within the certified budgets.
    let mut guess = lb;
    let mut best: Option<ScaledSolved> = None;
    loop {
        let scaled_graph = inst.graph.map_weights(|c, d| {
            (
                scale(c, eps2, guess, l),
                scale(d, eps1, inst.delay_bound, l),
            )
        });
        let scaled_d = scale(inst.delay_bound, eps1, inst.delay_bound, l).max(0);
        let scaled = Instance {
            graph: scaled_graph,
            delay_bound: scaled_d,
            ..inst.clone()
        };
        if let Ok(solved) = algorithm1::solve(&scaled, cfg) {
            // Evaluate at original weights.
            if let Some(mut solution) = Solution::from_edge_set(inst, solved.solution.edges.clone())
            {
                solution.lower_bound = Some(p1.lp_bound);
                // Certified budgets: delay ≤ (1+ε₁)·D always (by the scaled
                // feasibility); accept on the cost side once within
                // (2+ε₂)·guess. Both comparisons are exact rationals —
                // Theorem 4's bound is a sharp inequality, and f64 slop
                // either rejects valid answers or certifies invalid ones
                // once the magnitudes pass 2^53.
                let delay_ok =
                    Rat::from(solution.delay) <= eps1.one_plus() * Rat::from(inst.delay_bound);
                let cost_ok = Rat::from(solution.cost) <= eps2.two_plus() * Rat::from(guess);
                if delay_ok {
                    let cand = ScaledSolved {
                        solution,
                        c_guess: guess,
                        stats: solved.stats,
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => cand.solution.cost < b.solution.cost,
                    };
                    if better {
                        best = Some(cand);
                    }
                    if cost_ok {
                        break;
                    }
                }
            }
        }
        if guess >= ub {
            break;
        }
        guess = (guess * 2).min(ub);
    }
    best.ok_or(SolveError::DelayInfeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn tradeoff(d_bound: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 10, 100),
                (1, 5, 10, 100),
                (0, 2, 80, 10),
                (2, 5, 80, 10),
                (0, 3, 20, 60),
                (3, 5, 20, 60),
                (0, 4, 90, 20),
                (4, 5, 90, 20),
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).unwrap()
    }

    #[test]
    fn scaled_solution_within_relaxed_budgets() {
        for d in [60, 140, 220, 320] {
            let inst = tradeoff(d);
            let eps = Eps::new(1, 4);
            let out = solve_scaled(&inst, eps, eps, &Config::default()).unwrap();
            let opt = crate::exact::brute_force(&inst).unwrap();
            // delay ≤ (1+ε)·D, exactly
            assert!(
                Rat::from(out.solution.delay) <= eps.one_plus() * Rat::from(d),
                "delay {} vs (1+ε)·{d}",
                out.solution.delay
            );
            // cost ≤ (2+ε)·C_OPT, exactly
            assert!(
                Rat::from(out.solution.cost) <= eps.two_plus() * Rat::from(opt.cost),
                "cost {} vs (2+ε)·{}",
                out.solution.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn guarantee_checks_are_exact_at_extreme_magnitudes() {
        // With D near i64::MAX the f64 check `(1+ε)·D + 1e-9` cannot tell
        // (1+ε)·D from (1+ε)·D + 1 — both round to the same double. The
        // rational comparison must.
        let eps = Eps::new(1, 3);
        let d = 3 * (i64::MAX / 4); // divisible by eps.den, (1+ε)·D exact
        let exactly_at_bound = d / 3 * 4;
        assert!(Rat::from(exactly_at_bound) <= eps.one_plus() * Rat::from(d));
        assert!(Rat::from(exactly_at_bound + 1) > eps.one_plus() * Rat::from(d));
        // Same sharpness on the (2+ε) cost side.
        let c = 3 * (i64::MAX / 8);
        let at_cost_bound = c / 3 * 7;
        assert!(Rat::from(at_cost_bound) <= eps.two_plus() * Rat::from(c));
        assert!(Rat::from(at_cost_bound + 1) > eps.two_plus() * Rat::from(c));
        // The f64 route genuinely cannot make this distinction: both sides
        // of the boundary round to the same double, so any float predicate
        // returns one verdict for a valid answer and a violation alike.
        assert_eq!(exactly_at_bound as f64, (exactly_at_bound + 1) as f64);
    }

    #[test]
    fn infeasible_scaled_instance() {
        let inst = tradeoff(10); // min delay 2·10+2·20 = 30 > 10
        let eps = Eps::new(1, 2);
        assert!(solve_scaled(&inst, eps, eps, &Config::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_eps_rejected() {
        let _ = Eps::new(0, 1);
    }
}
