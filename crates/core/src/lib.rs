//! # krsp — k Disjoint Restricted Shortest Paths
//!
//! A from-scratch implementation of
//!
//! > *Brief Announcement: Efficient Approximation Algorithms for Computing
//! > k Disjoint Restricted Shortest Paths* — Guo, Liao, Shen, Li
//! > (SPAA 2015)
//!
//! The **kRSP** problem: given a digraph with nonnegative integral edge
//! costs and delays, find `k` edge-disjoint `s→t` paths minimizing total
//! cost subject to a bound `D` on *total* delay. NP-hard; this crate
//! provides the paper's bifactor approximation algorithms:
//!
//! * [`phase1`] — the `(2, 2)` LP-rounding of Lemma 5 (reference [9]),
//!   with a parametric (Lagrangian) and an exact-simplex backend;
//! * [`bicameral`] — bicameral cycles (Definition 10) and the search
//!   engines of Section 4 (layered auxiliary graphs, LP (6));
//! * [`algorithm1`] — the cycle-cancellation driver achieving the `(1, 2)`
//!   bifactor of Lemma 3/11;
//! * [`scaling`] — Theorem 4's `(1+ε₁, 2+ε₂)` polynomial-time scaling;
//! * [`exact`] — exponential exact solvers (brute force, branch-and-bound)
//!   used to measure true approximation ratios;
//! * [`baselines`] — the comparison algorithms from the related work
//!   ([9], [17], [18], [20, 21]).
//!
//! ## Quick start
//!
//! ```
//! use krsp::{solve, Config, Instance};
//! use krsp_graph::{DiGraph, NodeId};
//!
//! // Two disjoint paths from 0 to 3, total delay at most 12.
//! let g = DiGraph::from_edges(4, &[
//!     (0, 1, 1, 2), (1, 3, 1, 2),   // cheap-ish pair
//!     (0, 2, 3, 4), (2, 3, 3, 4),   // second route
//!     (0, 3, 9, 1),                 // direct express link
//! ]);
//! let inst = Instance::new(g, NodeId(0), NodeId(3), 2, 12).unwrap();
//! let solved = solve(&inst, &Config::default()).unwrap();
//! assert!(solved.solution.delay <= 12);
//! assert_eq!(solved.solution.paths(&inst).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod auxgraph;
pub mod baselines;
pub mod batch;
pub mod bicameral;
pub mod exact;
pub mod extensions;
pub mod instance;
pub mod phase1;
pub mod scaling;
pub mod solution;
pub mod verify;

pub use algorithm1::{solve, solve_warm_with, solve_with, Config, RunStats, SolveError, Solved};

/// The data-parallel width the solver's internal fan-outs (the bicameral
/// seed scan, [`solve_batch`]'s default executor) will use: the
/// [`set_solver_width`] override if set, else the `KRSP_THREADS`
/// environment variable, else one worker per available CPU. Solver output
/// is bit-identical at any width; this only changes wall-clock time.
#[must_use]
pub fn solver_width() -> usize {
    rayon::current_num_threads()
}

/// Overrides [`solver_width`] process-wide (`0` clears the override).
/// Safe to call at any time; reductions re-read the width when they start.
pub fn set_solver_width(width: usize) {
    rayon::set_num_threads(width);
}
pub use batch::{shared_executor, solve_batch, summarize, BatchError, BatchSummary, Executor};
pub use bicameral::{BSearch, CycleKind, Engine, SearchScratch};
pub use instance::{Instance, InstanceError};
pub use krsp_flow::CancelToken;
pub use krsp_flow::{
    kernel as rsp_kernel, DpScratch, KernelError, KernelKind, RspKernel, KERNEL_KINDS,
};
pub use phase1::Phase1Backend;
pub use scaling::{solve_scaled, Eps, ScaledSolved};
pub use solution::Solution;
pub use verify::{audit, Violation};
