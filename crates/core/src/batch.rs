//! Batch solving and the suite's shared scheduling primitive.
//!
//! A controller re-provisions many flows at once (nightly re-optimization,
//! failure storms); the instances are independent, so the batch API fans
//! out over an [`Executor`]. The same executor type backs the long-running
//! `krsp-service` provisioning daemon, so all thread scheduling in the
//! suite lives in one place:
//!
//! * [`Executor::map`] — scoped fan-out over borrowed slices (what
//!   [`solve_batch`] uses); threads live only for the call. Executes on
//!   the vendored rayon pool (the same substrate as the solver's
//!   parallel seed scan) at this executor's width.
//! * [`Executor::submit`] — FIFO dispatch of `'static` jobs onto a
//!   lazily-started resident worker pool (what the service uses).

use crate::algorithm1::{solve_with, Config, SolveError, Solved};
use crate::bicameral::SearchScratch;
use crate::instance::Instance;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

thread_local! {
    /// True on threads owned by a resident pool (see
    /// [`Executor::on_worker_thread`]).
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };

    /// Per-worker solver arena for [`solve_batch`]: each pool thread keeps
    /// one [`SearchScratch`] (and, inside it, the Bellman–Ford buffers)
    /// alive across every query it processes, so a batch of N queries
    /// warms `width` arenas instead of allocating N. Scratch reuse is
    /// output-invariant (pinned by the scratch-reuse tests), so batched
    /// results stay bit-identical to independent [`solve`] calls.
    static WORKER_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// A boxed unit of work for the resident pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
}

struct ResidentPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

/// The suite's scheduling primitive: a fixed worker width shared by scoped
/// batch fan-out ([`Executor::map`]) and a resident FIFO worker pool
/// ([`Executor::submit`]). The resident threads are started lazily on the
/// first `submit`, so batch-only users never spawn long-lived threads.
pub struct Executor {
    workers: usize,
    pool: Mutex<Option<ResidentPool>>,
}

impl Executor {
    /// An executor `workers` wide (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
            pool: Mutex::new(None),
        }
    }

    /// Worker width.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when the current thread is a resident-pool worker (of *any*
    /// executor). Code that blocks waiting for a job submitted via
    /// [`Executor::submit`] must not do so from a worker thread — every
    /// worker could end up parked behind a job that needs a worker to run,
    /// deadlocking the pool. Callers use this to fall back to solving
    /// inline (see the singleflight layer in `krsp-service`).
    #[must_use]
    pub fn on_worker_thread() -> bool {
        IS_POOL_WORKER.with(Cell::get)
    }

    /// Applies `f` to every item, preserving order, using up to
    /// [`Executor::workers`] scoped threads. Panics in `f` propagate.
    ///
    /// Since PR 4 this delegates to the vendored rayon pool — the same
    /// scoped chunk-distributing substrate the bicameral seed scan runs
    /// on — with this executor's width; the result is identical to a
    /// sequential `items.iter().map(f).collect()` at any width.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        rayon::ParIter::from_fn(items.len(), |i| f(&items[i]))
            .with_width(self.workers)
            .collect()
    }

    /// Enqueues a job on the resident FIFO pool, starting the pool's
    /// threads on first use. Jobs run in submission order across
    /// [`Executor::workers`] threads.
    pub fn submit(&self, job: Job) {
        let mut pool = self.pool.lock().expect("executor pool poisoned");
        let resident = pool.get_or_insert_with(|| self.start_resident());
        {
            let mut st = resident.shared.state.lock().expect("pool state poisoned");
            st.queue.push_back(job);
        }
        resident.shared.not_empty.notify_one();
    }

    /// Number of jobs submitted but not yet started (0 if the resident pool
    /// was never started).
    #[must_use]
    pub fn queued(&self) -> usize {
        let pool = self.pool.lock().expect("executor pool poisoned");
        pool.as_ref().map_or(0, |r| {
            r.shared
                .state
                .lock()
                .expect("pool state poisoned")
                .queue
                .len()
        })
    }

    fn start_resident(&self) -> ResidentPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
        });
        let handles = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    loop {
                        let job = {
                            let mut st = shared.state.lock().expect("pool state poisoned");
                            loop {
                                if let Some(j) = st.queue.pop_front() {
                                    break j;
                                }
                                if st.shutdown {
                                    return;
                                }
                                st = shared.not_empty.wait(st).expect("pool state poisoned");
                            }
                        };
                        job();
                    }
                })
            })
            .collect();
        ResidentPool { shared, handles }
    }
}

impl Drop for Executor {
    /// Drains the resident queue (pending jobs still run) and joins the
    /// workers.
    fn drop(&mut self) {
        let resident = self.pool.lock().expect("executor pool poisoned").take();
        if let Some(resident) = resident {
            resident
                .shared
                .state
                .lock()
                .expect("pool state poisoned")
                .shutdown = true;
            resident.shared.not_empty.notify_all();
            for h in resident.handles {
                let _ = h.join();
            }
        }
    }
}

/// The process-wide executor used by [`solve_batch`]: the rayon pool's
/// resolved width (`KRSP_THREADS` override, else one worker per available
/// CPU), captured at first use.
pub fn shared_executor() -> &'static Executor {
    static SHARED: OnceLock<Executor> = OnceLock::new();
    SHARED.get_or_init(|| Executor::new(rayon::current_num_threads()))
}

/// Why one query of a batch failed. Granular per query: a panicking
/// instance maps to [`BatchError::Panicked`] for *that* slot only instead
/// of unwinding through the pool and poisoning its siblings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// The solver ran to completion and reported failure.
    Solve(SolveError),
    /// The solver panicked; the payload message is attached. Sibling
    /// queries in the same batch are unaffected.
    Panicked(String),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Solve(e) => e.fmt(f),
            BatchError::Panicked(msg) => write!(f, "solver panicked: {msg}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Solve(e) => Some(e),
            BatchError::Panicked(_) => None,
        }
    }
}

/// Best-effort panic payload rendering (panics carry `&str` or `String`
/// in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Solves every instance in parallel, preserving order.
///
/// Each pool worker reuses one resident [`SearchScratch`] arena across all
/// the queries it processes, and each query runs inside `catch_unwind`:
/// a panicking instance yields [`BatchError::Panicked`] in its own slot
/// while every sibling query completes normally. Results are bit-identical
/// to N independent [`solve`] calls at any worker width.
///
/// ```
/// use krsp::{solve_batch, Config, Instance};
/// use krsp_graph::{DiGraph, NodeId};
///
/// let mk = |d| {
///     let g = DiGraph::from_edges(4, &[
///         (0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1),
///     ]);
///     Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
/// };
/// let batch = vec![mk(20), mk(3)];
/// let results = solve_batch(&batch, &Config::default());
/// assert!(results[0].is_ok());
/// assert!(results[1].is_err()); // budget 3 is unsatisfiable
/// ```
#[must_use]
pub fn solve_batch(instances: &[Instance], cfg: &Config) -> Vec<Result<Solved, BatchError>> {
    // A transient executor at the *current* solver width: `map` is scoped
    // (no resident threads), so this is just a width capture — and unlike
    // the process-wide executor, it tracks `set_solver_width` /
    // `KRSP_THREADS` changes made after the first batch.
    Executor::new(rayon::current_num_threads()).map(instances, |inst| {
        WORKER_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            match catch_unwind(AssertUnwindSafe(|| solve_with(inst, cfg, &mut scratch))) {
                Ok(Ok(out)) => Ok(out),
                Ok(Err(e)) => Err(BatchError::Solve(e)),
                Err(payload) => Err(BatchError::Panicked(panic_message(payload.as_ref()))),
            }
        })
    })
}

/// Aggregate statistics over a batch result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchSummary {
    /// Number of solved instances.
    pub solved: usize,
    /// Number of infeasible instances.
    pub infeasible: usize,
    /// Number of queries whose solver panicked (isolated per query).
    pub panicked: usize,
    /// Total cost over solved instances.
    pub total_cost: i64,
    /// Worst delay utilization (delay / D) over solved instances.
    pub worst_delay_utilization: f64,
}

/// Summarizes a batch result against its instances.
#[must_use]
pub fn summarize(instances: &[Instance], results: &[Result<Solved, BatchError>]) -> BatchSummary {
    let mut s = BatchSummary::default();
    for (inst, r) in instances.iter().zip(results) {
        match r {
            Ok(out) => {
                s.solved += 1;
                s.total_cost += out.solution.cost;
                let u = out.solution.delay as f64 / inst.delay_bound.max(1) as f64;
                s.worst_delay_utilization = s.worst_delay_utilization.max(u);
            }
            Err(BatchError::Panicked(_)) => s.panicked += 1,
            Err(BatchError::Solve(_)) => s.infeasible += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve;
    use krsp_graph::{DiGraph, NodeId};

    fn inst(d: i64) -> Instance {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)]);
        Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let batch: Vec<Instance> = [20, 12, 8, 3].into_iter().map(inst).collect();
        let cfg = Config::default();
        let par = solve_batch(&batch, &cfg);
        for (i, r) in par.iter().enumerate() {
            let seq = solve(&batch[i], &cfg);
            match (r, seq) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.solution.cost, b.solution.cost);
                    assert_eq!(a.solution.delay, b.solution.delay);
                }
                (Err(BatchError::Solve(a)), Err(b)) => assert_eq!(a, &b),
                other => panic!("batch/sequential disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_reuses_worker_scratch_bit_identically() {
        // Many queries per worker: the per-thread scratch is hit warm and
        // the answers must still match fresh solves exactly.
        let batch: Vec<Instance> = (0..24).map(|i| inst(12 + (i % 9))).collect();
        let cfg = Config::default();
        let results = solve_batch(&batch, &cfg);
        for (i, r) in results.iter().enumerate() {
            let fresh = solve(&batch[i], &cfg).expect("instances are feasible");
            let got = r.as_ref().expect("batch result matches");
            assert_eq!(got.solution.cost, fresh.solution.cost);
            assert_eq!(got.solution.delay, fresh.solution.delay);
            assert_eq!(got.solution.edges, fresh.solution.edges);
        }
    }

    #[test]
    fn executor_map_preserves_order() {
        let ex = Executor::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = ex.map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn executor_submit_runs_all_jobs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let ex = Executor::new(3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=50u64 {
            let sum = Arc::clone(&sum);
            ex.submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }));
        }
        drop(ex); // drains the queue and joins the workers
        assert_eq!(sum.load(Ordering::Relaxed), 50 * 51 / 2);
    }

    #[test]
    fn worker_thread_marker_distinguishes_pool_threads() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        assert!(!Executor::on_worker_thread(), "test thread is not a worker");
        let ex = Executor::new(2);
        let seen = Arc::new(AtomicBool::new(false));
        {
            let seen = Arc::clone(&seen);
            ex.submit(Box::new(move || {
                seen.store(Executor::on_worker_thread(), Ordering::SeqCst);
            }));
        }
        drop(ex);
        assert!(seen.load(Ordering::SeqCst), "pool job must see the marker");
        // Scoped map threads are not resident workers; blocking there is
        // safe because the resident pool can still drain.
        let ex = Executor::new(2);
        let flags = ex.map(&[0u8; 4], |_| Executor::on_worker_thread());
        assert_eq!(flags, vec![false; 4]);
    }

    #[test]
    fn summary_counts() {
        let batch: Vec<Instance> = [20, 12, 3].into_iter().map(inst).collect();
        let results = solve_batch(&batch, &Config::default());
        let s = summarize(&batch, &results);
        assert_eq!(s.solved, 2);
        assert_eq!(s.infeasible, 1); // D = 3 < min total delay 12... (fast pair delay 2+... )
        assert!(s.worst_delay_utilization <= 1.0);
    }
}
