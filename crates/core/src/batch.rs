//! Batch solving — the SDN-controller shape of the workload.
//!
//! A controller re-provisions many flows at once (nightly re-optimization,
//! failure storms); the instances are independent, so the batch API simply
//! fans out over rayon's thread pool. This is the suite's primary
//! data-parallel surface (cf. the per-seed parallelism inside the
//! bicameral engines).

use crate::algorithm1::{solve, Config, Solved, SolveError};
use crate::instance::Instance;
use rayon::prelude::*;

/// Solves every instance in parallel, preserving order.
///
/// ```
/// use krsp::{solve_batch, Config, Instance};
/// use krsp_graph::{DiGraph, NodeId};
///
/// let mk = |d| {
///     let g = DiGraph::from_edges(4, &[
///         (0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1),
///     ]);
///     Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
/// };
/// let batch = vec![mk(20), mk(3)];
/// let results = solve_batch(&batch, &Config::default());
/// assert!(results[0].is_ok());
/// assert!(results[1].is_err()); // budget 3 is unsatisfiable
/// ```
#[must_use]
pub fn solve_batch(instances: &[Instance], cfg: &Config) -> Vec<Result<Solved, SolveError>> {
    instances.par_iter().map(|i| solve(i, cfg)).collect()
}

/// Aggregate statistics over a batch result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchSummary {
    /// Number of solved instances.
    pub solved: usize,
    /// Number of infeasible instances.
    pub infeasible: usize,
    /// Total cost over solved instances.
    pub total_cost: i64,
    /// Worst delay utilization (delay / D) over solved instances.
    pub worst_delay_utilization: f64,
}

/// Summarizes a batch result against its instances.
#[must_use]
pub fn summarize(instances: &[Instance], results: &[Result<Solved, SolveError>]) -> BatchSummary {
    let mut s = BatchSummary::default();
    for (inst, r) in instances.iter().zip(results) {
        match r {
            Ok(out) => {
                s.solved += 1;
                s.total_cost += out.solution.cost;
                let u = out.solution.delay as f64 / inst.delay_bound.max(1) as f64;
                s.worst_delay_utilization = s.worst_delay_utilization.max(u);
            }
            Err(_) => s.infeasible += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn inst(d: i64) -> Instance {
        let g = DiGraph::from_edges(
            4,
            &[(0, 1, 1, 5), (1, 3, 1, 5), (0, 2, 4, 1), (2, 3, 4, 1)],
        );
        Instance::new(g, NodeId(0), NodeId(3), 2, d).unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let batch: Vec<Instance> = [20, 12, 8, 3].into_iter().map(inst).collect();
        let cfg = Config::default();
        let par = solve_batch(&batch, &cfg);
        for (i, r) in par.iter().enumerate() {
            let seq = solve(&batch[i], &cfg);
            match (r, seq) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.solution.cost, b.solution.cost);
                    assert_eq!(a.solution.delay, b.solution.delay);
                }
                (Err(a), Err(b)) => assert_eq!(*a, b),
                other => panic!("batch/sequential disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn summary_counts() {
        let batch: Vec<Instance> = [20, 12, 3].into_iter().map(inst).collect();
        let results = solve_batch(&batch, &Config::default());
        let s = summarize(&batch, &results);
        assert_eq!(s.solved, 2);
        assert_eq!(s.infeasible, 1); // D = 3 < min total delay 12... (fast pair delay 2+... )
        assert!(s.worst_delay_utilization <= 1.0);
    }
}
