//! kRSP problem instances (Definition 2).

use krsp_graph::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A kRSP instance: digraph with nonnegative integral cost/delay, terminals
/// `s ≠ t`, path count `k ≥ 1`, and total delay budget `D ≥ 0`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Instance {
    /// The underlying digraph (costs and delays must be nonnegative).
    pub graph: DiGraph,
    /// Source vertex.
    pub s: NodeId,
    /// Sink vertex.
    pub t: NodeId,
    /// Number of edge-disjoint paths required.
    pub k: usize,
    /// Total delay budget `D` over all `k` paths.
    pub delay_bound: i64,
}

/// Instance validation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// `s == t`.
    SourceEqualsSink,
    /// Terminal out of node range.
    TerminalOutOfRange,
    /// `k == 0`.
    ZeroPaths,
    /// Negative delay bound.
    NegativeDelayBound,
    /// An edge carries a negative cost or delay.
    NegativeWeight,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            InstanceError::SourceEqualsSink => "source equals sink",
            InstanceError::TerminalOutOfRange => "terminal out of node range",
            InstanceError::ZeroPaths => "k must be at least 1",
            InstanceError::NegativeDelayBound => "delay bound must be nonnegative",
            InstanceError::NegativeWeight => "edge costs and delays must be nonnegative",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InstanceError {}

impl Instance {
    /// Builds and validates an instance.
    pub fn new(
        graph: DiGraph,
        s: NodeId,
        t: NodeId,
        k: usize,
        delay_bound: i64,
    ) -> Result<Self, InstanceError> {
        let inst = Instance {
            graph,
            s,
            t,
            k,
            delay_bound,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Re-checks all invariants (useful after deserialization).
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.s == self.t {
            return Err(InstanceError::SourceEqualsSink);
        }
        if self.s.index() >= self.graph.node_count() || self.t.index() >= self.graph.node_count() {
            return Err(InstanceError::TerminalOutOfRange);
        }
        if self.k == 0 {
            return Err(InstanceError::ZeroPaths);
        }
        if self.delay_bound < 0 {
            return Err(InstanceError::NegativeDelayBound);
        }
        if self.graph.edges().iter().any(|e| e.cost < 0 || e.delay < 0) {
            return Err(InstanceError::NegativeWeight);
        }
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    #[must_use]
    pub fn m(&self) -> usize {
        self.graph.edge_count()
    }

    /// True iff `k` edge-disjoint `st`-paths exist at all (ignoring delay).
    #[must_use]
    pub fn is_structurally_feasible(&self) -> bool {
        krsp_flow::max_edge_disjoint_paths(&self.graph, self.s, self.t) >= self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::DiGraph;

    fn graph() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1), (0, 2, 2, 2)])
    }

    #[test]
    fn valid_instance() {
        let inst = Instance::new(graph(), NodeId(0), NodeId(2), 2, 10).unwrap();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 3);
        assert!(inst.is_structurally_feasible());
    }

    #[test]
    fn validation_failures() {
        assert_eq!(
            Instance::new(graph(), NodeId(0), NodeId(0), 1, 1).unwrap_err(),
            InstanceError::SourceEqualsSink
        );
        assert_eq!(
            Instance::new(graph(), NodeId(0), NodeId(9), 1, 1).unwrap_err(),
            InstanceError::TerminalOutOfRange
        );
        assert_eq!(
            Instance::new(graph(), NodeId(0), NodeId(2), 0, 1).unwrap_err(),
            InstanceError::ZeroPaths
        );
        assert_eq!(
            Instance::new(graph(), NodeId(0), NodeId(2), 1, -1).unwrap_err(),
            InstanceError::NegativeDelayBound
        );
        let bad = DiGraph::from_edges(2, &[(0, 1, -1, 1)]);
        assert_eq!(
            Instance::new(bad, NodeId(0), NodeId(1), 1, 1).unwrap_err(),
            InstanceError::NegativeWeight
        );
    }

    #[test]
    fn structural_feasibility() {
        let inst = Instance::new(graph(), NodeId(0), NodeId(2), 3, 10).unwrap();
        assert!(!inst.is_structurally_feasible());
    }
}
